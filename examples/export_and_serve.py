#!/usr/bin/env python
"""Production-shaped workflow: train offline, export, serve from the export.

A recommender system rarely serves a live model; it serves materialised
embeddings.  This example walks that split:

1. *offline*: train HybridGNN, checkpoint the model, export the
   per-relationship embedding matrices to one .npz file;
2. *online*: load only the export (no model code needed), wrap it in the
   :class:`~repro.core.recommender.Recommender`, and answer top-K and
   similar-item queries;
3. verify the served scores exactly match the live model's.

The same artifacts are scriptable via the CLI:
``python -m repro train --save-embeddings emb.npz`` then
``python -m repro recommend --embeddings emb.npz --node 3 --relation like``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    Recommender,
    SkipGramTrainer,
    TrainerConfig,
    export_embeddings,
    load_checkpoint_into,
    load_embeddings,
    save_checkpoint,
)
from repro.datasets import load_dataset, split_edges


def main() -> None:
    print("== offline: train ==")
    dataset = load_dataset("amazon", scale=0.3, seed=0)
    split = split_edges(dataset.graph, rng=1)
    schemes = dataset.all_schemes()
    model = HybridGNN(
        split.train_graph, schemes,
        HybridGNNConfig(base_dim=16, edge_dim=8), rng=2,
    )
    trainer = SkipGramTrainer(
        model, schemes, split,
        TrainerConfig(epochs=4, num_walks=2, walk_length=8, window=3,
                      learning_rate=2e-2),
        rng=3,
    )
    history = trainer.fit()
    print(f"trained; best val ROC-AUC {history.best_val_score:.2f}")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "hybridgnn.npz"
        embeddings = Path(tmp) / "embeddings.npz"

        print("\n== offline: persist ==")
        save_checkpoint(model, checkpoint)
        export_embeddings(
            model, split.train_graph.num_nodes,
            split.train_graph.schema.relationships, embeddings,
        )
        print(f"checkpoint: {checkpoint.stat().st_size:,} bytes")
        print(f"embeddings: {embeddings.stat().st_size:,} bytes")

        print("\n== online: serve from the export only ==")
        store = load_embeddings(embeddings)
        recommender = Recommender(store, split.train_graph)
        item = int(split.train_graph.nodes_of_type("item")[0])
        recs = recommender.recommend(item, "common_bought", k=5)
        print(f"top-5 'common_bought' for item {item}:")
        for rec in recs:
            print(f"  item {rec.node}: score {rec.score:.3f}")
        similar = recommender.similar_nodes(item, "common_viewed", k=3)
        print(f"3 most similar items under 'common_viewed': "
              f"{[r.node for r in similar]}")

        print("\n== consistency checks ==")
        live = model.node_embeddings(np.arange(5), "common_bought")
        served = store.node_embeddings(np.arange(5), "common_bought")
        assert np.allclose(live, served), "export must match the live model"
        print("export matches live model: OK")

        # A fresh model restored from the checkpoint serves identically too.
        clone = HybridGNN(
            split.train_graph, schemes,
            HybridGNNConfig(base_dim=16, edge_dim=8), rng=99,
        )
        load_checkpoint_into(clone, checkpoint)
        for (name, a), (_, b) in zip(model.named_parameters(),
                                     clone.named_parameters()):
            assert np.array_equal(a.data, b.data), name
        print("checkpoint restore matches live parameters: OK")


if __name__ == "__main__":
    main()
