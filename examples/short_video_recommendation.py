#!/usr/bin/env python
"""Short-video recommendation on a Kuaishou-like graph (the paper's
motivating scenario).

Users interact with videos and authors under four relationships (click,
like, comment, download).  The sparse engagement relationships (download,
comment) are where inter-relationship information matters most: a user's
clicks reveal taste that the few download edges cannot.  This example

1. trains HybridGNN on the full multiplex graph,
2. trains an ablated variant without randomized inter-relationship
   exploration,
3. compares them on the sparsest relationship, and
4. prints concrete top-5 recommendations for a sample user.
"""

import numpy as np

from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
from repro.datasets import load_dataset, split_edges
from repro.eval import evaluate_link_prediction
from repro.utils import format_table


def train(dataset, split, use_exploration: bool, seed: int):
    config = HybridGNNConfig(
        base_dim=32, edge_dim=16, exploration_depth=2,
        use_randomized_exploration=use_exploration,
    )
    schemes = dataset.all_schemes()
    model = HybridGNN(split.train_graph, schemes, config, rng=seed)
    trainer = SkipGramTrainer(
        model, schemes, split,
        TrainerConfig(epochs=5, num_walks=2, walk_length=8, window=3),
        rng=seed + 1,
    )
    trainer.fit()
    return model


def main() -> None:
    dataset = load_dataset("kuaishou", scale=0.35, seed=0)
    graph = dataset.graph
    print(graph)
    split = split_edges(graph, rng=1)

    print("\nTraining HybridGNN (full) ...")
    full = train(dataset, split, use_exploration=True, seed=10)
    print("Training HybridGNN w/o randomized exploration ...")
    ablated = train(dataset, split, use_exploration=False, seed=10)

    rows = []
    for name, model in [("full", full), ("w/o exploration", ablated)]:
        report = evaluate_link_prediction(model, split.test)
        for relation in ("download", "comment", "click"):
            if relation in report.per_relation:
                rows.append([name, relation,
                             report.per_relation[relation]["roc_auc"]])
    print()
    print(format_table(
        ["Model", "Relationship", "ROC-AUC"], rows,
        title="Inter-relationship exploration helps the sparse relationships",
        float_fmt="{:.2f}",
    ))

    # Concrete recommendations: top-5 videos a user is likely to *like*.
    users = graph.nodes_of_type("user")
    videos = graph.nodes_of_type("video")
    user = int(users[0])
    seen = set(split.train_graph.neighbors(user, "like").tolist())
    candidates = np.asarray([v for v in videos if int(v) not in seen])
    user_emb = full.node_embeddings(np.asarray([user]), "like")[0]
    video_emb = full.node_embeddings(candidates, "like")
    scores = video_emb @ user_emb
    top5 = candidates[np.argsort(-scores)[:5]]
    print(f"\nTop-5 'like' recommendations for user {user}: {top5.tolist()}")
    truth = {
        int(v) for v in graph.neighbors(user, "like") if int(v) not in seen
    }
    hits = [int(v) for v in top5 if int(v) in truth]
    print(f"held-out likes of this user: {sorted(truth)} -> hits in top-5: {hits}")


if __name__ == "__main__":
    main()
