#!/usr/bin/env python
"""Bring your own graph: HybridGNN on a hand-built multiplex network.

Shows the lower-level API a downstream user needs to run HybridGNN on
their own data instead of the bundled dataset-alikes:

- define a :class:`GraphSchema` and build a graph edge by edge,
- declare metapath schemes directly (no Table II patterns),
- save/load the graph in the library's single-file format,
- train and query relationship-specific embeddings.

The toy domain: a tiny academic network (authors, papers, venues) with
`writes`-style citation and collaboration relationships.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
from repro.datasets import split_edges
from repro.datasets.zoo import Dataset
from repro.graph import (
    GraphBuilder,
    GraphSchema,
    MetapathScheme,
    compute_statistics,
    load_graph,
    save_graph,
)
from repro.eval import evaluate_link_prediction


def build_academic_graph(rng: np.random.Generator):
    schema = GraphSchema(
        node_types=["author", "paper", "venue"],
        relationships=["writes", "cites"],
    )
    builder = GraphBuilder(schema)
    authors = builder.add_nodes("author", 60)
    papers = builder.add_nodes("paper", 90)
    venues = builder.add_nodes("venue", 8)

    # Community structure: authors cluster around venues.
    venue_of_author = rng.integers(0, len(venues), size=len(authors))
    venue_of_paper = rng.integers(0, len(venues), size=len(papers))

    for paper_idx, paper in enumerate(papers):
        community = venue_of_paper[paper_idx]
        local_authors = authors[venue_of_author == community]
        pool = local_authors if len(local_authors) >= 2 else authors
        for author in rng.choice(pool, size=min(3, len(pool)), replace=False):
            builder.add_edge(int(author), int(paper), "writes")

    for paper_idx, paper in enumerate(papers):
        community = venue_of_paper[paper_idx]
        same_venue = papers[venue_of_paper == community]
        candidates = same_venue[same_venue != paper]
        if len(candidates) == 0:
            continue
        for cited in rng.choice(candidates, size=min(4, len(candidates)),
                                replace=False):
            builder.add_edge(int(paper), int(cited), "cites")

    return builder.build()


def main() -> None:
    rng = np.random.default_rng(0)
    graph = build_academic_graph(rng)
    stats = compute_statistics(graph)
    print(graph)
    print(f"nodes per type: {stats.nodes_per_type}")
    print(f"edges per relationship: {stats.edges_per_relationship}")

    # Persist and reload — the on-disk format is a single TSV with a header.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "academic.graph"
        save_graph(graph, path)
        graph = load_graph(path)
        print(f"round-tripped through {path.name}: {graph.num_edges} edges")

    # Declare metapath schemes by hand (A-P-A: co-authorship; P-A-P: shared
    # author; P-P from citations is expressed as a direct scheme).
    patterns = ("A-P-A", "P-A-P")
    abbreviations = {"A": "author", "P": "paper", "V": "venue"}
    dataset = Dataset("academic", graph, patterns, abbreviations)

    split = split_edges(graph, rng=1)
    schemes = dataset.all_schemes()
    config = HybridGNNConfig(base_dim=16, edge_dim=8, exploration_depth=2)
    model = HybridGNN(split.train_graph, schemes, config, rng=2)
    trainer = SkipGramTrainer(
        model, schemes, split,
        TrainerConfig(epochs=5, num_walks=2, walk_length=8, window=3),
        rng=3,
    )
    trainer.fit()

    report = evaluate_link_prediction(model, split.test)
    for relation, metrics in report.per_relation.items():
        print(f"{relation}: ROC-AUC {metrics['roc_auc']:.2f}, "
              f"F1 {metrics['f1']:.2f}")

    # Query embeddings for downstream use (e.g. nearest-neighbor search).
    author_emb = model.node_embeddings(graph.nodes_of_type("author"), "writes")
    print(f"author embedding matrix: {author_emb.shape}")


if __name__ == "__main__":
    main()
