#!/usr/bin/env python
"""Quickstart: train HybridGNN on a Taobao-like multiplex graph.

Walks through the full pipeline on a small e-commerce-style dataset:

1. generate a multiplex heterogeneous graph (users/items under four
   behaviours, mirroring the paper's Taobao dataset);
2. split edges 85/5/10 with paired negatives (the paper's protocol);
3. train HybridGNN with the metapath-walk skip-gram objective;
4. evaluate link prediction (ROC-AUC / PR-AUC / F1) and top-10
   recommendation (PR@10 / HR@10) per relationship.

Runs in about a minute on a laptop CPU.
"""

from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
from repro.datasets import load_dataset, split_edges
from repro.eval import evaluate_link_prediction, evaluate_ranking
from repro.utils import format_table


def main() -> None:
    print("== 1. Dataset ==")
    dataset = load_dataset("taobao", scale=0.4, seed=0)
    print(dataset.graph)
    print("Metapath schemes per relationship (Table II):")
    for relation, schemes in dataset.all_schemes().items():
        print(f"  {relation}: " + ", ".join(s.describe() for s in schemes))

    print("\n== 2. Split ==")
    split = split_edges(dataset.graph, rng=1)
    print(f"train edges: {split.train_graph.num_edges}, "
          f"test relations: {list(split.test)}")

    print("\n== 3. Train HybridGNN ==")
    config = HybridGNNConfig(
        base_dim=32, edge_dim=16, exploration_depth=2, aggregator="mean",
    )
    schemes = dataset.all_schemes()
    model = HybridGNN(split.train_graph, schemes, config, rng=2)
    print(f"model parameters: {model.num_parameters():,}")
    trainer = SkipGramTrainer(
        model, schemes, split,
        TrainerConfig(epochs=6, num_walks=2, walk_length=8, window=3,
                      verbose=True),
        rng=3,
    )
    history = trainer.fit()
    print(f"best validation ROC-AUC: {history.best_val_score:.2f} "
          f"(epoch {history.best_epoch + 1})")

    print("\n== 4. Evaluate ==")
    link = evaluate_link_prediction(model, split.test)
    rows = [
        [relation, m["roc_auc"], m["pr_auc"], m["f1"]]
        for relation, m in link.per_relation.items()
    ]
    rows.append(["OVERALL", link["roc_auc"], link["pr_auc"], link["f1"]])
    print(format_table(["Relation", "ROC-AUC", "PR-AUC", "F1"], rows,
                       title="Link prediction (%)", float_fmt="{:.2f}"))

    ranking = evaluate_ranking(model, split.train_graph, split.test, k=10,
                               max_sources=50)
    rows = [
        [relation, m["pr_at_k"], m["hr_at_k"]]
        for relation, m in ranking.per_relation.items()
    ]
    print()
    print(format_table(["Relation", "PR@10", "HR@10"], rows,
                       title="Top-10 recommendation"))

    print("\n== 5. Inspect attention (the paper's Fig. 5 readout) ==")
    for relation in dataset.graph.schema.relationships:
        scores = model.metapath_attention_scores(relation, "user", rng=4)
        pretty = ", ".join(f"{k}={v:.2f}" for k, v in scores.items())
        print(f"  {relation}: {pretty}")


if __name__ == "__main__":
    main()
