#!/usr/bin/env python
"""Compare HybridGNN against the paper's baseline families on one dataset.

A scaled-down rendition of Table IV's Taobao column: every model trains on
the same split and is scored by one evaluator.  Pass a dataset name
(amazon, youtube, imdb, taobao, kuaishou) as the first argument.
"""

import sys
import time

from repro.datasets import load_dataset, split_edges
from repro.eval import evaluate_link_prediction, evaluate_ranking
from repro.experiments import get_profile, make_model
from repro.utils import format_table

MODELS = ["DeepWalk", "node2vec", "LINE", "GCN", "GraphSage",
          "HAN", "MAGNN", "R-GCN", "GATNE", "HybridGNN"]


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "taobao"
    profile = get_profile()
    print(f"dataset={dataset_name}, profile={profile.name}")

    dataset = load_dataset(dataset_name, scale=profile.scale, seed=0)
    split = split_edges(dataset.graph, rng=1)
    print(dataset.graph)

    rows = []
    for name in MODELS:
        start = time.time()
        model = make_model(name, profile, seed=0)
        model.fit(dataset, split)
        link = evaluate_link_prediction(model, split.test)
        ranking = evaluate_ranking(
            model, split.train_graph, split.test, k=10,
            max_sources=profile.ranking_max_sources,
        )
        rows.append([
            name, link["roc_auc"], link["pr_auc"], link["f1"],
            ranking["pr_at_k"], ranking["hr_at_k"],
            f"{time.time() - start:.1f}s",
        ])
        print(f"  {name}: ROC-AUC {link['roc_auc']:.2f}")

    print()
    print(format_table(
        ["Model", "ROC-AUC", "PR-AUC", "F1", "PR@10", "HR@10", "time"],
        rows, title=f"Link prediction on {dataset_name} ({profile.name} profile)",
        float_fmt="{:.3f}",
    ))


if __name__ == "__main__":
    main()
