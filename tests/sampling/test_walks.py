"""Random-walk samplers: uniform, node2vec-biased and metapath-guided."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetapathError
from repro.graph import MetapathScheme
from repro.sampling import (
    MetapathWalker,
    Node2VecWalker,
    UniformRandomWalker,
    relationship_walks,
)


class TestUniformWalker:
    def test_walk_stays_on_edges(self, small_graph):
        walker = UniformRandomWalker(small_graph, rng=0)
        walk = walker.walk(0, 10)
        for u, v in zip(walk, walk[1:]):
            assert any(
                small_graph.has_edge(u, v, rel)
                for rel in small_graph.schema.relationships
            )

    def test_walk_length_bounded(self, small_graph):
        walker = UniformRandomWalker(small_graph, rng=0)
        assert len(walker.walk(0, 5)) <= 5

    def test_walk_from_isolated_node_stops(self, small_schema):
        from repro.graph import GraphBuilder

        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 1)
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        walker = UniformRandomWalker(graph, rng=0)
        assert walker.walk(1, 10) == [1]

    def test_relation_restricted_walk(self, small_graph):
        walker = UniformRandomWalker(small_graph, relation="buy", rng=0)
        walk = walker.walk(0, 8)
        for u, v in zip(walk, walk[1:]):
            assert small_graph.has_edge(u, v, "buy")

    def test_walks_covers_all_nodes(self, small_graph):
        walker = UniformRandomWalker(small_graph, rng=0)
        walks = walker.walks(num_walks=2, length=4)
        assert len(walks) == 2 * small_graph.num_nodes
        starts = {walk[0] for walk in walks}
        assert starts == set(range(small_graph.num_nodes))

    def test_deterministic_with_seed(self, small_graph):
        w1 = UniformRandomWalker(small_graph, rng=42).walks(1, 6)
        w2 = UniformRandomWalker(small_graph, rng=42).walks(1, 6)
        assert w1 == w2


class TestNode2VecWalker:
    def test_walk_stays_on_edges(self, small_graph):
        walker = Node2VecWalker(small_graph, p=2.0, q=0.5, rng=0)
        walk = walker.walk(0, 10)
        for u, v in zip(walk, walk[1:]):
            assert any(
                small_graph.has_edge(u, v, rel)
                for rel in small_graph.schema.relationships
            )

    def test_invalid_pq_rejected(self, small_graph):
        with pytest.raises(ValueError):
            Node2VecWalker(small_graph, p=0.0)
        with pytest.raises(ValueError):
            Node2VecWalker(small_graph, q=-1.0)

    def test_high_p_discourages_backtracking(self, taobao_dataset):
        """With p >> 1 the walk should backtrack less than with p << 1."""
        graph = taobao_dataset.graph

        def backtrack_rate(p):
            walker = Node2VecWalker(graph, p=p, q=1.0, rng=3)
            backtracks = total = 0
            for walk in walker.walks(1, 10, nodes=np.arange(0, 60)):
                for i in range(2, len(walk)):
                    total += 1
                    backtracks += walk[i] == walk[i - 2]
            return backtracks / max(1, total)

        assert backtrack_rate(20.0) < backtrack_rate(0.05)


class TestMetapathWalker:
    def test_walk_follows_type_pattern(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]  # U-I-U
        walker = MetapathWalker(graph, scheme, rng=0)
        start = int(graph.nodes_of_type("user")[0])
        walk = walker.walk(start, 9)
        expected_cycle = ["user", "item"]
        for position, node in enumerate(walk):
            assert graph.node_type(node) == expected_cycle[position % 2]

    def test_walk_stays_in_relationship_subgraph(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("purchase")[0]
        walker = MetapathWalker(graph, scheme, rng=0)
        start = int(graph.nodes_of_type("user")[0])
        walk = walker.walk(start, 7)
        for u, v in zip(walk, walk[1:]):
            assert graph.has_edge(u, v, "purchase")

    def test_wrong_start_type_rejected(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]  # starts at user
        walker = MetapathWalker(graph, scheme, rng=0)
        item = int(graph.nodes_of_type("item")[0])
        with pytest.raises(MetapathError):
            walker.walk(item, 5)

    def test_inter_relationship_scheme_rejected(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = MetapathScheme(
            ["user", "item", "user"], ["page_view", "purchase"]
        )
        with pytest.raises(MetapathError):
            MetapathWalker(graph, scheme)

    def test_relationship_walks_pools_schemes(self, taobao_dataset):
        graph = taobao_dataset.graph
        schemes = taobao_dataset.schemes_for("page_view")
        walks = relationship_walks(graph, schemes, num_walks=1, length=5, rng=0)
        starts = {graph.node_type(w[0]) for w in walks}
        assert starts == {"user", "item"}  # U-I-U starts + I-U-I starts
