"""Negative sampling distributions and skip-gram context extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import UnigramNegativeSampler, batches, context_pairs


class TestUnigramNegativeSampler:
    def test_sample_shapes(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        assert sampler.sample(10).shape == (10,)
        assert sampler.sample(10, node_type="item").shape == (10,)

    def test_typed_sampling_respects_type(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        draws = sampler.sample(200, node_type="item")
        assert set(draws.tolist()) <= {3, 4, 5, 6}

    def test_sample_like_matches_types(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        nodes = np.asarray([0, 3, 1, 4])  # user, item, user, item
        negatives = sampler.sample_like(nodes, 5)
        assert negatives.shape == (4, 5)
        for node, row in zip(nodes, negatives):
            expected = small_graph.node_type(int(node))
            for neg in row:
                assert small_graph.node_type(int(neg)) == expected

    def test_degree_biased(self, taobao_dataset):
        """Higher-degree nodes should be drawn more often (power 0.75)."""
        graph = taobao_dataset.graph
        sampler = UnigramNegativeSampler(graph, rng=0)
        draws = sampler.sample(30_000)
        counts = np.bincount(draws, minlength=graph.num_nodes)
        degrees = graph.degrees()
        top = np.argsort(degrees)[-15:]
        bottom = np.argsort(degrees)[:15]
        assert counts[top].mean() > counts[bottom].mean()

    def test_uniform_when_power_zero(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, power=0.0, rng=0)
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=small_graph.num_nodes)
        assert counts.min() > 0.8 * counts.mean()

    def test_invalid_size_rejected(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        with pytest.raises(SamplingError):
            sampler.sample(0)


class TestContextPairs:
    def test_window_one(self):
        pairs = context_pairs([[1, 2, 3]], window=1)
        as_set = {tuple(p) for p in pairs.tolist()}
        assert as_set == {(1, 2), (2, 1), (2, 3), (3, 2)}

    def test_window_two_includes_skips(self):
        pairs = context_pairs([[1, 2, 3]], window=2)
        as_set = {tuple(p) for p in pairs.tolist()}
        assert (1, 3) in as_set and (3, 1) in as_set

    def test_empty_and_singleton_walks(self):
        assert context_pairs([[], [7]], window=2).shape == (0, 2)

    def test_pair_count_formula(self):
        """A walk of length L with window w has sum over i of |C(v_i)| pairs."""
        walk = list(range(10))
        pairs = context_pairs([walk], window=3)
        expected = sum(
            min(len(walk), i + 4) - max(0, i - 3) - 1 for i in range(len(walk))
        )
        assert len(pairs) == expected

    def test_invalid_window_rejected(self):
        with pytest.raises(SamplingError):
            context_pairs([[1, 2]], window=0)


class TestBatches:
    def test_batches_cover_all_pairs(self):
        pairs = np.arange(20).reshape(10, 2)
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(batches(pairs, 3, rng)))
        assert sorted(map(tuple, seen.tolist())) == sorted(map(tuple, pairs.tolist()))

    def test_batch_sizes(self):
        pairs = np.arange(20).reshape(10, 2)
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in batches(pairs, 4, rng)]
        assert sizes == [4, 4, 2]

    def test_invalid_batch_size(self):
        with pytest.raises(SamplingError):
            list(batches(np.zeros((2, 2), dtype=int), 0, np.random.default_rng(0)))
