"""Negative sampling distributions and skip-gram context extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.graph import GraphBuilder, GraphSchema
from repro.sampling import UnigramNegativeSampler, batches, context_pairs


class TestUnigramNegativeSampler:
    def test_sample_shapes(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        assert sampler.sample(10).shape == (10,)
        assert sampler.sample(10, node_type="item").shape == (10,)

    def test_typed_sampling_respects_type(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        draws = sampler.sample(200, node_type="item")
        assert set(draws.tolist()) <= {3, 4, 5, 6}

    def test_sample_like_matches_types(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        nodes = np.asarray([0, 3, 1, 4])  # user, item, user, item
        negatives = sampler.sample_like(nodes, 5)
        assert negatives.shape == (4, 5)
        for node, row in zip(nodes, negatives):
            expected = small_graph.node_type(int(node))
            for neg in row:
                assert small_graph.node_type(int(neg)) == expected

    def test_degree_biased(self, taobao_dataset):
        """Higher-degree nodes should be drawn more often (power 0.75)."""
        graph = taobao_dataset.graph
        sampler = UnigramNegativeSampler(graph, rng=0)
        draws = sampler.sample(30_000)
        counts = np.bincount(draws, minlength=graph.num_nodes)
        degrees = graph.degrees()
        top = np.argsort(degrees)[-15:]
        bottom = np.argsort(degrees)[:15]
        assert counts[top].mean() > counts[bottom].mean()

    def test_uniform_when_power_zero(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, power=0.0, rng=0)
        draws = sampler.sample(20_000)
        counts = np.bincount(draws, minlength=small_graph.num_nodes)
        assert counts.min() > 0.8 * counts.mean()

    def test_invalid_size_rejected(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        with pytest.raises(SamplingError):
            sampler.sample(0)


class TestExcludePositive:
    def test_default_off_is_bit_identical(self, small_graph):
        """exclude_positive=False must not perturb the historical stream."""
        nodes = np.asarray([0, 3, 1, 4, 2, 5])
        baseline = UnigramNegativeSampler(small_graph, rng=0).sample_like(
            nodes, 7)
        explicit = UnigramNegativeSampler(small_graph, rng=0).sample_like(
            nodes, 7, exclude_positive=False)
        np.testing.assert_array_equal(baseline, explicit)

    def test_positive_never_among_negatives(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=0)
        nodes = np.tile(np.asarray([0, 3, 1, 4, 2, 5, 6]), 50)
        negatives = sampler.sample_like(nodes, 5, exclude_positive=True)
        assert not np.any(negatives == nodes[:, None])

    def test_types_still_respected(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, rng=1)
        nodes = np.asarray([0, 3, 1, 4])
        negatives = sampler.sample_like(nodes, 6, exclude_positive=True)
        for node, row in zip(nodes, negatives):
            expected = small_graph.node_type(int(node))
            for neg in row:
                assert small_graph.node_type(int(neg)) == expected

    def test_degenerate_type_raises(self):
        """A type with a single node cannot exclude that node."""
        schema = GraphSchema(["user", "item"], ["view"])
        builder = GraphBuilder(schema)
        builder.add_nodes("user", 1)
        builder.add_nodes("item", 3)
        for item in (1, 2, 3):
            builder.add_edge(0, item, "view")
        graph = builder.build()
        sampler = UnigramNegativeSampler(graph, rng=0)
        with pytest.raises(SamplingError):
            sampler.sample_like(np.asarray([0]), 2, exclude_positive=True)

    @settings(max_examples=40, deadline=None)
    @given(
        positives=st.lists(st.integers(0, 6), min_size=1, max_size=16),
        num_negatives=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    def test_property_excluded_node_never_appears(
            self, positives, num_negatives, seed):
        """For any positive mix, seed and width, the excluded node never
        shows up in its own row (the rest of the row stays type-valid)."""
        schema = GraphSchema(["user", "item"], ["view", "buy"])
        builder = GraphBuilder(schema)
        builder.add_nodes("user", 3)
        builder.add_nodes("item", 4)
        for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
            builder.add_edge(u, v, "view")
        for u, v in [(0, 3), (1, 4), (2, 5)]:
            builder.add_edge(u, v, "buy")
        graph = builder.build()
        sampler = UnigramNegativeSampler(graph, rng=seed)
        nodes = np.asarray(positives, dtype=np.int64)
        negatives = sampler.sample_like(
            nodes, num_negatives, exclude_positive=True)
        assert negatives.shape == (len(nodes), num_negatives)
        assert not np.any(negatives == nodes[:, None])
        codes = graph.node_type_codes
        assert np.array_equal(
            np.broadcast_to(codes[nodes][:, None], negatives.shape),
            codes[negatives],
        )


class TestContextPairs:
    def test_window_one(self):
        pairs = context_pairs([[1, 2, 3]], window=1)
        as_set = {tuple(p) for p in pairs.tolist()}
        assert as_set == {(1, 2), (2, 1), (2, 3), (3, 2)}

    def test_window_two_includes_skips(self):
        pairs = context_pairs([[1, 2, 3]], window=2)
        as_set = {tuple(p) for p in pairs.tolist()}
        assert (1, 3) in as_set and (3, 1) in as_set

    def test_empty_and_singleton_walks(self):
        assert context_pairs([[], [7]], window=2).shape == (0, 2)

    def test_pair_count_formula(self):
        """A walk of length L with window w has sum over i of |C(v_i)| pairs."""
        walk = list(range(10))
        pairs = context_pairs([walk], window=3)
        expected = sum(
            min(len(walk), i + 4) - max(0, i - 3) - 1 for i in range(len(walk))
        )
        assert len(pairs) == expected

    def test_invalid_window_rejected(self):
        with pytest.raises(SamplingError):
            context_pairs([[1, 2]], window=0)


class TestBatches:
    def test_batches_cover_all_pairs(self):
        pairs = np.arange(20).reshape(10, 2)
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(batches(pairs, 3, rng)))
        assert sorted(map(tuple, seen.tolist())) == sorted(map(tuple, pairs.tolist()))

    def test_batch_sizes(self):
        pairs = np.arange(20).reshape(10, 2)
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in batches(pairs, 4, rng)]
        assert sizes == [4, 4, 2]

    def test_invalid_batch_size(self):
        with pytest.raises(SamplingError):
            list(batches(np.zeros((2, 2), dtype=int), 0, np.random.default_rng(0)))
