"""Batched frontier walk engine: equivalence with the scalar references."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder, GraphSchema
from repro.sampling import (
    PAD,
    MetapathWalker,
    Node2VecWalker,
    RandomizedExploration,
    UniformRandomWalker,
    concat_matrices,
    context_pairs,
    matrix_to_walks,
    run_frontier,
    walks_to_matrix,
)
from repro.sampling.context import _reference_context_pairs


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
class TestRunFrontier:
    def test_walk_matrix_shape_and_padding(self):
        def step(nodes, position, walker_ids):
            return nodes + 1, np.ones(nodes.size, dtype=bool)

        matrix, lengths = run_frontier(np.asarray([0, 10]), 4, step)
        assert matrix.shape == (2, 4)
        assert np.array_equal(matrix, [[0, 1, 2, 3], [10, 11, 12, 13]])
        assert np.array_equal(lengths, [4, 4])

    def test_dead_walkers_masked_not_terminated(self):
        # Walker 1 dies at position 1; walker 0 keeps going.
        def step(nodes, position, walker_ids):
            moved = walker_ids != 1
            return nodes + 1, moved

        matrix, lengths = run_frontier(np.asarray([0, 100, 200]), 4, step)
        assert np.array_equal(lengths, [4, 1, 4])
        assert np.array_equal(matrix[1], [100, PAD, PAD, PAD])
        assert np.array_equal(matrix[0], [0, 1, 2, 3])

    def test_all_dead_stops_stepping(self):
        calls = []

        def step(nodes, position, walker_ids):
            calls.append(position)
            return nodes, np.zeros(nodes.size, dtype=bool)

        matrix, lengths = run_frontier(np.asarray([5, 6]), 10, step)
        assert calls == [1]  # no further calls once the frontier is empty
        assert np.array_equal(lengths, [1, 1])

    def test_empty_starts(self):
        matrix, lengths = run_frontier(np.empty(0, dtype=np.int64), 5, None)
        assert matrix.shape[0] == 0 and lengths.shape == (0,)

    def test_walks_matrix_round_trip(self):
        walks = [[1, 2, 3], [4], [5, 6], []]
        matrix, lengths = walks_to_matrix(walks)
        assert matrix.shape == (4, 3)
        assert matrix[1, 1] == PAD
        assert matrix_to_walks(matrix, lengths) == walks

    def test_concat_matrices_repads(self):
        a = walks_to_matrix([[1, 2, 3]])
        b = walks_to_matrix([[4], [5, 6]])
        matrix, lengths = concat_matrices([a, b])
        assert matrix.shape == (3, 3)
        assert np.array_equal(lengths, [3, 1, 2])
        assert matrix_to_walks(matrix, lengths) == [[1, 2, 3], [4], [5, 6]]


# ----------------------------------------------------------------------
# Seeded reproducibility: same rng seed -> same walk matrix
# ----------------------------------------------------------------------
class TestReproducibility:
    def test_uniform_walk_matrix_deterministic(self, small_graph):
        starts = np.arange(small_graph.num_nodes)
        m1 = UniformRandomWalker(small_graph, rng=42).walk_matrix(starts, 8)
        m2 = UniformRandomWalker(small_graph, rng=42).walk_matrix(starts, 8)
        assert np.array_equal(m1[0], m2[0])
        assert np.array_equal(m1[1], m2[1])

    def test_node2vec_walk_matrix_deterministic(self, taobao_dataset):
        graph = taobao_dataset.graph
        starts = np.arange(60)
        m1 = Node2VecWalker(graph, p=2.0, q=0.5, rng=7).walk_matrix(starts, 10)
        m2 = Node2VecWalker(graph, p=2.0, q=0.5, rng=7).walk_matrix(starts, 10)
        assert np.array_equal(m1[0], m2[0])

    def test_metapath_walks_matrix_deterministic(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        m1 = MetapathWalker(graph, scheme, rng=3).walks_matrix(2, 7)
        m2 = MetapathWalker(graph, scheme, rng=3).walks_matrix(2, 7)
        assert np.array_equal(m1[0], m2[0])


# ----------------------------------------------------------------------
# Batched walkers vs scalar references
# ----------------------------------------------------------------------
class TestMetapathEquivalence:
    def test_same_type_sequences_as_reference(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]  # U-I-U
        walker = MetapathWalker(graph, scheme, rng=0)
        starts = graph.nodes_of_type("user")
        matrix, lengths = walker.walk_matrix(starts, 9)
        reference = [walker._reference_walk(int(s), 9) for s in starts]
        codes = graph.node_type_codes
        for row, n, ref in zip(matrix, lengths, reference):
            batched_types = codes[row[:n]].tolist()
            ref_types = codes[np.asarray(ref)].tolist()
            # Same cyclic type pattern at every shared position.
            shared = min(len(batched_types), len(ref_types))
            assert batched_types[:shared] == ref_types[:shared]

    def test_batched_walks_stay_in_relationship(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("purchase")[0]
        walker = MetapathWalker(graph, scheme, rng=0)
        matrix, lengths = walker.walks_matrix(1, 7)
        for row, n in zip(matrix, lengths):
            for u, v in zip(row[: n - 1], row[1:n]):
                assert graph.has_edge(int(u), int(v), "purchase")


class TestTransitionDistributions:
    """Batched engine draws from the same distributions as the references."""

    @staticmethod
    def _star_graph(degree: int):
        schema = GraphSchema(["node"], ["link"])
        builder = GraphBuilder(schema)
        builder.add_nodes("node", degree + 1)
        for leaf in range(1, degree + 1):
            builder.add_edge(0, leaf, "link")
        return builder.build()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 12), st.integers(0, 10_000))
    def test_uniform_first_step_distribution(self, degree, seed):
        graph = self._star_graph(degree)
        walker = UniformRandomWalker(graph, rng=seed)
        draws = 400 * degree
        matrix, _ = walker.walk_matrix(np.zeros(draws, dtype=np.int64), 2)
        counts = np.bincount(matrix[:, 1], minlength=degree + 1)[1:]
        expected = draws / degree
        assert counts.min() > 0.5 * expected
        assert counts.max() < 2.0 * expected

    @staticmethod
    def _per_node_distribution(walker, prev, cur, num_nodes):
        """Exact next-node distribution, summing over parallel-edge slots."""
        candidates = walker._neighbors(cur)
        slot_probs = walker._edge_weights(prev, candidates)
        slot_probs = slot_probs / slot_probs.sum()
        exact = np.zeros(num_nodes)
        np.add.at(exact, candidates, slot_probs)
        return exact

    def test_node2vec_second_step_matches_reference(self, taobao_dataset):
        """Empirical (prev, cur) -> next frequencies agree between paths."""
        graph = taobao_dataset.graph
        # Find a (prev, cur) pair where cur has several neighbors.
        walker = Node2VecWalker(graph, p=4.0, q=0.25, rng=0)
        degrees = np.diff(walker._indptr)
        cur = int(np.argmax(degrees))
        prev = int(walker._neighbors(cur)[0])
        exact = self._per_node_distribution(walker, prev, cur, graph.num_nodes)

        trials = 6000
        prev_arr = np.full(trials, prev, dtype=np.int64)
        cur_arr = np.full(trials, cur, dtype=np.int64)
        nxt, moved = walker._biased_step(prev_arr, cur_arr)
        assert moved.all()
        empirical = np.zeros(graph.num_nodes)
        np.add.at(empirical, nxt, 1.0 / trials)
        np.testing.assert_allclose(empirical, exact, atol=0.035)

    def test_node2vec_alias_fallback_matches_reference(self, taobao_dataset):
        """Tiny frontiers (alias-table path) draw from the same distribution."""
        graph = taobao_dataset.graph
        walker = Node2VecWalker(graph, p=4.0, q=0.25, rng=0, alias_threshold=10)
        degrees = np.diff(walker._indptr)
        cur = int(np.argmax(degrees))
        prev = int(walker._neighbors(cur)[0])
        exact = self._per_node_distribution(walker, prev, cur, graph.num_nodes)

        trials = 6000
        hits = np.zeros(graph.num_nodes)
        for _ in range(trials):  # frontier of 1 < alias_threshold
            nxt, moved = walker._biased_step(
                np.asarray([prev], dtype=np.int64), np.asarray([cur], dtype=np.int64)
            )
            hits[nxt[0]] += 1.0 / trials
        np.testing.assert_allclose(hits, exact, atol=0.035)

    def test_exploration_batched_matches_scalar_walk(self, taobao_dataset):
        graph = taobao_dataset.graph
        exploration = RandomizedExploration(graph, rng=5)
        matrix, lengths, relations = exploration.walk_matrix(np.arange(40), 6)
        names = exploration._relations
        for row, n, rels in zip(matrix, lengths, relations):
            for t in range(1, int(n)):
                relation = names[int(rels[t])]
                assert graph.has_edge(int(row[t - 1]), int(row[t]), relation)
            assert np.all(rels[int(n):] == PAD)

    def test_exploration_reference_still_valid(self, taobao_dataset):
        graph = taobao_dataset.graph
        exploration = RandomizedExploration(graph, rng=5)
        path, rels = exploration._reference_walk(0, 6)
        assert len(rels) == len(path) - 1
        for (u, v), relation in zip(zip(path, path[1:]), rels):
            assert graph.has_edge(u, v, relation)


# ----------------------------------------------------------------------
# context_pairs: vectorised window extraction is bit-identical to the loop
# ----------------------------------------------------------------------
class TestContextPairEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 30), min_size=0, max_size=14),
            min_size=0, max_size=10,
        ),
        st.integers(1, 6),
    )
    def test_exactly_identical_to_reference(self, corpus, window):
        batched = context_pairs(corpus, window)
        reference = _reference_context_pairs(corpus, window)
        assert batched.dtype == reference.dtype
        assert np.array_equal(batched, reference)

    def test_matrix_input_identical_to_list_input(self, small_graph):
        walker = UniformRandomWalker(small_graph, rng=11)
        matrix, lengths = walker.walks_matrix(3, 8)
        from_matrix = context_pairs((matrix, lengths), 3)
        from_lists = context_pairs(matrix_to_walks(matrix, lengths), 3)
        reference = _reference_context_pairs(matrix_to_walks(matrix, lengths), 3)
        assert np.array_equal(from_matrix, from_lists)
        assert np.array_equal(from_matrix, reference)

    def test_walk_corpus_equivalence(self, taobao_dataset):
        """End-to-end: random-walk corpus pairs identical across paths."""
        graph = taobao_dataset.graph
        walks = UniformRandomWalker(graph, rng=2).walks(2, 10)
        assert np.array_equal(
            context_pairs(walks, 4), _reference_context_pairs(walks, 4)
        )
