"""Property-based tests for the sampling primitives (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.adjacency import sample_uniform_neighbors, step_uniform


@st.composite
def csr_adjacency(draw):
    """A random small CSR adjacency (not necessarily symmetric)."""
    num_nodes = draw(st.integers(2, 8))
    rows = []
    indices = []
    indptr = [0]
    for node in range(num_nodes):
        degree = draw(st.integers(0, 4))
        neighbors = draw(
            st.lists(st.integers(0, num_nodes - 1), min_size=degree,
                     max_size=degree)
        )
        indices.extend(neighbors)
        indptr.append(len(indices))
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(indices, dtype=np.int64),
        num_nodes,
    )


@settings(max_examples=60, deadline=None)
@given(csr_adjacency(), st.integers(1, 5), st.integers(0, 10_000))
def test_sampled_neighbors_come_from_adjacency(adj, count, seed):
    indptr, indices, num_nodes = adj
    rng = np.random.default_rng(seed)
    nodes = np.arange(num_nodes)
    sampled = sample_uniform_neighbors(indptr, indices, nodes, count, rng)
    assert sampled.shape == (num_nodes, count)
    for node in range(num_nodes):
        neighbors = set(indices[indptr[node]: indptr[node + 1]].tolist())
        for value in sampled[node]:
            if neighbors:
                assert int(value) in neighbors
            else:
                assert int(value) == node  # self fallback


@settings(max_examples=60, deadline=None)
@given(csr_adjacency(), st.integers(0, 10_000))
def test_step_uniform_moves_only_along_edges(adj, seed):
    indptr, indices, num_nodes = adj
    rng = np.random.default_rng(seed)
    nodes = np.arange(num_nodes)
    next_nodes, moved = step_uniform(indptr, indices, nodes, rng)
    for node in range(num_nodes):
        neighbors = set(indices[indptr[node]: indptr[node + 1]].tolist())
        if moved[node]:
            assert int(next_nodes[node]) in neighbors
        else:
            assert not neighbors
            assert next_nodes[node] == node


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 30), st.integers(1, 6), st.integers(0, 1000))
def test_sampling_is_uniform_over_neighbors(degree, count, seed):
    """Chi-square-lite: with many draws each neighbor appears roughly equally."""
    indptr = np.asarray([0, degree], dtype=np.int64)
    indices = np.arange(1, degree + 1, dtype=np.int64) % (degree + 1)
    rng = np.random.default_rng(seed)
    draws = sample_uniform_neighbors(
        indptr, indices, np.zeros(4000 // count, dtype=np.int64), count, rng
    ).reshape(-1)
    counts = np.bincount(draws, minlength=degree + 2)[1: degree + 1]
    expected = len(draws) / degree
    assert counts.min() > 0.3 * expected
    assert counts.max() < 3.0 * expected


class TestContextPairProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=2, max_size=15),
           st.integers(1, 5))
    def test_pairs_symmetric(self, walk, window):
        from repro.sampling import context_pairs

        pairs = {tuple(p) for p in context_pairs([walk], window).tolist()}
        for center, context in pairs:
            assert (context, center) in pairs

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=2, max_size=15),
           st.integers(1, 5))
    def test_pairs_within_window(self, walk, window):
        from repro.sampling import context_pairs

        pairs = context_pairs([walk], window)
        for center, context in pairs.tolist():
            # Some position pair within the window must justify this pair.
            ok = any(
                walk[i] == center and walk[k] == context
                for i in range(len(walk))
                for k in range(max(0, i - window), min(len(walk), i + window + 1))
                if k != i
            )
            assert ok
