"""Alias-method sampling tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sampling import AliasTable


class TestConstruction:
    def test_uniform_weights(self):
        table = AliasTable(np.ones(5))
        np.testing.assert_allclose(table.probabilities(), 0.2)

    def test_skewed_weights(self):
        table = AliasTable(np.asarray([3.0, 1.0]))
        np.testing.assert_allclose(table.probabilities(), [0.75, 0.25])

    def test_single_element(self):
        table = AliasTable(np.asarray([7.0]))
        np.testing.assert_allclose(table.probabilities(), [1.0])
        assert set(table.sample(50, rng=0).tolist()) == {0}

    def test_zero_weight_element_never_sampled(self):
        table = AliasTable(np.asarray([1.0, 0.0, 1.0]))
        draws = table.sample(5000, rng=0)
        assert 1 not in set(draws.tolist())

    def test_invalid_weights_rejected(self):
        with pytest.raises(SamplingError):
            AliasTable(np.asarray([]))
        with pytest.raises(SamplingError):
            AliasTable(np.asarray([-1.0, 2.0]))
        with pytest.raises(SamplingError):
            AliasTable(np.zeros(3))
        with pytest.raises(SamplingError):
            AliasTable(np.ones((2, 2)))


class TestSampling:
    def test_empirical_distribution_matches(self):
        weights = np.asarray([1.0, 2.0, 3.0, 4.0])
        table = AliasTable(weights)
        draws = table.sample(100_000, rng=0)
        counts = np.bincount(draws, minlength=4) / len(draws)
        np.testing.assert_allclose(counts, weights / weights.sum(), atol=0.01)

    def test_invalid_size_rejected(self):
        with pytest.raises(SamplingError):
            AliasTable(np.ones(3)).sample(0)

    def test_deterministic_with_seed(self):
        table = AliasTable(np.asarray([1.0, 5.0, 2.0]))
        np.testing.assert_array_equal(table.sample(100, rng=3),
                                      table.sample(100, rng=3))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
def test_reconstructed_probabilities_match_weights(weights):
    weights = np.asarray(weights)
    table = AliasTable(weights)
    np.testing.assert_allclose(
        table.probabilities(), weights / weights.sum(), atol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=10),
       st.integers(0, 10_000))
def test_draws_in_range(weights, seed):
    table = AliasTable(np.asarray(weights))
    draws = table.sample(200, rng=seed)
    assert draws.min() >= 0 and draws.max() < len(weights)
