"""Randomized inter-relationship exploration (paper Sect. III-B, Eqs. 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import RandomizedExploration


class TestTransitionProbabilities:
    def test_eq1_uniform_over_active_relationships(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        # Node 0 has neighbors under both relationships.
        probs = explorer.transition_probabilities(0)
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_eq1_zero_for_empty_relationships(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        # Node 6 only has a 'view' neighbor.
        probs = explorer.transition_probabilities(6)
        np.testing.assert_allclose(probs, [1.0, 0.0])

    def test_eq1_all_zero_for_isolated_node(self, small_schema):
        from repro.graph import GraphBuilder

        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 1)
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        explorer = RandomizedExploration(graph, rng=0)
        np.testing.assert_allclose(explorer.transition_probabilities(1), [0.0, 0.0])


class TestStep:
    def test_step_moves_along_some_relationship(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        nodes = np.asarray([0, 1, 2])
        next_nodes, chosen = explorer.step(nodes)
        for before, after, rel_idx in zip(nodes, next_nodes, chosen):
            relation = small_graph.schema.relationships[rel_idx]
            assert small_graph.has_edge(int(before), int(after), relation)

    def test_isolated_node_stays(self, small_schema):
        from repro.graph import GraphBuilder

        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 1)
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        explorer = RandomizedExploration(graph, rng=0)
        next_nodes, chosen = explorer.step(np.asarray([1]))
        assert next_nodes[0] == 1
        assert chosen[0] == -1

    def test_empirical_relation_distribution_matches_eq1(self, small_graph):
        """Phase-1 sampling should be uniform over active relationships."""
        explorer = RandomizedExploration(small_graph, rng=0)
        nodes = np.zeros(4000, dtype=np.int64)  # node 0: both relations active
        _, chosen = explorer.step(nodes)
        frequencies = np.bincount(chosen, minlength=2) / len(nodes)
        np.testing.assert_allclose(frequencies, [0.5, 0.5], atol=0.05)

    def test_empirical_neighbor_distribution_matches_eq2(self, small_graph):
        """Phase-2 sampling is uniform over N_r(v)."""
        explorer = RandomizedExploration(small_graph, rng=1)
        nodes = np.zeros(6000, dtype=np.int64)
        next_nodes, chosen = explorer.step(nodes)
        # Conditioned on relation 'view' (index 0), node 0's neighbors are 3, 4.
        view_targets = next_nodes[chosen == 0]
        counts = np.bincount(view_targets, minlength=7)
        assert counts[3] > 0 and counts[4] > 0
        ratio = counts[3] / counts[4]
        assert 0.8 < ratio < 1.25


class TestWalkAndLayers:
    def test_walk_crosses_relationships(self, taobao_dataset):
        """On a multiplex graph, long exploration walks should use more than
        one relationship (the whole point of inter-relationship sampling)."""
        explorer = RandomizedExploration(taobao_dataset.graph, rng=0)
        used = set()
        for start in range(0, 40):
            _, relations = explorer.walk(start, 12)
            used.update(relations)
        assert len(used) > 1

    def test_walk_edges_exist(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        path, relations = explorer.walk(0, 10)
        for (u, v), relation in zip(zip(path, path[1:]), relations):
            assert small_graph.has_edge(u, v, relation)

    def test_sample_layers_shapes(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        layers = explorer.sample_layers(np.asarray([0, 1, 2, 3]), 2, [3, 2])
        assert layers[0].shape == (4,)
        assert layers[1].shape == (4, 3)
        assert layers[2].shape == (4, 6)

    def test_sample_layers_depth_mismatch_rejected(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        with pytest.raises(ValueError):
            explorer.sample_layers(np.asarray([0]), 2, [3])

    def test_layer_entries_are_neighbors_of_parents(self, small_graph):
        explorer = RandomizedExploration(small_graph, rng=0)
        layers = explorer.sample_layers(np.asarray([0, 1]), 1, [4])
        for row, parent in zip(layers[1], layers[0]):
            for child in row:
                connected = any(
                    small_graph.has_edge(int(parent), int(child), rel)
                    for rel in small_graph.schema.relationships
                )
                assert connected or child == parent
