"""Metapath-guided neighbor sampling (paper Def. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetapathError
from repro.graph import MetapathScheme
from repro.sampling import MetapathNeighborSampler


@pytest.fixture
def uiu_sampler(taobao_dataset):
    scheme = taobao_dataset.schemes_for("page_view")[0]  # U-I-U
    return MetapathNeighborSampler(taobao_dataset.graph, scheme, [3, 2], rng=0)


class TestSampleLayers:
    def test_layer_shapes(self, uiu_sampler, taobao_dataset):
        users = taobao_dataset.graph.nodes_of_type("user")[:5]
        layers = uiu_sampler.sample_layers(users)
        assert layers[0].shape == (5,)
        assert layers[1].shape == (5, 3)
        assert layers[2].shape == (5, 6)

    def test_layer_types_follow_scheme(self, uiu_sampler, taobao_dataset):
        graph = taobao_dataset.graph
        users = graph.nodes_of_type("user")[:5]
        layers = uiu_sampler.sample_layers(users)
        level1_types = {graph.node_type(int(v)) for v in layers[1].reshape(-1)}
        # Items, except where a user had no item neighbor (self fallback).
        assert level1_types <= {"item", "user"}
        # At least some genuine item neighbors must appear.
        assert "item" in level1_types

    def test_sampled_neighbors_are_guided_neighbors(self, uiu_sampler, taobao_dataset):
        graph = taobao_dataset.graph
        user = int(graph.nodes_of_type("user")[0])
        exact = set(uiu_sampler.guided_neighbors(user, 1).tolist())
        if not exact:
            pytest.skip("start node has no guided neighbors")
        layers = uiu_sampler.sample_layers(np.asarray([user]))
        sampled = set(layers[1].reshape(-1).tolist())
        assert sampled <= exact | {user}

    def test_fallback_for_node_without_neighbors(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("download" if "download" in
                                            graph.schema.relationships else
                                            "purchase")[0]
        sampler = MetapathNeighborSampler(graph, scheme, [2, 2], rng=0)
        users = graph.nodes_of_type("user")
        # Find a user with no 'purchase' neighbors (sparse relation).
        isolated = [u for u in users if graph.degree(int(u), scheme.relations[0]) == 0]
        if not isolated:
            pytest.skip("all users active under the sparse relation")
        layers = sampler.sample_layers(np.asarray(isolated[:1]))
        np.testing.assert_array_equal(layers[1][0], [isolated[0]] * 2)


class TestGuidedNeighbors:
    def test_step_zero_is_self(self, uiu_sampler, taobao_dataset):
        user = int(taobao_dataset.graph.nodes_of_type("user")[0])
        np.testing.assert_array_equal(uiu_sampler.guided_neighbors(user, 0), [user])

    def test_step_one_are_typed_relationship_neighbors(self, uiu_sampler, taobao_dataset):
        graph = taobao_dataset.graph
        user = int(graph.nodes_of_type("user")[0])
        guided = uiu_sampler.guided_neighbors(user, 1)
        direct = graph.neighbors(user, "page_view")
        item_code = graph.schema.node_type_index("item")
        expected = sorted(
            int(v) for v in direct if graph.node_type_codes[v] == item_code
        )
        assert guided.tolist() == expected

    def test_out_of_range_step_rejected(self, uiu_sampler):
        with pytest.raises(MetapathError):
            uiu_sampler.guided_neighbors(0, 5)


class TestValidation:
    def test_fanout_count_mismatch(self, taobao_dataset):
        scheme = taobao_dataset.schemes_for("page_view")[0]
        with pytest.raises(MetapathError):
            MetapathNeighborSampler(taobao_dataset.graph, scheme, [3])

    def test_nonpositive_fanout(self, taobao_dataset):
        scheme = taobao_dataset.schemes_for("page_view")[0]
        with pytest.raises(MetapathError):
            MetapathNeighborSampler(taobao_dataset.graph, scheme, [3, 0])

    def test_scheme_must_match_schema(self, small_graph):
        scheme = MetapathScheme.intra(["user", "video", "user"], "view")
        with pytest.raises(MetapathError):
            MetapathNeighborSampler(small_graph, scheme, [2, 2])
