"""Multiplexity measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    multiplexity_profile,
    relationship_degree_correlation,
    relationship_overlap_matrix,
)


class TestMultiplexityProfile:
    def test_small_graph_counts(self, small_graph):
        profile = multiplexity_profile(small_graph)
        # Edges: view {03,04,13,15,24,26}, buy {03,14,25}; only (0,3) repeats.
        assert profile.num_connected_pairs == 8
        assert profile.num_multiplex_pairs == 1
        assert profile.multiplexity_rate == pytest.approx(1 / 8)
        assert profile.max_relationships_per_pair == 2

    def test_jaccard_value(self, small_graph):
        profile = multiplexity_profile(small_graph)
        # |view ∩ buy| = 1, |view ∪ buy| = 8.
        assert profile.relationship_jaccard[("view", "buy")] == pytest.approx(1 / 8)

    def test_most_correlated(self, small_graph):
        pair, value = multiplexity_profile(small_graph).most_correlated()
        assert pair == ("view", "buy")
        assert value == pytest.approx(1 / 8)

    def test_alikes_are_multiplex(self, taobao_dataset):
        """The dataset-alikes must genuinely carry the multiplexity property."""
        profile = multiplexity_profile(taobao_dataset.graph)
        assert profile.multiplexity_rate > 0.05
        assert profile.max_relationships_per_pair >= 2

    def test_single_relation_graph_not_multiplex(self, taobao_dataset):
        sub = taobao_dataset.graph.relationship_subgraph(["page_view"])
        profile = multiplexity_profile(sub)
        assert profile.num_multiplex_pairs == 0
        assert profile.relationship_jaccard == {}


class TestOverlapMatrix:
    def test_shape_and_symmetry(self, taobao_dataset):
        matrix = relationship_overlap_matrix(taobao_dataset.graph)
        num_rel = taobao_dataset.graph.schema.num_relationships
        assert matrix.shape == (num_rel, num_rel)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_funnel_relations_overlap_most(self, taobao_dataset):
        """purchase copies half its edges from add_to_cart by construction."""
        graph = taobao_dataset.graph
        relations = list(graph.schema.relationships)
        matrix = relationship_overlap_matrix(graph)
        i = relations.index("add_to_cart")
        j = relations.index("purchase")
        k = relations.index("favorite")
        assert matrix[i, j] > matrix[i, k]


class TestDegreeCorrelation:
    def test_shape_and_bounds(self, taobao_dataset):
        matrix = relationship_degree_correlation(taobao_dataset.graph)
        assert np.all(matrix <= 1.0 + 1e-9) and np.all(matrix >= -1.0 - 1e-9)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_zero_variance_handled(self, small_schema):
        from repro.graph import GraphBuilder

        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 3)
        builder.add_nodes("item", 3)
        builder.add_edge(0, 3, "view")
        # 'buy' has no edges: zero-variance degree vector.
        graph = builder.build()
        matrix = relationship_degree_correlation(graph)
        assert np.isfinite(matrix).all()
