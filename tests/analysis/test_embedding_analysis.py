"""Embedding diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    cross_relation_similarity,
    embedding_health,
    neighborhood_alignment,
)
from repro.errors import EvaluationError


class TableModel:
    """Fixed per-relation embedding tables for testing."""

    def __init__(self, tables):
        self.tables = tables

    def node_embeddings(self, nodes, relation):
        return self.tables[relation][np.asarray(nodes, dtype=np.int64)]


class TestEmbeddingHealth:
    def test_healthy_embeddings(self):
        rng = np.random.default_rng(0)
        model = TableModel({"r": rng.normal(size=(20, 8))})
        health = embedding_health(model, 20, "r")
        assert health.finite
        assert not health.collapsed
        assert health.mean_norm > 0

    def test_collapse_detected(self):
        model = TableModel({"r": np.tile([1.0, 2.0], (20, 1))})
        health = embedding_health(model, 20, "r")
        assert health.collapsed

    def test_nan_detected(self):
        table = np.ones((10, 4))
        table[3, 2] = np.nan
        model = TableModel({"r": table})
        assert not embedding_health(model, 10, "r").finite


class TestCrossRelationSimilarity:
    def test_identical_tables_give_one(self):
        table = np.random.default_rng(0).normal(size=(15, 6))
        model = TableModel({"a": table, "b": table.copy()})
        matrix = cross_relation_similarity(model, 15, ["a", "b"])
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_independent_tables_give_near_zero(self):
        rng = np.random.default_rng(0)
        model = TableModel({
            "a": rng.normal(size=(500, 32)),
            "b": rng.normal(size=(500, 32)),
        })
        matrix = cross_relation_similarity(model, 500, ["a", "b"])
        assert abs(matrix[0, 1]) < 0.1

    def test_empty_relations_rejected(self):
        model = TableModel({})
        with pytest.raises(EvaluationError):
            cross_relation_similarity(model, 5, [])

    def test_trained_hybridgnn_learns_distinct_spaces(self, taobao_dataset,
                                                      taobao_split,
                                                      tiny_hybrid_config):
        """Relationship-specific embeddings should not be exact copies."""
        from repro.core import HybridGNN

        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        relations = list(taobao_split.train_graph.schema.relationships)
        matrix = cross_relation_similarity(
            model, taobao_split.train_graph.num_nodes, relations
        )
        off_diagonal = matrix[~np.eye(len(relations), dtype=bool)]
        assert np.all(off_diagonal < 1.0 - 1e-6)


class TestNeighborhoodAlignment:
    def test_oracle_has_positive_margin(self, taobao_dataset):
        graph = taobao_dataset.graph
        n = graph.num_nodes
        tables = {}
        for relation in graph.schema.relationships:
            table = np.zeros((n, n))
            src, dst = graph.edges(relation)
            table[src, dst] = 1.0
            table[dst, src] = 1.0
            table += 5.0 * np.eye(n)
            tables[relation] = table
        model = TableModel(tables)
        margin = neighborhood_alignment(model, graph, "page_view", rng=0)
        assert margin > 0.0

    def test_random_model_has_small_margin(self, taobao_dataset):
        rng = np.random.default_rng(0)
        graph = taobao_dataset.graph
        tables = {
            rel: rng.normal(size=(graph.num_nodes, 16))
            for rel in graph.schema.relationships
        }
        margin = neighborhood_alignment(TableModel(tables), graph, "page_view",
                                        rng=1)
        assert abs(margin) < 0.2

    def test_empty_relation_rejected(self, small_schema):
        from repro.graph import GraphBuilder

        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 2)
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        tables = {rel: np.ones((4, 4)) for rel in graph.schema.relationships}
        with pytest.raises(EvaluationError):
            neighborhood_alignment(TableModel(tables), graph, "buy")
