"""Per-rule tests for the performance lint rules R013-R017.

Same three-way pattern as ``test_lint_rules.py``: every rule gets a
positive snippet that must be flagged, the same snippet silenced inline
with ``# repro-lint: disable=RXXX``, and the same finding absorbed by a
baseline entry.  The negative tests pin down the sanctioned idioms the
hot paths rely on (accumulate-then-concat after the loop, per-iteration
concat of fresh parts, ``intended-dtype`` coercion markers, bounded
``np.unique`` group-by headers, convert-once ``tolist()`` in loop
headers, ``_reference_*`` oracle whitelisting).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import BaselineEntry, apply_baseline, lint_source


def findings_for(source: str, rel_path: str):
    source = textwrap.dedent(source)
    found, suppressed = lint_source(source, rel_path)
    return found, suppressed


def codes(found):
    return [f.code for f in found]


# Positive snippets: (rule code, rel_path, source, message fragment).
# The flagged construct sits on the line carrying the ``# LINE`` marker so
# the suppression variant can be generated mechanically.
POSITIVE = [
    (
        "R013",
        "core/collect.py",
        """\
        import numpy as np

        def gather(chunks):
            out = np.empty(0, dtype=np.int64)
            for chunk in chunks:
                out = np.concatenate([out, chunk])  # LINE
            return out
        """,
        "array 'out' grown with 'np.concatenate'",
    ),
    (
        "R013",
        "eval/collect.py",
        """\
        import numpy as np

        def gather(values):
            acc = np.empty(0)
            for value in values:
                acc = np.append(acc, value)  # LINE
            return acc
        """,
        "'np.append'",
    ),
    (
        "R013",
        "core/collect.py",
        """\
        import numpy as np

        def running(values):
            buf = []
            views = []
            for value in values:
                buf.append(value)
                views.append(np.asarray(buf))  # LINE
            return views
        """,
        "list 'buf' grown in this loop is re-materialised",
    ),
    (
        "R014",
        "sampling/casts.py",
        """\
        import numpy as np

        def widen(x):
            return x.astype(np.int32).astype(np.float32)  # LINE
        """,
        "chained astype",
    ),
    (
        "R014",
        "serving/casts.py",
        """\
        import numpy as np

        def scale(a, b):
            return (a * b).astype(np.int64)  # LINE
        """,
        "freshly computed temporary",
    ),
    (
        "R014",
        "train/casts.py",
        """\
        import numpy as np

        def promote(x):
            return x.astype(np.float64)  # LINE
        """,
        "silent float64 promotion",
    ),
    (
        "R015",
        "sampling/iterate.py",
        """\
        import numpy as np

        def total(n):
            arr = np.arange(n)
            acc = 0
            for value in arr:  # LINE
                acc += value
            return acc
        """,
        "Python-level iteration 'for ... in arr'",
    ),
    (
        "R015",
        "serving/iterate.py",
        """\
        import numpy as np

        def ordered(arr):
            out = []
            for value in np.sort(arr):  # LINE
                out.append(value)
            return out
        """,
        "iteration over 'np.sort(...)' result",
    ),
    (
        "R015",
        "nn/iterate.py",
        """\
        import numpy as np

        def rows(batches):
            weights = np.ones(4)
            out = []
            for batch in batches:
                out.append(weights.tolist())  # LINE
            return out
        """,
        "per-iteration 'weights.tolist()'",
    ),
    (
        "R015",
        "train/iterate.py",
        """\
        import numpy as np

        def total(n):
            arr = np.arange(n)
            acc = 0.0
            for i in range(n):
                acc += arr[i]  # LINE
            return acc
        """,
        "scalar element indexing 'arr[i]'",
    ),
    (
        "R016",
        "core/rebuild.py",
        """\
        def scores(graph, relation, sources):
            out = []
            for source in sources:
                matrix = graph.csr(relation)  # LINE
                out.append(matrix[source])
            return out
        """,
        "loop-invariant call 'graph.csr(relation)' recomputed",
    ),
    (
        "R017",
        "eval/buffers.py",
        """\
        import numpy as np

        def accumulate(rows, dim):
            out = []
            for row in rows:
                buf = np.zeros(dim)  # LINE
                buf[row] = 1.0
                out.append(buf.sum())
            return out
        """,
        "loop-invariant shape 'dim'",
    ),
]

IDS = [f"{code}-{i}" for i, (code, _, _, _) in enumerate(POSITIVE)]


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_is_flagged(code, rel_path, source, fragment):
    found, _ = findings_for(source, rel_path)
    matching = [f for f in found if f.code == code]
    assert matching, f"expected {code} in {codes(found)}"
    assert any(fragment in f.message for f in matching)
    assert all(f.hint for f in matching), "every finding carries a fix hint"


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_suppressed_inline(code, rel_path, source, fragment):
    """Appending ``# repro-lint: disable=RXXX`` on the line silences it."""
    suppressed_source = textwrap.dedent(source).replace(
        "# LINE", f"# repro-lint: disable={code}"
    )
    found, suppressed = lint_source(suppressed_source, rel_path)
    assert not [f for f in found if f.code == code]
    assert suppressed >= 1


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_excluded_by_baseline(code, rel_path, source, fragment):
    """A baseline entry keyed by (code, path, message) absorbs the finding."""
    found, _ = findings_for(source, rel_path)
    target = next(f for f in found if f.code == code)
    entry = BaselineEntry(
        code=target.code, path=target.path, message=target.message,
        reason="unit-test debt",
    )
    actionable, baselined, stale = apply_baseline(found, [entry])
    assert target not in actionable
    assert target in baselined
    assert not stale


# ----------------------------------------------------------------------
# Negative boundaries
# ----------------------------------------------------------------------

def test_r013_allows_accumulate_then_concat_after_loop():
    """The sanctioned growth pattern: list in the loop, one concat after."""
    found, _ = findings_for(
        """\
        import numpy as np

        def gather(chunks):
            parts = []
            for chunk in chunks:
                parts.append(chunk * 2)
            return np.concatenate(parts)
        """,
        "core/collect.py",
    )
    assert "R013" not in codes(found)


def test_r013_allows_per_iteration_concat_of_fresh_parts():
    """Concatenating *fresh* arrays each iteration is not growth."""
    found, _ = findings_for(
        """\
        import numpy as np

        def pair_up(lefts, rights):
            out = []
            for left, right in zip(lefts, rights):
                row = np.concatenate([left, right])
                out.append(row)
            return out
        """,
        "core/collect.py",
    )
    assert "R013" not in codes(found)


def test_r013_allows_elementwise_augadd_of_concat():
    """``x += np.concatenate(parts)`` is an elementwise add, not growth."""
    found, _ = findings_for(
        """\
        import numpy as np

        def accumulate(parts_per_round, total):
            for parts in parts_per_round:
                total += np.concatenate(parts)
            return total
        """,
        "core/collect.py",
    )
    assert "R013" not in codes(found)


def test_r014_intended_dtype_marker_is_honored():
    found, _ = findings_for(
        """\
        import numpy as np

        def promote(x):
            return x.astype(np.float64)  # repro-lint: intended-dtype=float64
        """,
        "train/casts.py",
    )
    assert "R014" not in codes(found)


def test_r014_allows_single_cast_of_bound_array():
    """One astype of an already-bound name to a narrower dtype is fine."""
    found, _ = findings_for(
        """\
        import numpy as np

        def narrow(offsets):
            return offsets.astype(np.int64)
        """,
        "sampling/casts.py",
    )
    assert "R014" not in codes(found)


def test_r014_r015_only_apply_to_hot_modules():
    source = """\
    import numpy as np

    def slow(n):
        arr = np.arange(n)
        acc = 0.0
        for value in arr:
            acc += value
        return acc + float(arr.astype(np.float64)[0])
    """
    found, _ = findings_for(source, "eval/metrics_extra.py")
    assert "R014" not in codes(found)
    assert "R015" not in codes(found)
    found, _ = findings_for(source, "sampling/walker.py")
    assert "R015" in codes(found)


def test_reference_oracles_are_whitelisted():
    """``_reference_*`` bodies are deliberately scalar; no perf findings."""
    found, _ = findings_for(
        """\
        import numpy as np

        def _reference_scores(graph, relation, sources):
            out = np.empty(0)
            arr = np.arange(len(sources))
            for i in range(len(sources)):
                matrix = graph.csr(relation)
                buf = np.zeros(8)
                out = np.append(out, arr[i] + buf.sum() + matrix[0, 0])
            return out
        """,
        "sampling/oracle.py",
    )
    assert not found


def test_r015_unique_groupby_and_header_tolist_are_sanctioned():
    found, _ = findings_for(
        """\
        import numpy as np

        def group(codes_in, table):
            weights = np.ones(4)
            out = []
            for code in np.unique(codes_in):
                for w in weights.tolist():
                    out.append((code, w))
            return out
        """,
        "serving/group.py",
    )
    assert "R015" not in codes(found)


def test_r015_name_tracking_is_per_function():
    """An np-bound name in one function must not taint another's local."""
    found, _ = findings_for(
        """\
        import numpy as np

        def make(n):
            chosen = np.arange(n)
            return chosen.sum()

        def consume(pairs):
            out = []
            for chosen in [pairs]:
                for dist, neighbor in chosen:
                    out.append((dist, neighbor))
            return out
        """,
        "serving/group.py",
    )
    assert "R015" not in codes(found)


def test_r016_loop_dependent_call_not_flagged():
    found, _ = findings_for(
        """\
        def scores(graph, relations):
            out = []
            for relation in relations:
                out.append(graph.csr(relation))
            return out
        """,
        "core/rebuild.py",
    )
    assert "R016" not in codes(found)


def test_r017_loop_variant_shape_and_zero_sentinel_not_flagged():
    found, _ = findings_for(
        """\
        import numpy as np

        def pad(chunks):
            out = []
            for chunk in chunks:
                buf = np.zeros(len(chunk))
                empty = np.empty(0)
                out.append((buf, empty))
            return out
        """,
        "eval/buffers.py",
    )
    assert "R017" not in codes(found)
