"""CLI tests for ``python -m repro lint``, including the strict meta-test."""

from __future__ import annotations

import json

from repro.cli import main

DIRTY = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
CLEAN = "def f(rng):\n    return rng.random()\n"


def test_lint_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert main(["lint", str(target), "--baseline", str(tmp_path / "b.json")]) == 0
    out = capsys.readouterr().out
    assert "1 files, 0 finding(s)" in out


def test_lint_dirty_file_exits_one_with_hint(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert main(["lint", str(target), "--baseline", str(tmp_path / "b.json")]) == 1
    out = capsys.readouterr().out
    assert "R001" in out
    assert "hint:" in out


def test_lint_json_format(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    code = main([
        "lint", str(target), "--format", "json",
        "--baseline", str(tmp_path / "b.json"),
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["passed"] is False
    assert payload["findings"][0]["code"] == "R001"
    assert payload["findings"][0]["hint"]


def test_lint_strict_fails_on_stale_baseline(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [
        {"code": "R001", "path": "gone.py", "message": "paid off",
         "reason": "stale"},
    ]}))
    # Non-strict: stale entries are reported but do not fail the run.
    assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # Strict: stale debt must be deleted from the baseline.
    assert main(["lint", str(target), "--baseline", str(baseline),
                 "--strict"]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_lint_baseline_silences_known_debt(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    probe_code = main([
        "lint", str(target), "--format", "json",
        "--baseline", str(tmp_path / "none.json"),
    ])
    assert probe_code == 1
    finding = json.loads(capsys.readouterr().out)["findings"][0]
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [
        {"code": finding["code"], "path": finding["path"],
         "message": finding["message"], "reason": "grandfathered"},
    ]}))
    assert main(["lint", str(target), "--baseline", str(baseline),
                 "--strict"]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_meta_repro_package_is_strict_clean(capsys):
    """Acceptance: `python -m repro lint --strict` exits 0 on this tree."""
    assert main(["lint", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
