"""Per-rule tests for the concurrency lint rules R009-R012.

Same three-way pattern as ``test_lint_rules.py``: every rule gets a
positive snippet that must be flagged, the same snippet silenced inline
with ``# repro-lint: disable=RXXX``, and the same finding absorbed by a
baseline entry.  The negative tests pin down the false-positive
boundaries the serving/training code relies on (mutation under the
declared lock, ``holds=`` contracts, ``cond.wait()`` on its own lock,
``spawn_rngs`` pools, string ``join``...).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import BaselineEntry, apply_baseline, lint_source


def findings_for(source: str, rel_path: str):
    source = textwrap.dedent(source)
    found, suppressed = lint_source(source, rel_path)
    return found, suppressed


def codes(found):
    return [f.code for f in found]


# Positive snippets: (rule code, rel_path, source, message fragment).
# The flagged construct sits on the line carrying the ``# LINE`` marker so
# the suppression variant can be generated mechanically.
POSITIVE = [
    (
        "R009",
        "serving/example.py",
        """\
        class Service:
            def __init__(self):
                self.stats = {}  # repro-lint: guarded-by=_lock

            def bump(self):
                self.stats["n"] = 1  # LINE
        """,
        "guarded attribute 'self.stats' mutated outside 'with self._lock:'",
    ),
    (
        "R009",
        "serving/example.py",
        """\
        class Service:
            def __init__(self):
                self.queue = []  # repro-lint: guarded-by=_cond

            def push(self, item):
                q = self.queue
                q.append(item)  # LINE
        """,
        "'self.queue'",
    ),
    (
        "R009",
        "serving/example.py",
        """\
        class Service:
            def __init__(self):
                self.stats = {}  # repro-lint: guarded-by=_lock

            def bump(self, key):
                self.stats[key].record_latency(0.5)  # LINE
        """,
        "Service.bump",
    ),
    (
        "R009",
        "serving/example.py",
        """\
        class View:
            def __init__(self):
                self._cache = {}  # repro-lint: guarded-by=external:Service._lock

            def invalidate(self):
                self._cache = {}  # LINE
        """,
        "externally-serialised attribute 'self._cache'",
    ),
    (
        "R010",
        "train/example.py",
        """\
        import multiprocessing
        import threading

        def _worker_epoch(rank, out):
            guard = threading.Lock()  # LINE
        """,
        "threading.Lock",
    ),
    (
        "R010",
        "train/example.py",
        """\
        import multiprocessing
        import numpy as np

        def fill_worker(shape):
            out = np.random.rand(*shape)  # LINE
        """,
        "np.random.rand",
    ),
    (
        "R010",
        "train/example.py",
        """\
        import multiprocessing
        from numpy.random import default_rng

        RNG = default_rng(0)

        def _worker(n):
            step = RNG.integers(n)  # LINE
        """,
        "module-level RNG 'RNG'",
    ),
    (
        "R010",
        "train/example.py",
        """\
        import multiprocessing

        def _worker(block):
            return block[:]  # LINE
        """,
        "publish through the shared",
    ),
    (
        "R011",
        "train/example.py",
        """\
        import threading
        from repro.utils.rng import as_rng

        def launch(seed, items):
            rng = as_rng(seed)
            jobs = []
            for item in items:
                def work():
                    return rng.integers(item)  # LINE
                jobs.append(work)
            return jobs
        """,
        "Generator 'rng'",
    ),
    (
        "R011",
        "train/example.py",
        """\
        import threading

        class Trainer:
            def launch(self, items):
                jobs = []
                for item in items:
                    jobs.append(lambda: self._rng.random())  # LINE
                return jobs
        """,
        "parent RNG 'self._rng'",
    ),
    (
        "R012",
        "serving/example.py",
        """\
        import time

        class Pool:
            def drain(self):
                with self._lock:
                    time.sleep(0.1)  # LINE
        """,
        "time.sleep()",
    ),
    (
        "R012",
        "serving/example.py",
        """\
        class Pool:
            def stop(self):
                with self._cond:
                    self._flusher.join()  # LINE
        """,
        "self._flusher.join()",
    ),
    (
        "R012",
        "serving/example.py",
        """\
        class Pool:
            def collect(self, future):
                with self._exec_lock:
                    return future.result()  # LINE
        """,
        "future.result()",
    ),
    (
        "R012",
        "serving/example.py",
        """\
        class Pool:
            def misuse(self):
                with self._lock:
                    self._cond.wait()  # LINE
        """,
        "self._cond.wait()",
    ),
]

IDS = [f"{code}-{i}" for i, (code, _, _, _) in enumerate(POSITIVE)]


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_is_flagged(code, rel_path, source, fragment):
    found, _ = findings_for(source, rel_path)
    matching = [f for f in found if f.code == code]
    assert matching, f"expected {code} in {codes(found)}"
    assert any(fragment in f.message for f in matching)
    assert all(f.hint for f in matching), "every finding carries a fix hint"


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_suppressed_inline(code, rel_path, source, fragment):
    """Appending ``# repro-lint: disable=RXXX`` on the line silences it."""
    suppressed_source = textwrap.dedent(source).replace(
        "# LINE", f"# repro-lint: disable={code}"
    )
    found, suppressed = lint_source(suppressed_source, rel_path)
    assert not [f for f in found if f.code == code]
    assert suppressed >= 1


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_excluded_by_baseline(code, rel_path, source, fragment):
    """A baseline entry keyed by (code, path, message) absorbs the finding."""
    found, _ = findings_for(source, rel_path)
    target = next(f for f in found if f.code == code)
    entry = BaselineEntry(
        code=target.code, path=target.path, message=target.message,
        reason="unit-test debt",
    )
    actionable, baselined, stale = apply_baseline(found, [entry])
    assert target not in actionable
    assert target in baselined
    assert not stale


# ----------------------------------------------------------------------
# R009 negative boundaries
# ----------------------------------------------------------------------

def test_r009_mutation_under_declared_lock_is_clean():
    found, _ = findings_for(
        """\
        class Service:
            def __init__(self):
                self.stats = {}  # repro-lint: guarded-by=_lock

            def bump(self):
                with self._lock:
                    self.stats["n"] = 1
                    self.stats.pop("m", None)
        """,
        "serving/example.py",
    )
    assert "R009" not in codes(found)


def test_r009_holds_marker_declares_caller_contract():
    found, _ = findings_for(
        """\
        class Service:
            def __init__(self):
                self.queue = []  # repro-lint: guarded-by=_cond

            def _admit(self, item):  # repro-lint: holds=_cond
                self.queue.append(item)
        """,
        "serving/example.py",
    )
    assert "R009" not in codes(found)


def test_r009_init_and_local_rebinding_are_clean():
    # __init__ declares the attributes; rebinding a local alias is not a
    # mutation of the guarded container.
    found, _ = findings_for(
        """\
        class Service:
            def __init__(self):
                self.stats = {}  # repro-lint: guarded-by=_lock
                self.stats["boot"] = 1

            def detach(self):
                s = self.stats
                s = None
                return s
        """,
        "serving/example.py",
    )
    assert "R009" not in codes(found)


def test_r009_nested_def_ignores_enclosing_lock():
    # The closure runs later, under whatever locks its caller holds; the
    # lexically-enclosing `with` must not vouch for it.
    found, _ = findings_for(
        """\
        class Service:
            def __init__(self):
                self.stats = {}  # repro-lint: guarded-by=_lock

            def deferred(self):
                with self._lock:
                    def later():
                        self.stats["n"] = 1
                return later
        """,
        "serving/example.py",
    )
    assert any(f.code == "R009" and "later" in f.message for f in found)


# ----------------------------------------------------------------------
# R010 negative boundaries
# ----------------------------------------------------------------------

def test_r010_ignores_files_without_multiprocessing():
    found, _ = findings_for(
        """\
        import numpy as np

        def _worker(shape):
            return np.random.rand(*shape)
        """,
        "train/example.py",
    )
    assert "R010" not in codes(found)


def test_r010_clean_worker_with_spawned_rng_parameter():
    found, _ = findings_for(
        """\
        import multiprocessing

        def _worker_epoch(rank, rng, tables):
            noise = rng.standard_normal(4)
            tables[rank][:] = noise
        """,
        "train/example.py",
    )
    assert "R010" not in codes(found)


def test_r010_detects_process_target_by_name():
    found, _ = findings_for(
        """\
        import multiprocessing
        import numpy as np

        def run(out):
            out[0] = np.random.rand()

        def launch(out):
            return multiprocessing.Process(target=run, args=(out,))
        """,
        "train/example.py",
    )
    assert any(f.code == "R010" and "'run'" in f.message for f in found)


# ----------------------------------------------------------------------
# R011 negative boundaries
# ----------------------------------------------------------------------

def test_r011_spawned_pool_indexed_per_worker_is_clean():
    found, _ = findings_for(
        """\
        import threading
        from repro.utils.rng import spawn_rngs

        def launch(rng, n):
            rngs = spawn_rngs(rng, n)
            jobs = []
            for w in range(n):
                def work(w=w):
                    return rngs[w].integers(10)
                jobs.append(work)
            return jobs
        """,
        "train/example.py",
    )
    assert "R011" not in codes(found)


def test_r011_ignores_files_without_thread_or_fork_imports():
    found, _ = findings_for(
        """\
        from repro.utils.rng import as_rng

        def launch(seed, items):
            rng = as_rng(seed)
            jobs = []
            for item in items:
                def work():
                    return rng.integers(item)
                jobs.append(work)
            return jobs
        """,
        "train/example.py",
    )
    assert "R011" not in codes(found)


# ----------------------------------------------------------------------
# R012 negative boundaries
# ----------------------------------------------------------------------

def test_r012_wait_on_the_held_condition_is_clean():
    # cond.wait() releases the lock it waits on: the blessed idiom.
    found, _ = findings_for(
        """\
        class Pool:
            def drain(self):
                with self._cond:
                    while not self._ripe:
                        self._cond.wait(0.1)
        """,
        "serving/example.py",
    )
    assert "R012" not in codes(found)


def test_r012_string_and_path_joins_are_clean():
    found, _ = findings_for(
        """\
        import os

        class Pool:
            def label(self, parts, base):
                with self._lock:
                    return ", ".join(parts) + os.path.join(base, "x")
        """,
        "serving/example.py",
    )
    assert "R012" not in codes(found)


def test_r012_blocking_outside_lock_and_nested_def_are_clean():
    found, _ = findings_for(
        """\
        import time

        class Pool:
            def nap(self):
                time.sleep(0.1)

            def schedule(self):
                with self._lock:
                    def later():
                        time.sleep(0.1)
                return later
        """,
        "serving/example.py",
    )
    assert "R012" not in codes(found)


def test_r012_finding_lists_every_held_lock():
    found, _ = findings_for(
        """\
        import time

        class Pool:
            def drain(self):
                with self._cond:
                    with self._exec_lock:
                        time.sleep(0.1)
        """,
        "serving/example.py",
    )
    target = next(f for f in found if f.code == "R012")
    assert "self._cond" in target.message
    assert "self._exec_lock" in target.message
