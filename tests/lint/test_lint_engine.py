"""Engine-level tests: walking, suppression accounting, baselines, formats."""

from __future__ import annotations

import json

from repro.lint import (
    BaselineEntry,
    Finding,
    default_baseline_path,
    format_json,
    format_text,
    lint_source,
    load_baseline,
    run_lint,
)
from repro.lint.engine import PARSE_ERROR_CODE

DIRTY = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
CLEAN = "def f(rng):\n    return rng.random()\n"


def write_tree(tmp_path):
    (tmp_path / "sampling").mkdir()
    (tmp_path / "sampling" / "dirty.py").write_text(DIRTY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def test_syntax_error_becomes_e001_finding():
    found, suppressed = lint_source("def broken(:\n    pass\n", "x.py")
    assert suppressed == 0
    assert [f.code for f in found] == [PARSE_ERROR_CODE]
    assert "could not parse" in found[0].message


def test_finding_key_ignores_line_numbers():
    a = Finding(code="R001", path="p.py", line=3, col=0, message="m")
    b = Finding(code="R001", path="p.py", line=99, col=4, message="m")
    assert a.key == b.key


def test_run_lint_walks_directories_and_reports_relative_paths(tmp_path):
    root = write_tree(tmp_path)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.files_checked == 2
    assert not report.passed
    assert [f.path for f in report.findings] == ["sampling/dirty.py"]
    assert report.findings[0].code == "R001"


def test_run_lint_skips_pycache(tmp_path):
    root = write_tree(tmp_path)
    cache = root / "__pycache__"
    cache.mkdir()
    (cache / "dirty.py").write_text(DIRTY)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.files_checked == 2


def test_baseline_absorbs_and_detects_stale(tmp_path):
    root = write_tree(tmp_path)
    probe = run_lint(root=root, baseline_path=tmp_path / "none.json")
    entry = probe.findings[0]
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [
        {"code": entry.code, "path": entry.path, "message": entry.message,
         "reason": "grandfathered"},
        {"code": "R005", "path": "gone.py", "message": "fixed long ago",
         "reason": "stale"},
    ]}))
    report = run_lint(root=root, baseline_path=baseline)
    assert report.passed  # the real finding is baselined ...
    assert len(report.baselined) == 1
    assert not report.strict_passed  # ... but the stale entry fails --strict
    assert report.stale_baseline[0]["path"] == "gone.py"


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "does-not-exist.json") == []


def test_committed_baseline_loads_and_is_small():
    """Acceptance: the committed baseline stays within budget (<= 10)."""
    path = default_baseline_path()
    assert path.exists()
    entries = load_baseline(path)
    assert len(entries) <= 10
    assert all(isinstance(e, BaselineEntry) for e in entries)


def test_format_text_and_json_round_trip(tmp_path):
    root = write_tree(tmp_path)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    text = format_text(report)
    assert "sampling/dirty.py:4:" in text
    assert "hint:" in text
    assert "repro lint: 2 files, 1 finding(s)" in text
    payload = json.loads(format_json(report))
    assert payload["files_checked"] == 2
    assert payload["passed"] is False
    assert payload["findings"][0]["code"] == "R001"
    assert payload["strict_passed"] is False


def test_suppression_is_counted_not_silent(tmp_path):
    root = tmp_path
    (root / "mod.py").write_text(
        "import numpy as np\n\ndef f():\n"
        "    return np.random.rand()  # repro-lint: disable=R001\n"
    )
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.passed
    assert report.suppressed == 1


def test_json_schema_version_and_stable_finding_order(tmp_path):
    """Regression: the JSON artifact carries a schema version and findings
    sorted by (path, line, code), independent of file walk order."""
    from repro.lint.engine import LINT_SCHEMA_VERSION

    # Three dirty files named so that walk order (alphabetical) differs
    # from no ordering at all; plus two findings in one file.
    (tmp_path / "zz.py").write_text(DIRTY)
    (tmp_path / "aa.py").write_text(
        "import numpy as np\n\ndef g():\n    x = np.random.rand()\n"
        "    return x + np.random.rand()\n"
    )
    report = run_lint(root=tmp_path, baseline_path=tmp_path / "none.json")
    payload = json.loads(format_json(report))

    assert payload["schema_version"] == LINT_SCHEMA_VERSION
    keys = [
        (f["path"], f["line"], f["code"]) for f in payload["findings"]
    ]
    assert keys == sorted(keys)
    assert len(keys) == 3
    assert [k[0] for k in keys] == ["aa.py", "aa.py", "zz.py"]


def test_json_baselined_findings_share_stable_order(tmp_path):
    (tmp_path / "zz.py").write_text(DIRTY)
    (tmp_path / "aa.py").write_text(DIRTY)
    report = run_lint(root=tmp_path, baseline_path=tmp_path / "none.json")
    entries = [
        BaselineEntry(code=f.code, path=f.path, message=f.message,
                      reason="test debt")
        for f in report.findings
    ]
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text(json.dumps({
        "note": "test", "entries": [
            {"code": e.code, "path": e.path, "message": e.message,
             "reason": e.reason}
            for e in entries
        ],
    }))
    report = run_lint(root=tmp_path, baseline_path=baseline_file)
    payload = json.loads(format_json(report))
    assert payload["findings"] == []
    keys = [
        (f["path"], f["line"], f["code"]) for f in payload["baselined"]
    ]
    assert keys == sorted(keys) and len(keys) == 2
