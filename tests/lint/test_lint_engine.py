"""Engine-level tests: walking, suppression accounting, baselines, formats."""

from __future__ import annotations

import json

from repro.lint import (
    BaselineEntry,
    Finding,
    default_baseline_path,
    format_json,
    format_text,
    lint_source,
    load_baseline,
    run_lint,
)
from repro.lint.engine import PARSE_ERROR_CODE

DIRTY = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
CLEAN = "def f(rng):\n    return rng.random()\n"


def write_tree(tmp_path):
    (tmp_path / "sampling").mkdir()
    (tmp_path / "sampling" / "dirty.py").write_text(DIRTY)
    (tmp_path / "clean.py").write_text(CLEAN)
    return tmp_path


def test_syntax_error_becomes_e001_finding():
    found, suppressed = lint_source("def broken(:\n    pass\n", "x.py")
    assert suppressed == 0
    assert [f.code for f in found] == [PARSE_ERROR_CODE]
    assert "could not parse" in found[0].message


def test_finding_key_ignores_line_numbers():
    a = Finding(code="R001", path="p.py", line=3, col=0, message="m")
    b = Finding(code="R001", path="p.py", line=99, col=4, message="m")
    assert a.key == b.key


def test_run_lint_walks_directories_and_reports_relative_paths(tmp_path):
    root = write_tree(tmp_path)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.files_checked == 2
    assert not report.passed
    assert [f.path for f in report.findings] == ["sampling/dirty.py"]
    assert report.findings[0].code == "R001"


def test_run_lint_skips_pycache(tmp_path):
    root = write_tree(tmp_path)
    cache = root / "__pycache__"
    cache.mkdir()
    (cache / "dirty.py").write_text(DIRTY)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.files_checked == 2


def test_baseline_absorbs_and_detects_stale(tmp_path):
    root = write_tree(tmp_path)
    probe = run_lint(root=root, baseline_path=tmp_path / "none.json")
    entry = probe.findings[0]
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"entries": [
        {"code": entry.code, "path": entry.path, "message": entry.message,
         "reason": "grandfathered"},
        {"code": "R005", "path": "gone.py", "message": "fixed long ago",
         "reason": "stale"},
    ]}))
    report = run_lint(root=root, baseline_path=baseline)
    assert report.passed  # the real finding is baselined ...
    assert len(report.baselined) == 1
    assert not report.strict_passed  # ... but the stale entry fails --strict
    assert report.stale_baseline[0]["path"] == "gone.py"


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "does-not-exist.json") == []


def test_committed_baseline_loads_and_is_small():
    """Acceptance: the committed baseline stays within budget (<= 10)."""
    path = default_baseline_path()
    assert path.exists()
    entries = load_baseline(path)
    assert len(entries) <= 10
    assert all(isinstance(e, BaselineEntry) for e in entries)


def test_format_text_and_json_round_trip(tmp_path):
    root = write_tree(tmp_path)
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    text = format_text(report)
    assert "sampling/dirty.py:4:" in text
    assert "hint:" in text
    assert "repro lint: 2 files, 1 finding(s)" in text
    payload = json.loads(format_json(report))
    assert payload["files_checked"] == 2
    assert payload["passed"] is False
    assert payload["findings"][0]["code"] == "R001"
    assert payload["strict_passed"] is False


def test_suppression_is_counted_not_silent(tmp_path):
    root = tmp_path
    (root / "mod.py").write_text(
        "import numpy as np\n\ndef f():\n"
        "    return np.random.rand()  # repro-lint: disable=R001\n"
    )
    report = run_lint(root=root, baseline_path=tmp_path / "none.json")
    assert report.passed
    assert report.suppressed == 1
