"""Per-rule tests for the ``repro lint`` AST rules R001-R008.

Every rule is exercised three ways: a positive snippet that must be
flagged, the same snippet silenced with ``# repro-lint: disable=RXXX``,
and the same finding excluded through a baseline entry.  Negative
snippets pin down the false-positive boundaries.

The concurrency rules R009-R012 follow the same three-way pattern in
``test_concurrency_rules.py``, and the perf rules R013-R017 in
``test_perf_rules.py``; the metadata test at the bottom of this file
covers the full 17-rule registry.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (
    BaselineEntry,
    apply_baseline,
    lint_source,
)
from repro.lint.rules import RULES, all_rules


def findings_for(source: str, rel_path: str = "core/example.py"):
    source = textwrap.dedent(source)
    found, suppressed = lint_source(source, rel_path)
    return found, suppressed


def codes(found):
    return [f.code for f in found]


# Positive snippets: (rule code, rel_path, source, message fragment).
# The flagged construct sits on the line carrying the ``# LINE`` marker so
# the suppression variant can be generated mechanically.
POSITIVE = [
    (
        "R001",
        "sampling/walker.py",
        """\
        import numpy as np

        def pick(n):
            return np.random.randint(n)  # LINE
        """,
        "np.random.randint",
    ),
    (
        "R001",
        "eval/sampler.py",
        """\
        from numpy.random import default_rng

        def make():
            return default_rng()  # LINE
        """,
        "default_rng",
    ),
    (
        "R001",
        "datasets/shuffle.py",
        """\
        import random

        def roll():
            return random.random()  # LINE
        """,
        "random.random",
    ),
    (
        "R002",
        "core/config.py",
        """\
        def extend(x, items=[]):  # LINE
            items.append(x)
            return items
        """,
        "items=[]",
    ),
    (
        "R002",
        "core/config.py",
        """\
        def cached(*, table={}):  # LINE
            return table
        """,
        "table={}",
    ),
    (
        "R002",
        "core/config.py",
        """\
        from collections import defaultdict

        def group(rows, acc=defaultdict(list)):  # LINE
            return acc
        """,
        "defaultdict",
    ),
    (
        "R003",
        "core/trainer.py",
        """\
        def clobber(param):
            param.data[:] = 0.0  # LINE
        """,
        "slice assignment",
    ),
    (
        "R003",
        "core/trainer.py",
        """\
        def scale(param):
            param.grad *= 0.5  # LINE
        """,
        "in-place update",
    ),
    (
        "R003",
        "core/trainer.py",
        """\
        import numpy as np

        def add_into(param, delta):
            np.add(param.data, delta, out=param.data)  # LINE
        """,
        "out=",
    ),
    (
        "R004",
        "nn/builders.py",
        """\
        def build(items):
            hooks = []
            for item in items:
                def hook(grad):  # LINE
                    return grad * item
                hooks.append(hook)
            return hooks
        """,
        "loop variable 'item'",
    ),
    (
        "R004",
        "nn/builders.py",
        """\
        def build(items):
            fns = []
            for i in items:
                fns.append(lambda g: g + i)  # LINE
            return fns
        """,
        "loop variable 'i'",
    ),
    (
        "R005",
        "eval/metrics_extra.py",
        """\
        def degenerate(p):
            return p == 0.5  # LINE
        """,
        "0.5",
    ),
    (
        "R006",
        "nn/tensor.py",
        """\
        class Tensor:
            def frobnicate(self):  # LINE
                return self
        """,
        "Tensor.frobnicate",
    ),
    (
        "R007",
        "nn/timers.py",
        """\
        import time

        def stamp():
            return time.time()  # LINE
        """,
        "time.time",
    ),
    (
        "R007",
        "sampling/seeded.py",
        """\
        import os

        def profile():
            return os.environ["REPRO_PROFILE"]  # LINE
        """,
        "os.environ",
    ),
    (
        "R008",
        "nn/tensor.py",
        """\
        import numpy as np

        class Tensor:
            def zeros_like(self):
                return np.zeros(self._data.shape, dtype=np.float64)  # LINE
        """,
        "np.float64",
    ),
    (
        "R008",
        "nn/tensor.py",
        """\
        import numpy as np

        def cast_op(x):
            return Tensor._make(x.data.astype(np.float32), (x,), lambda g: None)  # LINE
        """,
        "np.float32",
    ),
]

IDS = [f"{code}-{i}" for i, (code, _, _, _) in enumerate(POSITIVE)]


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_is_flagged(code, rel_path, source, fragment):
    found, _ = findings_for(source, rel_path)
    matching = [f for f in found if f.code == code]
    assert matching, f"expected {code} in {codes(found)}"
    assert any(fragment in f.message for f in matching)
    assert all(f.hint for f in matching), "every finding carries a fix hint"


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_suppressed_inline(code, rel_path, source, fragment):
    """Appending ``# repro-lint: disable=RXXX`` on the line silences it."""
    suppressed_source = textwrap.dedent(source).replace(
        "# LINE", f"# repro-lint: disable={code}"
    )
    found, suppressed = lint_source(suppressed_source, rel_path)
    assert not [f for f in found if f.code == code]
    assert suppressed >= 1


@pytest.mark.parametrize("code,rel_path,source,fragment", POSITIVE, ids=IDS)
def test_positive_snippet_excluded_by_baseline(code, rel_path, source, fragment):
    """A baseline entry keyed by (code, path, message) absorbs the finding."""
    found, _ = findings_for(source, rel_path)
    target = next(f for f in found if f.code == code)
    entry = BaselineEntry(
        code=target.code, path=target.path, message=target.message,
        reason="unit-test debt",
    )
    actionable, baselined, stale = apply_baseline(found, [entry])
    assert target not in actionable
    assert target in baselined
    assert not stale


def test_suppress_all_keyword():
    found, suppressed = findings_for(
        """\
        import numpy as np

        def pick(n):
            return np.random.rand(n)  # repro-lint: disable=all
        """,
        "sampling/walker.py",
    )
    assert not found
    assert suppressed == 1


# ----------------------------------------------------------------------
# Negative boundaries (one per rule)
# ----------------------------------------------------------------------

def test_r001_allows_threaded_generators_and_rng_module():
    found, _ = findings_for(
        """\
        from repro.utils.rng import as_rng

        def pick(n, rng):
            rng = as_rng(rng)
            return rng.integers(n)
        """,
        "sampling/walker.py",
    )
    assert "R001" not in codes(found)
    # utils/rng.py itself is the sanctioned home for default_rng().
    found, _ = findings_for(
        """\
        import numpy as np

        def as_rng(seed):
            return np.random.default_rng(seed)
        """,
        "utils/rng.py",
    )
    assert "R001" not in codes(found)


def test_r002_allows_none_and_immutable_defaults():
    found, _ = findings_for(
        """\
        def f(x=None, y=(), z="name", k=0):
            return x, y, z, k
        """,
    )
    assert "R002" not in codes(found)


def test_r003_whitelists_optimizer_and_init_modules():
    source = """\
    def sgd_step(param, lr):
        param.data -= lr * param.grad
    """
    found, _ = findings_for(source, "nn/optim.py")
    assert "R003" not in codes(found)
    found, _ = findings_for(source, "core/trainer.py")
    assert "R003" in codes(found)


def test_r004_allows_default_argument_binding():
    found, _ = findings_for(
        """\
        def build(items):
            hooks = []
            for item in items:
                def hook(grad, item=item):
                    return grad * item
                hooks.append(hook)
            return hooks
        """,
        "nn/builders.py",
    )
    assert "R004" not in codes(found)


def test_r005_allows_int_equality_and_tolerant_compare():
    found, _ = findings_for(
        """\
        import numpy as np

        def check(x):
            return x == 0 or x <= 0.5 or np.isclose(x, 0.5)
        """,
    )
    assert "R005" not in codes(found)


def test_r006_accepts_registered_ops_and_skips_properties():
    found, _ = findings_for(
        """\
        class Tensor:
            @property
            def shape(self):
                return self._data.shape

            @staticmethod
            def _make(data, parents, backward, op=""):
                return data

            def exp(self):
                return self

            def detach(self):
                return self
        """,
        "nn/tensor.py",
    )
    assert "R006" not in codes(found)


def test_r006_flags_unregistered_functional():
    found, _ = findings_for(
        """\
        def mystery_op(x):
            return Tensor._make(x.data, (x,), lambda g: None)
        """,
        "nn/tensor.py",
    )
    assert any(
        f.code == "R006" and "mystery_op" in f.message for f in found
    )


def test_r007_only_applies_to_deterministic_core_paths():
    source = """\
    import time

    def stamp():
        return time.perf_counter()
    """
    found, _ = findings_for(source, "perf/timers.py")
    assert "R007" not in codes(found)
    found, _ = findings_for(source, "core/trainer.py")
    assert "R007" in codes(found)


def test_r008_derived_dtypes_and_non_op_code_pass():
    # Deriving the dtype from the operand is the blessed pattern.
    found, _ = findings_for(
        """\
        import numpy as np

        class Tensor:
            def zeros_like(self):
                return np.zeros(self._data.shape, dtype=self._data.dtype)
        """,
        "nn/tensor.py",
    )
    assert "R008" not in codes(found)
    # Hard-coded dtypes outside the Tensor op surface (plain helpers that
    # never call Tensor._make) are out of scope for R008.
    found, _ = findings_for(
        """\
        import numpy as np

        def histogram(values):
            return np.zeros(16, dtype=np.float64)
        """,
        "eval/metrics_extra.py",
    )
    assert "R008" not in codes(found)


def test_r008_flags_string_dtype_constants():
    found, _ = findings_for(
        """\
        import numpy as np

        class Tensor:
            def as_single(self):
                return self._data.astype("float32")
        """,
        "nn/tensor.py",
    )
    assert any(
        f.code == "R008" and "'float32'" in f.message for f in found
    )


def test_all_rules_have_stable_metadata():
    rules = all_rules()
    assert len(rules) == len(RULES) == 17
    seen = set()
    for rule in rules:
        assert rule.code.startswith("R") and len(rule.code) == 4
        assert rule.name and rule.hint
        seen.add(rule.code)
    assert seen == {f"R{i:03d}" for i in range(1, 18)}
