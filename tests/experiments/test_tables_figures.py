"""Table/figure reproduction functions on a micro profile (fast smoke)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridGNNConfig, TrainerConfig
from repro.experiments import ExperimentProfile, tables
from repro.experiments import figures
from repro.experiments.models import ABLATION_VARIANTS


@pytest.fixture(scope="module")
def micro():
    """Smallest possible profile: checks plumbing, not metric quality."""
    return ExperimentProfile(
        name="micro", scale=0.15, seeds=1,
        trainer=TrainerConfig(epochs=1, batch_size=1024, num_walks=1,
                              walk_length=5, window=2, patience=1,
                              max_batches_per_epoch=2),
        hybrid=HybridGNNConfig(base_dim=8, edge_dim=4,
                               metapath_fanouts=(2, 2, 2, 2, 2, 2),
                               exploration_fanout=2, exploration_depth=1,
                               eval_samples=1),
        shallow_epochs=1, shallow_walks=1, fullbatch_epochs=2, sage_epochs=1,
        ranking_max_sources=4,
    )


class TestLinkPredictionTables:
    def test_structure_and_rendering(self, micro):
        results = tables.link_prediction_table(
            ("amazon",), ("DeepWalk", "HybridGNN"), profile=micro
        )
        assert set(results) == {"amazon"}
        assert set(results["amazon"]) == {"DeepWalk", "HybridGNN"}
        for row in results["amazon"].values():
            assert len(row) == 5
        text = tables.render_link_prediction(results, "Table III")
        assert "HybridGNN" in text


class TestTable5:
    def test_depth_sweep(self, micro):
        results = tables.table5(datasets=("taobao",), depths=(1, 2), profile=micro)
        assert set(results["taobao"]) == {1, 2}
        text = tables.render_table5(results)
        assert "L=1" in text and "L=2" in text


class TestTable6:
    def test_growing_subgraphs(self, micro):
        results = tables.table6(
            dataset_name="taobao", models=("GCN", "HybridGNN"),
            profile=micro, seed=0,
        )
        labels = list(results)
        assert labels[0] == "g_{r0}"
        assert len(labels) == 4  # taobao has four relationships
        gcn_scores = {m["GCN"] for m in results.values()}
        assert len(gcn_scores) == 1  # constant row
        text = tables.render_table6(results)
        assert "g_{r0,r1,r2,r3}" in text


class TestTable7:
    def test_all_variants_present(self, micro):
        results = tables.table7(datasets=("amazon",), profile=micro)
        assert set(results) == set(ABLATION_VARIANTS)
        text = tables.render_table7(results)
        assert "w/o randomized exploration" in text


class TestTable8:
    def test_degree_comparison(self, micro):
        results = tables.table8(dataset_name="imdb", profile=micro, seed=0)
        assert len(results["GATNE"]) == 4
        assert len(results["improvement_pct"]) == 4
        text = tables.render_table8(results)
        assert "Improvement %" in text


class TestFigure4:
    def test_sweeps(self, micro):
        results = figures.figure4(
            datasets=("amazon",), base_dims=(4, 8), edge_dims=(2,),
            negatives=(1,), profile=micro, seed=0,
        )
        assert set(results["amazon"]) == {"d_m", "d_e", "n"}
        assert set(results["amazon"]["d_m"]) == {4, 8}
        text = figures.render_figure4(results)
        assert "impact of d_m" in text


class TestFigure5:
    def test_attention_readout(self, micro):
        results = figures.figure5(datasets=("taobao",), profile=micro, seed=0)
        per_relation = results["taobao"]
        assert set(per_relation) == {
            "page_view", "add_to_cart", "purchase", "favorite",
        }
        for scores in per_relation.values():
            assert "random" in scores
            # Per start-type groups each sum to 1; the merged readout keeps
            # every score a valid proportion.
            assert all(0 <= s <= 1 for s in scores.values())
        text = figures.render_figure5(results)
        assert "random" in text


class TestFigure6:
    def test_degree_series(self, micro):
        results = figures.figure6(dataset_name="taobao", profile=micro, seed=0)
        assert "buckets" in results
        relations = [k for k in results if k != "buckets"]
        assert relations
        text = figures.render_figure6(results)
        assert "Fig. 6" in text


class TestSignificanceReport:
    def test_mechanics(self, micro):
        from dataclasses import replace

        profile = replace(micro, seeds=2)
        result = tables.significance_report(
            "amazon", baseline="DeepWalk", profile=profile
        )
        assert 0.0 <= result["p_value"] <= 1.0
