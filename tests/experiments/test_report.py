"""Report generation: paper-vs-measured rendering."""

from __future__ import annotations

import pytest

from repro.experiments import paper_reference as ref
from repro.experiments.report import (
    _markdown_table,
    link_prediction_section,
    table5_section,
    table6_section,
    table7_section,
    table8_section,
)


class TestPaperReference:
    def test_all_datasets_have_all_models(self):
        from repro.experiments.models import MODEL_NAMES

        for dataset, per_model in ref.LINK_PREDICTION.items():
            assert set(per_model) == set(MODEL_NAMES), dataset
            for row in per_model.values():
                assert len(row) == 5

    def test_hybridgnn_is_best_roc_in_paper(self):
        """Sanity on the transcription: HybridGNN leads every dataset."""
        for dataset, per_model in ref.LINK_PREDICTION.items():
            best = max(per_model, key=lambda m: per_model[m][0])
            assert best == "HybridGNN", dataset

    def test_ablation_full_model_is_best(self):
        for dataset in ("amazon", "youtube", "imdb", "taobao"):
            full = ref.ABLATION_F1["HybridGNN"][dataset]
            for variant, scores in ref.ABLATION_F1.items():
                assert scores[dataset] <= full, (variant, dataset)

    def test_uplift_is_monotone_for_hybridgnn(self):
        values = [m["HybridGNN"] for m in ref.INTER_RELATIONSHIP_UPLIFT.values()]
        assert values == sorted(values)


class TestMarkdownRendering:
    def test_markdown_table_shape(self):
        text = _markdown_table(["a", "b"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "2.50" in lines[2]

    def test_link_prediction_section(self):
        measured = {"amazon": {"HybridGNN": [90.0, 89.0, 80.0, 0.01, 0.04]}}
        text = link_prediction_section(measured, "Table III")
        assert "### Table III" in text
        assert "97.79" in text  # paper's amazon HybridGNN ROC
        assert "90.00" in text  # measured

    def test_table5_section(self):
        measured = {"amazon": {1: (90.0, 80.0), 2: (91.0, 81.0)}}
        text = table5_section(measured)
        assert "97.72" in text  # paper L=1 ROC on amazon

    def test_table6_section(self):
        measured = {
            "g_{r0}": {"GCN": 60.0, "HybridGNN": 62.0},
            "g_{r0,r1}": {"GCN": 60.0, "HybridGNN": 64.0},
        }
        text = table6_section(measured)
        assert "82.97" in text  # paper g_{r0} HybridGNN

    def test_table7_section(self):
        measured = {"HybridGNN": {"amazon": 70.0},
                    "w/o randomized exploration": {"amazon": 68.0}}
        text = table7_section(measured)
        assert "93.51" in text  # paper full-model amazon F1

    def test_table8_section(self):
        measured = {
            "buckets": ["1<=d<5", "5<=d<9", "9<=d<13", "13<=d<17"],
            "GATNE": [0.1, 0.2, 0.3, 0.4],
            "HybridGNN": [0.15, 0.25, 0.35, 0.45],
            "improvement_pct": [50, 25, 17, 12],
        }
        text = table8_section(measured)
        assert "0.1044" in text  # paper GATNE first bucket
        assert "0.1500" in text  # measured first bucket
