"""Grid search over HybridGNN hyper-parameters."""

from __future__ import annotations

import pytest

from repro.core import HybridGNNConfig, TrainerConfig
from repro.errors import TrainingError
from repro.experiments import ExperimentProfile
from repro.experiments.search import GridSearch


@pytest.fixture(scope="module")
def micro_profile():
    return ExperimentProfile(
        name="micro", scale=0.15, seeds=1,
        trainer=TrainerConfig(epochs=1, batch_size=1024, num_walks=1,
                              walk_length=5, window=2, patience=1,
                              max_batches_per_epoch=2),
        hybrid=HybridGNNConfig(base_dim=8, edge_dim=4,
                               metapath_fanouts=(2, 2, 2, 2, 2, 2),
                               exploration_fanout=2, exploration_depth=1,
                               eval_samples=1),
        shallow_epochs=1, shallow_walks=1, fullbatch_epochs=2, sage_epochs=1,
        ranking_max_sources=4,
    )


class TestGridConstruction:
    def test_points_cartesian_product(self, micro_profile):
        search = GridSearch(
            {"base_dim": [8, 16], "num_negatives": [1, 3]},
            profile=micro_profile, rng=0,
        )
        points = search.points()
        assert len(points) == 4
        assert {"base_dim": 8, "num_negatives": 3} in points

    def test_deterministic_order(self, micro_profile):
        grid = {"base_dim": [8, 16], "exploration_depth": [1, 2]}
        a = GridSearch(grid, profile=micro_profile, rng=0).points()
        b = GridSearch(grid, profile=micro_profile, rng=1).points()
        assert a == b

    def test_empty_grid_rejected(self, micro_profile):
        with pytest.raises(TrainingError):
            GridSearch({}, profile=micro_profile)
        with pytest.raises(TrainingError):
            GridSearch({"base_dim": []}, profile=micro_profile)


class TestRun:
    def test_runs_every_point_and_sorts(self, micro_profile):
        from repro.experiments.runner import prepare_split

        dataset, split = prepare_split("amazon", micro_profile, seed=0)
        search = GridSearch(
            {"num_negatives": [1, 2]}, profile=micro_profile, rng=0
        )
        outcome = search.run(dataset, split)
        assert len(outcome.results) == 2
        scores = [r.val_score for r in outcome.results]
        assert scores == sorted(scores, reverse=True)
        assert outcome.best.overrides in ({"num_negatives": 1},
                                          {"num_negatives": 2})

    def test_rows_render(self, micro_profile):
        from repro.experiments.runner import prepare_split

        dataset, split = prepare_split("amazon", micro_profile, seed=0)
        search = GridSearch({"base_dim": [8]}, profile=micro_profile, rng=0)
        outcome = search.run(dataset, split)
        rows = outcome.as_rows()
        assert len(rows) == 1
        assert "base_dim=8" in rows[0][0]
