"""Experiment harness: profiles, model factory, runner and table renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridGNNConfig, TrainerConfig
from repro.experiments import (
    ABLATION_VARIANTS,
    MODEL_NAMES,
    ExperimentProfile,
    get_profile,
    make_model,
    mean_row,
    prepare_split,
    run_single,
)
from repro.experiments.profiles import PAPER, SMOKE
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tiny", scale=0.2, seeds=1,
        trainer=TrainerConfig(epochs=1, batch_size=512, num_walks=1,
                              walk_length=5, window=2, patience=1,
                              max_batches_per_epoch=3),
        hybrid=HybridGNNConfig(base_dim=8, edge_dim=4,
                               metapath_fanouts=(2, 2, 2, 2, 2, 2),
                               exploration_fanout=2, exploration_depth=1),
        shallow_epochs=1, shallow_walks=1, fullbatch_epochs=3, sage_epochs=1,
        ranking_max_sources=5,
    )


class TestProfiles:
    def test_default_profile_is_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "smoke"

    def test_env_var_selects_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "paper")
        assert get_profile().name == "paper"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("debug")

    def test_paper_profile_is_larger(self):
        assert PAPER.scale > SMOKE.scale
        assert PAPER.trainer.epochs > SMOKE.trainer.epochs


class TestModelFactory:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_models_constructible(self, name, tiny_profile):
        model = make_model(name, tiny_profile, seed=0)
        assert hasattr(model, "fit")
        assert hasattr(model, "node_embeddings")

    def test_unknown_model_rejected(self, tiny_profile):
        with pytest.raises(ValueError):
            make_model("PinSage", tiny_profile, seed=0)

    def test_ablation_overrides_apply(self, tiny_profile):
        model = make_model(
            "HybridGNN", tiny_profile, seed=0,
            hybrid_overrides={"use_randomized_exploration": False},
        )
        assert not model.config.use_randomized_exploration

    def test_all_ablation_variants_constructible(self, tiny_profile):
        for overrides in ABLATION_VARIANTS.values():
            make_model("HybridGNN", tiny_profile, seed=0,
                       hybrid_overrides=overrides)


class TestRunner:
    def test_prepare_split_deterministic(self, tiny_profile):
        d1, s1 = prepare_split("amazon", tiny_profile, seed=3)
        d2, s2 = prepare_split("amazon", tiny_profile, seed=3)
        assert d1.graph.num_edges == d2.graph.num_edges
        for relation in d1.graph.schema.relationships:
            np.testing.assert_array_equal(
                s1.test[relation].src, s2.test[relation].src
            )

    def test_run_single_produces_all_metrics(self, tiny_profile):
        result = run_single("DeepWalk", "amazon", seed=0, profile=tiny_profile)
        row = result.row()
        assert len(row) == 5
        assert all(np.isfinite(v) for v in row)
        assert 0 <= row[0] <= 100  # ROC-AUC in percent
        assert 0 <= row[3] <= 1    # PR@10 as a fraction

    def test_run_single_hybrid(self, tiny_profile):
        result = run_single("HybridGNN", "taobao", seed=0, profile=tiny_profile)
        assert result.model == "HybridGNN"
        assert len(result.link.per_relation) >= 1

    def test_mean_row(self, tiny_profile):
        r = run_single("DeepWalk", "amazon", seed=0, profile=tiny_profile)
        averaged = mean_row([r, r])
        np.testing.assert_allclose(averaged, r.row())


class TestRenderers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xyz" in text
        assert "2.5000" in text

    def test_render_link_prediction(self):
        from repro.experiments.tables import render_link_prediction

        results = {"amazon": {"DeepWalk": [90.0, 89.0, 80.0, 0.01, 0.04]}}
        text = render_link_prediction(results, "Table III")
        assert "amazon" in text and "DeepWalk" in text
