"""Link-prediction / ranking evaluators, significance and degree analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.splits import EvalEdges
from repro.errors import EvaluationError
from repro.eval import (
    degree_bucketed_ranking,
    edge_scores,
    evaluate_link_prediction,
    evaluate_ranking,
    paired_t_test,
)


class OracleModel:
    """Knows the true graph: e_u = adjacency row + c * one-hot(u).

    Then e_u . e_v = |common neighbors| + 2c * A[u, v], so true edges score
    at least 2c above non-edges with equally many common neighbors — a
    near-perfect ranker by construction.
    """

    def __init__(self, graph, boost=10.0):
        self.tables = {}
        n = graph.num_nodes
        for relation in graph.schema.relationships:
            table = np.zeros((n, n))
            src, dst = graph.edges(relation)
            table[src, dst] = 1.0
            table[dst, src] = 1.0
            table += boost * np.eye(n)
            self.tables[relation] = table

    def node_embeddings(self, nodes, relation):
        return self.tables[relation][np.asarray(nodes, dtype=np.int64)]


class RandomModel:
    def __init__(self, num_nodes, dim=16, seed=0):
        self.table = np.random.default_rng(seed).normal(size=(num_nodes, dim))

    def node_embeddings(self, nodes, relation):
        return self.table[np.asarray(nodes, dtype=np.int64)]


class TestLinkPredictionEvaluator:
    def test_oracle_beats_random(self, taobao_dataset, taobao_split):
        oracle = OracleModel(taobao_dataset.graph)
        random = RandomModel(taobao_dataset.graph.num_nodes)
        oracle_report = evaluate_link_prediction(oracle, taobao_split.test)
        random_report = evaluate_link_prediction(random, taobao_split.test)
        assert oracle_report["roc_auc"] > 95.0
        assert abs(random_report["roc_auc"] - 50.0) < 12.0
        assert oracle_report["roc_auc"] > random_report["roc_auc"]

    def test_report_structure(self, taobao_dataset, taobao_split):
        report = evaluate_link_prediction(
            RandomModel(taobao_dataset.graph.num_nodes), taobao_split.test
        )
        assert set(report.per_relation) == set(taobao_split.test)
        for metrics in report.per_relation.values():
            assert set(metrics) == {"roc_auc", "pr_auc", "f1"}

    def test_overall_is_mean_of_relations(self, taobao_dataset, taobao_split):
        report = evaluate_link_prediction(
            RandomModel(taobao_dataset.graph.num_nodes), taobao_split.test
        )
        manual = np.mean([m["roc_auc"] for m in report.per_relation.values()])
        assert report["roc_auc"] == pytest.approx(manual)

    def test_edge_scores_are_probabilities(self, taobao_dataset, taobao_split):
        model = RandomModel(taobao_dataset.graph.num_nodes)
        edges = next(iter(taobao_split.test.values()))
        scores = edge_scores(model, edges)
        assert np.all(scores >= 0) and np.all(scores <= 1)


class TestRankingEvaluator:
    def test_oracle_beats_random(self, taobao_dataset, taobao_split):
        oracle = OracleModel(taobao_dataset.graph)
        random = RandomModel(taobao_dataset.graph.num_nodes)
        train = taobao_split.train_graph
        oracle_rank = evaluate_ranking(oracle, train, taobao_split.test, k=10)
        random_rank = evaluate_ranking(random, train, taobao_split.test, k=10)
        assert oracle_rank["hr_at_k"] > random_rank["hr_at_k"]

    def test_metrics_bounded(self, taobao_dataset, taobao_split):
        report = evaluate_ranking(
            RandomModel(taobao_dataset.graph.num_nodes),
            taobao_split.train_graph, taobao_split.test, k=10,
        )
        for metrics in report.per_relation.values():
            assert 0.0 <= metrics["pr_at_k"] <= 1.0
            assert 0.0 <= metrics["hr_at_k"] <= 1.0

    def test_per_node_collection(self, taobao_dataset, taobao_split):
        report = evaluate_ranking(
            RandomModel(taobao_dataset.graph.num_nodes),
            taobao_split.train_graph, taobao_split.test, k=10,
            keep_per_node=True,
        )
        assert report.per_node
        for relation, nodes in report.per_node.items():
            for metrics in nodes.values():
                assert set(metrics) == {"pr_at_k", "hr_at_k"}

    def test_max_sources_caps_work(self, taobao_dataset, taobao_split):
        report = evaluate_ranking(
            RandomModel(taobao_dataset.graph.num_nodes),
            taobao_split.train_graph, taobao_split.test, k=10,
            keep_per_node=True, max_sources=3,
            rng=np.random.default_rng(0),
        )
        for nodes in report.per_node.values():
            assert len(nodes) <= 3


class TestSignificance:
    def test_clear_difference_significant(self):
        ours = [90.0, 91.0, 89.5, 90.5]
        theirs = [80.0, 81.0, 79.5, 80.5]
        result = paired_t_test(ours, theirs)
        assert result.significant(0.01)
        assert result.mean_difference == pytest.approx(10.0)

    def test_identical_runs_not_significant(self):
        result = paired_t_test([80.0, 81.0], [80.0, 81.0])
        assert not result.significant()
        assert result.p_value == 1.0

    def test_constant_nonzero_difference(self):
        result = paired_t_test([81.0, 82.0], [80.0, 81.0])
        assert result.significant()

    def test_noisy_overlap_not_significant(self):
        rng = np.random.default_rng(0)
        a = 80 + rng.normal(0, 5, size=4)
        b = 80 + rng.normal(0, 5, size=4)
        result = paired_t_test(a, b)
        assert result.p_value > 0.01

    def test_single_run_rejected(self):
        with pytest.raises(EvaluationError):
            paired_t_test([1.0], [2.0])


class TestDegreeAnalysis:
    def test_buckets_cover_range(self, taobao_dataset, taobao_split):
        report = evaluate_ranking(
            OracleModel(taobao_dataset.graph),
            taobao_split.train_graph, taobao_split.test, k=10,
            keep_per_node=True,
        )
        buckets = degree_bucketed_ranking(report, taobao_split.train_graph, 4)
        assert len(buckets) == 4
        assert sum(b.num_nodes for b in buckets) > 0
        for bucket in buckets:
            assert bucket.low <= bucket.high

    def test_empty_report_gives_no_buckets(self, taobao_split):
        from repro.eval.ranking import RankingReport

        empty = RankingReport(k=10, per_relation={}, per_node={})
        assert degree_bucketed_ranking(empty, taobao_split.train_graph) == []
