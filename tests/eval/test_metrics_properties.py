"""Property-based tests of eval.metrics (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    best_f1,
    ndcg_at_k,
    pr_auc,
    precision_at_k,
    recall_at_k,
    roc_auc,
)
from repro.verify.oracles import _brute_roc_auc

# Binary instances with both classes present; scores drawn from a coarse
# grid so ties are frequent (tie handling is where rank metrics go wrong).
BINARY_CASES = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 20)), min_size=2, max_size=40
).filter(
    lambda rows: any(label == 1 for label, _ in rows)
    and any(label == 0 for label, _ in rows)
)

HIT_LISTS = st.lists(st.booleans(), min_size=1, max_size=20)


def _unpack(rows):
    labels = np.asarray([label for label, _ in rows])
    scores = np.asarray([score for _, score in rows], dtype=np.float64) / 20.0
    return labels, scores


@settings(max_examples=60, deadline=None)
@given(BINARY_CASES)
def test_roc_auc_equals_pairwise_probability(rows):
    labels, scores = _unpack(rows)
    assert roc_auc(labels, scores) == pytest.approx(
        _brute_roc_auc(labels, scores), abs=1e-12
    )


@settings(max_examples=60, deadline=None)
@given(BINARY_CASES)
def test_binary_metrics_bounded(rows):
    labels, scores = _unpack(rows)
    for metric in (roc_auc, pr_auc, best_f1):
        value = metric(labels, scores)
        assert 0.0 <= value <= 1.0, metric.__name__


@settings(max_examples=60, deadline=None)
@given(BINARY_CASES, st.randoms(use_true_random=False))
def test_permutation_invariance_with_ties(rows, random):
    # Tied scores are grouped per distinct threshold, so shuffling the
    # input order (which reorders within tie groups) must not move any
    # threshold-sweep metric.
    labels, scores = _unpack(rows)
    order = list(range(len(rows)))
    random.shuffle(order)
    order = np.asarray(order)
    for metric in (roc_auc, pr_auc, best_f1):
        assert metric(labels, scores) == pytest.approx(
            metric(labels[order], scores[order]), abs=1e-12
        ), metric.__name__


@settings(max_examples=60, deadline=None)
@given(HIT_LISTS, st.integers(1, 25), st.integers(1, 25))
def test_ranking_metrics_bounded(hits, k, extra_relevant):
    num_relevant = max(1, sum(hits) + extra_relevant - 1)
    assert 0.0 <= precision_at_k(hits, k) <= 1.0
    assert 0.0 <= recall_at_k(hits, num_relevant, k) <= 1.0
    assert 0.0 <= ndcg_at_k(hits, num_relevant, k) <= 1.0


@settings(max_examples=40, deadline=None)
@given(HIT_LISTS, st.integers(1, 25))
def test_perfect_prefix_is_ideal(hits, k):
    # A ranking whose relevant items all sit at the top is NDCG-optimal.
    num_relevant = max(1, sum(hits))
    ideal = sorted(hits, reverse=True)
    assert ndcg_at_k(ideal, num_relevant, k) >= ndcg_at_k(hits, num_relevant, k)


@settings(max_examples=40, deadline=None)
@given(BINARY_CASES)
def test_roc_auc_flips_under_score_negation(rows):
    labels, scores = _unpack(rows)
    assert roc_auc(labels, scores) + roc_auc(labels, -scores) == pytest.approx(
        1.0, abs=1e-12
    )
