"""NDCG@K, MRR and MAP@K ranking metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    average_precision_at_k,
    ndcg_at_k,
    reciprocal_rank,
)


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        assert ndcg_at_k([True, True, False], num_relevant=2, k=3) == pytest.approx(1.0)

    def test_no_hits_is_zero(self):
        assert ndcg_at_k([False, False], num_relevant=2, k=2) == 0.0

    def test_later_hits_score_lower(self):
        early = ndcg_at_k([True, False, False], 1, 3)
        late = ndcg_at_k([False, False, True], 1, 3)
        assert early > late
        assert early == pytest.approx(1.0)

    def test_known_value(self):
        # One relevant item at rank 2: DCG = 1/log2(3), IDCG = 1.
        expected = 1.0 / np.log2(3)
        assert ndcg_at_k([False, True], 1, 2) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k([True], 0, 3)
        with pytest.raises(EvaluationError):
            ndcg_at_k([True], 1, 0)


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank([True, False]) == 1.0

    def test_third_position(self):
        assert reciprocal_rank([False, False, True]) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank([False, False]) == 0.0

    def test_only_first_hit_counts(self):
        assert reciprocal_rank([False, True, True]) == pytest.approx(0.5)


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision_at_k([True, True], 2, 2) == pytest.approx(1.0)

    def test_known_value(self):
        # Hits at ranks 1 and 3 with 2 relevant: AP = (1/1 + 2/3) / 2.
        expected = (1.0 + 2.0 / 3.0) / 2.0
        assert average_precision_at_k([True, False, True], 2, 3) == pytest.approx(expected)

    def test_no_hits(self):
        assert average_precision_at_k([False, False], 3, 2) == 0.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            average_precision_at_k([True], 0, 1)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=30), st.integers(1, 10))
def test_ranking_metrics_bounded(hits, num_relevant):
    k = len(hits)
    assert 0.0 <= ndcg_at_k(hits, num_relevant, k) <= 1.0 + 1e-9
    assert 0.0 <= reciprocal_rank(hits) <= 1.0
    assert 0.0 <= average_precision_at_k(hits, num_relevant, k) <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=2, max_size=20))
def test_ndcg_monotone_under_swap_towards_front(hits):
    """Swapping a hit one position earlier never lowers NDCG."""
    hits = list(hits)
    num_relevant = max(1, sum(hits))
    k = len(hits)
    for i in range(1, len(hits)):
        if hits[i] and not hits[i - 1]:
            improved = hits.copy()
            improved[i - 1], improved[i] = improved[i], improved[i - 1]
            assert (
                ndcg_at_k(improved, num_relevant, k)
                >= ndcg_at_k(hits, num_relevant, k) - 1e-12
            )
            break
