"""Metric implementations: ROC-AUC, PR-AUC, F1, PR@K, HR@K."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    best_f1,
    f1_at_threshold,
    pr_auc,
    precision_at_k,
    recall_at_k,
    roc_auc,
)


class TestRocAuc:
    def test_perfect_ranking(self):
        labels = np.asarray([0, 0, 1, 1])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_ranking(self):
        labels = np.asarray([1, 1, 0, 0])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.03

    def test_ties_handled_via_average_ranks(self):
        labels = np.asarray([0, 1, 0, 1])
        scores = np.asarray([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(labels, scores) == 0.5

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=200)
        labels[0], labels[1] = 0, 1
        scores = rng.normal(size=200)
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, np.exp(scores))
        )

    def test_single_class_rejected(self):
        with pytest.raises(EvaluationError):
            roc_auc(np.ones(4), np.ones(4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            roc_auc(np.ones(3), np.ones(4))

    def test_non_binary_labels_rejected(self):
        with pytest.raises(EvaluationError):
            roc_auc(np.asarray([0, 2]), np.asarray([0.1, 0.2]))


class TestPrAuc:
    def test_perfect_ranking(self):
        labels = np.asarray([0, 0, 1, 1])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert pr_auc(labels, scores) == 1.0

    def test_all_ties_equals_prevalence(self):
        labels = np.asarray([1, 0, 0, 0])
        scores = np.zeros(4)
        assert pr_auc(labels, scores) == pytest.approx(0.25)

    def test_order_independent_under_ties(self):
        """Regression: tied scores must not favour whichever label comes first."""
        scores = np.ones(10)
        forward = pr_auc(np.asarray([1] * 5 + [0] * 5), scores)
        backward = pr_auc(np.asarray([0] * 5 + [1] * 5), scores)
        assert forward == backward == pytest.approx(0.5)

    def test_worst_ranking(self):
        labels = np.asarray([1, 0, 0, 0])
        scores = np.asarray([0.0, 1.0, 0.9, 0.8])
        assert pr_auc(labels, scores) == pytest.approx(0.25)


class TestF1:
    def test_best_f1_perfect(self):
        labels = np.asarray([0, 0, 1, 1])
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        assert best_f1(labels, scores) == 1.0

    def test_best_f1_lower_bound(self):
        """Predict-all-positive yields F1 = 2p/(p+1); best F1 can't be below."""
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=500)
        labels[0] = 1
        scores = rng.random(500)
        prevalence = labels.mean()
        floor = 2 * prevalence / (prevalence + 1)
        assert best_f1(labels, scores) >= floor - 1e-9

    def test_best_f1_tie_order_independent(self):
        scores = np.ones(8)
        a = best_f1(np.asarray([1, 1, 1, 1, 0, 0, 0, 0]), scores)
        b = best_f1(np.asarray([0, 0, 0, 0, 1, 1, 1, 1]), scores)
        assert a == b

    def test_f1_at_threshold(self):
        labels = np.asarray([1, 1, 0, 0])
        scores = np.asarray([0.9, 0.4, 0.6, 0.1])
        # Threshold 0.5: tp=1, fp=1, fn=1 -> precision=0.5, recall=0.5.
        assert f1_at_threshold(labels, scores, 0.5) == pytest.approx(0.5)

    def test_f1_at_threshold_no_predictions(self):
        labels = np.asarray([1, 0])
        scores = np.asarray([0.1, 0.2])
        assert f1_at_threshold(labels, scores, 0.9) == 0.0


class TestTopK:
    def test_precision_at_k(self):
        hits = [True, False, True, False, False]
        assert precision_at_k(hits, 5) == pytest.approx(0.4)

    def test_precision_at_k_shorter_list(self):
        assert precision_at_k([True], 10) == pytest.approx(0.1)

    def test_recall_at_k(self):
        hits = [True, False, True]
        assert recall_at_k(hits, num_relevant=4, k=3) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k([True], 0)
        with pytest.raises(EvaluationError):
            recall_at_k([True], 1, 0)

    def test_invalid_relevant_count(self):
        with pytest.raises(EvaluationError):
            recall_at_k([True], 0, 5)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.floats(0, 1, allow_nan=False)),
                min_size=4, max_size=60))
def test_roc_auc_complement_property(pairs):
    """AUC(labels, scores) + AUC(1-labels, scores) == 1 (without ties)."""
    labels = np.asarray([int(l) for l, _ in pairs])
    scores = np.asarray([s for _, s in pairs])
    if labels.sum() in (0, len(labels)):
        return
    if len(np.unique(scores)) != len(scores):
        return
    auc = roc_auc(labels, scores)
    flipped = roc_auc(1 - labels, scores)
    assert auc + flipped == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.floats(0, 1, allow_nan=False)),
                min_size=4, max_size=60))
def test_metrics_bounded(pairs):
    labels = np.asarray([int(l) for l, _ in pairs])
    scores = np.asarray([s for _, s in pairs])
    if labels.sum() in (0, len(labels)):
        return
    assert 0.0 <= roc_auc(labels, scores) <= 1.0
    assert 0.0 <= pr_auc(labels, scores) <= 1.0
    assert 0.0 <= best_f1(labels, scores) <= 1.0
