"""Vector-index layer: backends, recall, persistence, engine lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import index_findings, verify_index
from repro.core import EmbeddingStore
from repro.errors import CheckError, ReproError
from repro.serving import (
    BatchServingEngine,
    ExactIndex,
    HNSWIndex,
    INDEX_BACKENDS,
    IVFIndex,
    load_index,
    make_index,
    save_index,
)
from repro.serving.engine import ServingStats, _percentiles
from repro.serving.index import _stable_topk_ids


@pytest.fixture
def store(taobao_split):
    graph = taobao_split.train_graph
    rng = np.random.default_rng(3)
    return EmbeddingStore({
        relation: rng.standard_normal((graph.num_nodes, 16))
        for relation in graph.schema.relationships
    })


def _reference_topk_ids(scores, positions, k):
    """Full stable sort: descending score, ascending position among ties."""
    order = np.lexsort((positions, -scores))[:k]
    return positions[order], scores[order]


def _pool(rng, size=512, dim=8):
    return rng.standard_normal((size, dim))


class TestStableTopKIds:
    def test_fuzz_matches_full_sort(self):
        rng = np.random.default_rng(11)
        for trial in range(150):
            n = int(rng.integers(0, 40))
            k = int(rng.integers(1, 12))
            # Integer scores force heavy ties; shuffled positions make the
            # "lowest position wins" tie-break observable.
            scores = rng.integers(0, 5, size=n).astype(float)
            positions = rng.permutation(1000)[:n].astype(np.int64)
            got_ids, got_scores = _stable_topk_ids(scores, positions, k)
            want_ids, want_scores = _reference_topk_ids(scores, positions, k)
            np.testing.assert_array_equal(got_ids, want_ids, err_msg=str(trial))
            np.testing.assert_array_equal(got_scores, want_scores)

    def test_empty_candidates(self):
        ids, scores = _stable_topk_ids(
            np.empty(0), np.empty(0, dtype=np.int64), 5
        )
        assert len(ids) == 0 and len(scores) == 0


class TestRegistry:
    def test_backends_registered(self):
        assert set(INDEX_BACKENDS) == {"exact", "ivf", "hnsw"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError, match="unknown index backend"):
            make_index("faiss")

    def test_foreign_params_are_filtered(self):
        # The engine forwards one flat dict to whichever backend is active.
        index = make_index("ivf", nprobe=3, ef_search=64, block_size=7)
        assert isinstance(index, IVFIndex)
        assert index.nprobe == 3
        assert not hasattr(index, "ef_search")

    def test_search_before_build_raises(self):
        for backend in INDEX_BACKENDS:
            with pytest.raises(ReproError, match="before build"):
                make_index(backend).search(np.zeros(4), k=3)


class TestExactIndex:
    def test_single_query_bit_identical_to_reference(self):
        rng = np.random.default_rng(0)
        vectors = _pool(rng)
        query = rng.standard_normal(8)
        (ids, scores), = ExactIndex().build(vectors).search(query, k=10)
        # The scalar reference path: dgemv scores, stable argsort.
        want = vectors @ query
        order = np.argsort(-want, kind="stable")[:10]
        np.testing.assert_array_equal(ids, order)
        np.testing.assert_array_equal(scores, want[order])

    def test_blocked_queries_bit_identical_to_gemm(self):
        rng = np.random.default_rng(1)
        vectors = _pool(rng)
        queries = rng.standard_normal((6, 8))
        found = ExactIndex(block_size=6).build(vectors).search(queries, k=7)
        want = queries @ vectors.T
        for j, (ids, scores) in enumerate(found):
            order = np.argsort(-want[j], kind="stable")[:7]
            np.testing.assert_array_equal(ids, order)
            np.testing.assert_array_equal(scores, want[j][order])

    def test_exclusions_never_surface(self):
        rng = np.random.default_rng(2)
        vectors = _pool(rng, size=64)
        index = ExactIndex().build(vectors)
        excluded = np.arange(0, 64, 2)
        (ids, _), = index.search(vectors[3], k=64, exclude=[excluded])
        assert not set(ids.tolist()) & set(excluded.tolist())
        assert len(ids) == 32

    def test_k_beyond_pool_returns_whole_pool(self):
        rng = np.random.default_rng(3)
        vectors = _pool(rng, size=9)
        (ids, _), = ExactIndex().build(vectors).search(vectors[0], k=100)
        assert sorted(ids.tolist()) == list(range(9))


class TestApproximateBackends:
    def test_full_probe_ivf_equals_exact(self):
        # nprobe >= nlist degenerates to a full scan, so the selected ids
        # must match the exact oracle — this pins the slice concatenation
        # + stable extraction, independent of clustering.  Scores agree to
        # the ulp only (slice dgemv vs full-pool dgemm accumulate
        # differently), so the float comparison is allclose, not bitwise.
        rng = np.random.default_rng(4)
        vectors = _pool(rng)
        queries = rng.standard_normal((8, 8))
        exact = ExactIndex().build(vectors).search(queries, k=10)
        ivf = IVFIndex(nprobe=10**6).build(vectors).search(queries, k=10)
        for (eids, escores), (iids, iscores) in zip(exact, ivf):
            np.testing.assert_array_equal(iids, eids)
            np.testing.assert_allclose(iscores, escores, rtol=1e-12)

    @pytest.mark.parametrize("factory", [
        lambda: IVFIndex(nprobe=16),
        lambda: HNSWIndex(m=12, ef_construction=64, ef_search=128),
    ])
    def test_recall_at_10(self, factory):
        rng = np.random.default_rng(5)
        vectors = _pool(rng, size=1024)
        queries = rng.standard_normal((32, 8))
        exact = ExactIndex().build(vectors).search(queries, k=10)
        found = factory().build(vectors).search(queries, k=10)
        recall = np.mean([
            len(set(ids.tolist()) & set(eids.tolist())) / 10
            for (ids, _), (eids, _) in zip(found, exact)
        ])
        assert recall >= 0.95

    @pytest.mark.parametrize("backend,params", [
        ("ivf", {"nprobe": 4}),
        ("hnsw", {"m": 8, "ef_construction": 32, "ef_search": 24}),
    ])
    def test_build_and_search_are_deterministic(self, backend, params):
        rng = np.random.default_rng(6)
        vectors = _pool(rng, size=300)
        queries = rng.standard_normal((5, 8))

        def run():
            index = make_index(backend, seed=9, **params).build(vectors)
            return index.search(queries, k=8), index.state_arrays()

        first_found, first_state = run()
        second_found, second_state = run()
        for (a_ids, a_scores), (b_ids, b_scores) in zip(
            first_found, second_found
        ):
            np.testing.assert_array_equal(a_ids, b_ids)
            np.testing.assert_array_equal(a_scores, b_scores)
        assert first_state.keys() == second_state.keys()
        for key in first_state:
            np.testing.assert_array_equal(first_state[key], second_state[key])

    def test_scores_are_exact_dot_products(self):
        # Approximation must live only in the candidate set: whatever an
        # approximate backend surfaces, the scores are true dot products
        # (to the ulp — the backend's BLAS call shape may differ from this
        # gathered recomputation).
        rng = np.random.default_rng(7)
        vectors = _pool(rng, size=400)
        query = rng.standard_normal(8)
        for index in (IVFIndex(nprobe=2), HNSWIndex(ef_search=16)):
            (ids, scores), = index.build(vectors).search(query, k=6)
            np.testing.assert_allclose(scores, vectors[ids] @ query, rtol=1e-12)

    def test_last_candidates_is_sublinear(self):
        rng = np.random.default_rng(8)
        vectors = _pool(rng, size=2048)
        index = IVFIndex(nprobe=2).build(vectors)
        index.search(rng.standard_normal((4, 8)), k=5)
        assert 0 < index.last_candidates < 4 * 2048


class TestPersistence:
    @pytest.mark.parametrize("factory", [
        lambda: ExactIndex(block_size=16),
        lambda: IVFIndex(nprobe=3, seed=2),
        lambda: HNSWIndex(m=8, ef_construction=32, ef_search=20, seed=2),
    ])
    def test_roundtrip_preserves_results(self, factory, tmp_path):
        rng = np.random.default_rng(9)
        vectors = _pool(rng, size=200)
        queries = rng.standard_normal((6, 8))
        index = factory().build(vectors)
        want = index.search(queries, k=9)
        target = save_index(index, tmp_path / "idx")
        assert target.suffix == ".npz"
        loaded, meta = load_index(target)
        assert meta["backend"] == index.backend
        assert (meta["size"], meta["dim"]) == (200, 8)
        assert loaded.params() == index.params()
        got = loaded.search(queries, k=9)
        for (a_ids, a_scores), (b_ids, b_scores) in zip(want, got):
            np.testing.assert_array_equal(b_ids, a_ids)
            np.testing.assert_array_equal(b_scores, a_scores)

    def test_loading_foreign_npz_raises(self, tmp_path):
        path = tmp_path / "not_an_index.npz"
        np.savez(path, embeddings=np.zeros((3, 2)))
        with pytest.raises(ReproError, match="not a repro vector index"):
            load_index(path)

    def test_c007_findings_on_mismatch(self):
        rng = np.random.default_rng(10)
        vectors = _pool(rng, size=50)
        index = ExactIndex().build(vectors)
        meta = index.meta()
        table = np.zeros((80, 8))
        good_pool = np.arange(50)
        assert index_findings(meta, index, table, good_pool) == []
        # Pool drifted since export: stale index must be flagged.
        findings = index_findings(meta, index, table, np.arange(60))
        assert any(f.code == "C007" for f in findings)
        with pytest.raises(CheckError, match="C007"):
            verify_index(meta, index, table, np.arange(60))
        # Embedding dimension changed out from under the index.
        with pytest.raises(CheckError, match="C007"):
            verify_index(meta, index, np.zeros((80, 12)), good_pool)


class TestEngineIntegration:
    def _engine(self, store, graph, **kwargs):
        kwargs.setdefault("index_params", {"seed": 0})
        return BatchServingEngine(store, graph, **kwargs)

    def _sources(self, graph, relation="page_view", count=10):
        return np.flatnonzero(graph.degrees(relation) > 0)[:count]

    def test_unknown_backend_fails_fast(self, store, taobao_split):
        with pytest.raises(ReproError, match="unknown index backend"):
            self._engine(store, taobao_split.train_graph, index="annoy")

    def test_full_probe_ivf_engine_matches_exact(self, store, taobao_split):
        graph = taobao_split.train_graph
        exact = self._engine(store, graph)
        ivf = self._engine(
            store, graph, index="ivf", min_index_size=2,
            index_params={"nprobe": 10**6, "seed": 0},
        )
        sources = self._sources(graph)
        for (eids, escores), (iids, iscores) in zip(
            exact.topk_batch(sources, "page_view", k=6),
            ivf.topk_batch(sources, "page_view", k=6),
        ):
            np.testing.assert_array_equal(iids, eids)
            np.testing.assert_allclose(iscores, escores, rtol=1e-12)
        assert ivf.stats.index_builds == 1
        assert ivf.stats.exact_fallbacks == 0

    def test_known_edges_stay_excluded(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(
            store, graph, index="hnsw", min_index_size=2,
            index_params={"ef_search": 64, "seed": 0},
        )
        sources = self._sources(graph, count=6)
        for source, (ids, _) in zip(
            sources.tolist(),
            engine.topk_batch(sources, "page_view", k=8),
        ):
            banned = set(graph.neighbors(source, "page_view").tolist())
            banned.add(source)
            assert not set(ids.tolist()) & banned

    def test_index_reused_until_invalidated(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        sources = self._sources(graph)
        engine.topk_batch(sources, "page_view", k=4)
        engine.topk_batch(sources, "page_view", k=4)
        assert engine.stats.index_builds == 1  # warm: no rebuild
        engine.cache.invalidate("page_view")
        assert engine._indexes == {}  # listener retired the index eagerly
        engine.topk_batch(sources, "page_view", k=4)
        assert engine.stats.index_builds == 2

    def test_lru_eviction_drops_live_index(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(
            store, graph, index="ivf", min_index_size=2, cache_capacity=1
        )
        engine.topk_batch(self._sources(graph, "page_view"), "page_view", k=3)
        assert any(key[0] == "page_view" for key in engine._indexes)
        # Fetching a second relation evicts the first table; its index
        # must not survive the table it was built from.
        engine.topk_batch(
            self._sources(graph, "add_to_cart"), "add_to_cart", k=3
        )
        assert not any(key[0] == "page_view" for key in engine._indexes)
        engine.topk_batch(self._sources(graph, "page_view"), "page_view", k=3)
        assert engine.stats.index_builds == 3  # re-fetch implies rebuild

    @pytest.mark.parametrize("on_stale,extra_builds,fallbacks", [
        ("rebuild", 1, 0),
        ("exact", 0, 10),
    ])
    def test_stale_entry_policy(self, store, taobao_split, on_stale,
                                extra_builds, fallbacks):
        graph = taobao_split.train_graph
        engine = self._engine(
            store, graph, index="ivf", min_index_size=2, on_stale=on_stale
        )
        sources = self._sources(graph)
        engine.topk_batch(sources, "page_view", k=4)
        # Tamper the recorded table version: the defensive path for an
        # index that outlived its snapshot without a listener firing.
        (key, (index, _, pool_len)), = engine._indexes.items()
        engine._indexes[key] = (index, -1, pool_len)
        engine.topk_batch(sources, "page_view", k=4)
        assert engine.stats.index_builds == 1 + extra_builds
        assert engine.stats.exact_fallbacks == fallbacks
        assert key not in engine._indexes or on_stale == "rebuild"

    def test_pool_length_mismatch_counts_as_stale(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        sources = self._sources(graph)
        engine.topk_batch(sources, "page_view", k=4)
        (key, (index, version, _)), = engine._indexes.items()
        engine._indexes[key] = (index, version, 1)
        engine.topk_batch(sources, "page_view", k=4)
        assert engine.stats.index_builds == 2

    def test_tiny_pools_served_exactly(self, store, taobao_split):
        graph = taobao_split.train_graph
        exact = self._engine(store, graph)
        engine = self._engine(
            store, graph, index="ivf", min_index_size=10**9
        )
        sources = self._sources(graph)
        for (eids, escores), (iids, iscores) in zip(
            exact.topk_batch(sources, "page_view", k=5),
            engine.topk_batch(sources, "page_view", k=5),
        ):
            np.testing.assert_array_equal(iids, eids)
            np.testing.assert_array_equal(iscores, escores)
        assert engine.stats.index_builds == 0
        assert engine.stats.exact_fallbacks == len(sources)

    def test_similar_topk_scores_use_reference_formula(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(
            store, graph, index="ivf", min_index_size=2,
            index_params={"nprobe": 10**6, "seed": 0},
        )
        exact = self._engine(store, graph)
        items = graph.nodes_of_type("item")[:5]
        for (eids, escores), (iids, iscores) in zip(
            exact.similar_topk(items, "page_view", k=6),
            engine.similar_topk(items, "page_view", k=6),
        ):
            np.testing.assert_array_equal(iids, eids)
            np.testing.assert_allclose(iscores, escores, rtol=1e-12)

    def test_rank_all_is_always_exact(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        exact = self._engine(store, graph)
        sources = self._sources(graph, "purchase", count=5)
        got = engine.rank_all(sources, "purchase", target_type="item")
        want = exact.rank_all(sources, "purchase", target_type="item")
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a, b)
        assert engine.stats.index_builds == 0
        assert engine.stats.exact_fallbacks == len(sources)

    def test_export_import_roundtrip(self, store, taobao_split, tmp_path):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        path = engine.export_index(tmp_path / "pv", "page_view", "item")
        fresh = self._engine(store, graph, index="ivf", min_index_size=2)
        fresh.import_index(path)
        assert fresh.stats.index_builds == 0
        sources = self._sources(graph)
        engine_results = engine.topk_batch(sources, "page_view", k=5)
        fresh_results = fresh.topk_batch(sources, "page_view", k=5)
        assert fresh.stats.index_builds == 0  # imported index served it
        for (a_ids, a_scores), (b_ids, b_scores) in zip(
            engine_results, fresh_results
        ):
            np.testing.assert_array_equal(b_ids, a_ids)
            np.testing.assert_array_equal(b_scores, a_scores)

    def test_import_rejects_mismatched_embeddings(self, store, taobao_split,
                                                  tmp_path):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        path = engine.export_index(tmp_path / "pv", "page_view", "item")
        rng = np.random.default_rng(1)
        narrow = EmbeddingStore({
            relation: rng.standard_normal((graph.num_nodes, 4))
            for relation in graph.schema.relationships
        })
        other = self._engine(narrow, graph, index="ivf", min_index_size=2)
        with pytest.raises(CheckError, match="C007"):
            other.import_index(path)

    def test_latency_report_includes_index_section(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = self._engine(store, graph, index="ivf", min_index_size=2)
        engine.topk_batch(self._sources(graph), "page_view", k=3)
        report = engine.latency_report()
        assert report["index"]["backend"] == "ivf"
        assert len(report["index"]["entries"]) == 1
        entry = report["index"]["entries"][0]
        assert (entry["relation"], entry["target_type"]) == ("page_view", "item")
        assert "serving.index_build" in report["stages"]
        assert "serving.index_search" in report["stages"]


class TestServingStatsPercentiles:
    def test_percentiles_match_numpy(self):
        stats = ServingStats()
        samples = [0.001 * (j + 1) for j in range(100)]
        for value in samples:
            stats.record_latency(value)
        got = stats.to_dict()["latency_ms"]
        arr = np.asarray(samples) * 1000.0
        for name, q in (("p50", 50), ("p95", 95), ("p99", 99)):
            assert got[name] == pytest.approx(float(np.percentile(arr, q)))
        assert got["p50"] <= got["p95"] <= got["p99"]

    def test_empty_window_reads_zero(self):
        assert _percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_engine_records_request_latency(self, store, taobao_split):
        graph = taobao_split.train_graph
        engine = BatchServingEngine(store, graph)
        sources = np.flatnonzero(graph.degrees("page_view") > 0)[:8]
        engine.topk_batch(sources, "page_view", k=3)
        engine.similar_topk(graph.nodes_of_type("item")[:2], "page_view", k=3)
        engine.rank_all(sources[:2], "page_view")
        latency = engine.stats.to_dict()["latency_ms"]
        assert len(engine.stats.latencies) == 3  # one sample per request
        assert latency["p99"] >= latency["p50"] > 0.0
