"""RecommendService: endpoints, admission queue, cold start, determinism.

Property tests drive hypothesis-chosen interleavings of feedback writes
and recommend reads, asserting every read matches a *fresh* engine over a
from-scratch graph rebuild (no cache, no delta, nothing shared) — the
strongest form of "merged views and invalidation are unobservable".
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.persistence import EmbeddingStore
from repro.errors import QueueFullError, SchemaError, ServiceError
from repro.graph import GraphBuilder, GraphSchema
from repro.serving import (
    BatchServingEngine,
    RecommendService,
    ServiceConfig,
    ServingStats,
)
from repro.serving.service import ColdStartEmbedder, EndpointStats
from repro.serving.traffic import generate_trace, replay_trace

DIM = 8


def build_base():
    schema = GraphSchema(["user", "item"], ["view", "buy"])
    builder = GraphBuilder(schema)
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


def build_store(graph, seed=0):
    rng = np.random.default_rng(seed)
    return EmbeddingStore({
        rel: rng.standard_normal((graph.num_nodes, DIM))
        for rel in graph.schema.relationships
    })


def make_service(**overrides) -> RecommendService:
    graph = build_base()
    store = build_store(graph)
    defaults = dict(flush_interval=0.0, compaction_threshold=4, max_queue=64)
    defaults.update(overrides)
    return RecommendService(store, graph, config=ServiceConfig(**defaults))


def reference_read(service, kind, node, relation, k):
    """A read through a cache-free engine over the service's live view."""
    engine = BatchServingEngine(service.embedder, service.view)
    if kind == "recommend":
        return engine.topk_batch([node], relation, k)[0]
    return engine.similar_topk([node], relation, k)[0]


# ----------------------------------------------------------------------
# Hypothesis: write/read interleavings match a from-scratch reference
# ----------------------------------------------------------------------
@st.composite
def service_ops(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 2), st.integers(3, 6)),
            st.tuples(st.just("write_cold"), st.integers(0, 2)),
            st.tuples(st.just("read"), st.integers(0, 6)),
            st.tuples(st.just("similar"), st.integers(3, 6)),
        ),
        min_size=1, max_size=25,
    ))


@settings(max_examples=30, deadline=None)
@given(service_ops(), st.integers(2, 8))
def test_interleaved_reads_match_fresh_reference(ops, threshold):
    service = make_service(compaction_threshold=threshold)
    compactions = 0
    for op in ops:
        if op[0] == "write":
            result = service.feedback(op[1], op[2], "view")
            compactions += int(result["compacted"])
        elif op[0] == "write_cold":
            result = service.feedback(op[1], service.view.num_nodes, "view")
            assert result["accepted"] and len(result["new_nodes"]) == 1
            compactions += int(result["compacted"])
        else:
            kind = "recommend" if op[0] == "read" else "similar"
            ids, scores = (
                service.recommend(op[1], "view", k=4)
                if kind == "recommend"
                else service.similar(op[1], "view", k=4)
            )
            ref_ids, ref_scores = reference_read(
                service, kind, op[1], "view", 4
            )
            np.testing.assert_array_equal(ids, ref_ids)
            np.testing.assert_array_equal(scores, ref_scores)
    assert service.view.compactions == compactions


# ----------------------------------------------------------------------
# Admission queue invariants
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_oversized_batch_rejected_with_typed_error(self):
        service = make_service(max_queue=2)
        with pytest.raises(QueueFullError):
            service.recommend_many([0, 1, 2], "view", k=3)
        assert service.endpoint_stats["recommend"].rejected == 3
        assert service.queue_depth == 0

    def test_rejection_does_not_wedge_the_service(self):
        service = make_service(max_queue=2)
        with pytest.raises(QueueFullError):
            service.recommend_many([0, 1, 2], "view", k=3)
        ids, _ = service.recommend(0, "view", k=3)   # still serves
        assert len(ids) > 0
        assert service.endpoint_stats["recommend"].requests == 1

    def test_queue_full_error_is_service_error(self):
        assert issubclass(QueueFullError, ServiceError)

    def test_queue_drains_to_zero_after_traffic(self):
        service = make_service()
        for _ in range(5):
            service.recommend(0, "view", k=3)
        service.feedback(0, 5, "view")
        assert service.queue_depth == 0
        assert service._queue_high_water >= 1

    def test_admitted_requests_counted_per_endpoint(self):
        service = make_service()
        service.recommend_many([0, 1], "view", k=3)
        service.similar(3, "view", k=2)
        service.feedback(0, 6, "buy")
        stats = service.stats_report()["endpoints"]
        assert stats["recommend"]["requests"] == 2
        assert stats["similar"]["requests"] == 1
        assert stats["feedback"]["requests"] == 1
        assert stats["recommend"]["batches"] == 1       # one micro-batch

    def test_bad_config_rejected(self):
        for overrides in (
            {"max_batch": 0}, {"max_queue": 0},
            {"flush_interval": -1.0}, {"cold_start": "ones"},
        ):
            with pytest.raises(ServiceError):
                ServiceConfig(**overrides)


# ----------------------------------------------------------------------
# Seeded determinism of a full simulated trace
# ----------------------------------------------------------------------
class TestTraceDeterminism:
    def test_same_seed_same_digest(self):
        graph = build_base()
        trace = generate_trace(graph, 150, seed=9, new_node_rate=0.1)
        summaries = [
            replay_trace(make_service(compaction_threshold=8), trace)
            for _ in range(2)
        ]
        assert summaries[0]["digest"] == summaries[1]["digest"]
        assert summaries[0] == summaries[1]
        assert summaries[0]["compactions"] >= 1

    def test_trace_generation_is_deterministic(self):
        graph = build_base()
        assert generate_trace(graph, 60, seed=3) == generate_trace(
            graph, 60, seed=3
        )
        assert generate_trace(graph, 60, seed=3) != generate_trace(
            graph, 60, seed=4
        )

    def test_different_seed_different_digest(self):
        graph = build_base()
        digests = {
            replay_trace(
                make_service(compaction_threshold=8),
                generate_trace(graph, 80, seed=seed),
            )["digest"]
            for seed in (1, 2)
        }
        assert len(digests) == 2


# ----------------------------------------------------------------------
# Regression: latency windows are per instance, never shared
# ----------------------------------------------------------------------
class TestLatencyWindowIsolation:
    def test_serving_stats_windows_are_independent(self):
        a, b = ServingStats(window=8), ServingStats(window=8)
        a.record_latency(1.0)
        assert len(a.latencies) == 1 and len(b.latencies) == 0
        assert a.latencies is not b.latencies

    def test_window_size_is_per_instance(self):
        small, large = ServingStats(window=2), ServingStats()
        for value in (0.1, 0.2, 0.3):
            small.record_latency(value)
        assert list(small.latencies) == [0.2, 0.3]
        assert large.latencies.maxlen > small.latencies.maxlen

    def test_two_services_do_not_pollute_each_others_p95(self):
        slow, idle = make_service(), make_service()
        for _ in range(5):
            slow.recommend(0, "view", k=3)
        # Plant pathological latencies directly in the busy service.
        for _ in range(3):
            slow.endpoint_stats["recommend"].record_latency(10.0)
        idle.recommend(1, "view", k=3)
        slow_p95 = slow.stats_report()["endpoints"]["recommend"][
            "latency_ms"]["p95"]
        idle_p95 = idle.stats_report()["endpoints"]["recommend"][
            "latency_ms"]["p95"]
        assert slow_p95 > 100.0          # the 10s outlier dominates
        assert idle_p95 < 100.0          # ... and never leaks next door
        assert (slow.engine.stats.latencies
                is not idle.engine.stats.latencies)

    def test_engine_windows_are_independent_too(self):
        a, b = make_service(), make_service()
        a.engine.stats.record_latency(5.0)
        assert len(b.engine.stats.latencies) == 0


# ----------------------------------------------------------------------
# Cold start
# ----------------------------------------------------------------------
class TestColdStart:
    def test_new_node_servable_immediately(self):
        service = make_service(compaction_threshold=0)
        result = service.feedback(1, 7, "view")       # 7 == num_nodes: fresh
        assert result["new_nodes"] == [7]
        assert service.view.node_type(7) == "item"    # inferred from user 1
        ids, scores = service.recommend(7, "view", k=3)
        assert len(ids) > 0
        assert 1 not in ids                           # known edge excluded

    def test_new_node_survives_compaction(self):
        service = make_service(compaction_threshold=2)
        service.feedback(1, 7, "view")
        service.feedback(0, 7, "view")                # tips the threshold
        assert service.view.compactions == 1
        assert service.view.base.num_nodes == 8
        ids, _ = service.recommend(7, "view", k=3)
        assert len(ids) > 0

    def test_explicit_types_for_double_cold_edge(self):
        service = make_service(compaction_threshold=0)
        result = service.feedback(
            7, 8, "view", source_type="user", target_type="item"
        )
        assert result["new_nodes"] == [7, 8]
        assert service.view.node_type(7) == "user"
        assert service.view.node_type(8) == "item"

    def test_double_cold_without_types_rejected(self):
        service = make_service()
        with pytest.raises(ServiceError, match="two unseen"):
            service.feedback(7, 8, "view")

    def test_non_dense_id_rejected(self):
        service = make_service()
        with pytest.raises(ServiceError, match="dense"):
            service.feedback(0, 9, "view")

    def test_cold_node_counts_in_candidate_pool(self):
        service = make_service(compaction_threshold=0)
        service.feedback(0, 7, "view")
        ids, _ = service.recommend(1, "view", k=10)
        assert 7 in ids                               # newborn is a candidate


class TestColdStartEmbedder:
    def test_warm_rows_pass_through(self):
        graph = build_base()
        store = build_store(graph)
        embedder = ColdStartEmbedder(store, graph.num_nodes)
        nodes = np.array([0, 3, 6])
        np.testing.assert_array_equal(
            embedder.node_embeddings(nodes, "view"),
            store.node_embeddings(nodes, "view"),
        )

    def test_zeros_mode_pads_cold_rows(self):
        graph = build_base()
        embedder = ColdStartEmbedder(build_store(graph), graph.num_nodes)
        out = embedder.node_embeddings(np.array([0, 7, 9]), "view")
        assert out.shape == (3, DIM)
        assert np.all(out[1:] == 0.0) and np.any(out[0] != 0.0)

    def test_mean_mode_pads_with_column_mean(self):
        graph = build_base()
        store = build_store(graph)
        embedder = ColdStartEmbedder(store, graph.num_nodes, mode="mean")
        out = embedder.node_embeddings(np.array([7]), "view")
        expected = store.node_embeddings(
            np.arange(graph.num_nodes), "view"
        ).mean(axis=0)
        np.testing.assert_allclose(out[0], expected)

    def test_all_cold_batch(self):
        graph = build_base()
        embedder = ColdStartEmbedder(build_store(graph), graph.num_nodes)
        out = embedder.node_embeddings(np.array([7, 8]), "view")
        assert out.shape == (2, DIM) and np.all(out == 0.0)


# ----------------------------------------------------------------------
# Validation + reports
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_relation(self):
        service = make_service()
        with pytest.raises(SchemaError):
            service.recommend(0, "likes", k=3)
        with pytest.raises(SchemaError):
            service.feedback(0, 3, "likes")

    def test_unknown_node(self):
        service = make_service()
        with pytest.raises(ServiceError, match="unknown node"):
            service.recommend(42, "view", k=3)

    def test_bad_k(self):
        service = make_service()
        with pytest.raises(ServiceError, match="k must be positive"):
            service.recommend(0, "view", k=0)

    def test_vectorised_bounds_check_names_first_bad_id(self):
        service = make_service()
        with pytest.raises(ServiceError, match="unknown node id -1"):
            service.recommend(-1, "view", k=3)
        with pytest.raises(ServiceError, match="unknown node id 9"):
            service.recommend_many([0, 1, 9, 42], "view", k=3)
        # An empty batch passes the bounds check and returns no results.
        assert service.recommend_many([], "view", k=3) == []

    def test_execution_epoch_revalidation_closes_toctou(self):
        # _submit bypasses the admission-time _check_read, so this read
        # only survives if _execute revalidates ids under _exec_lock.
        service = make_service()
        with pytest.raises(ServiceError, match="unknown node id 42"):
            service._submit(("recommend", "view", 3, None, True), 42)
        with pytest.raises(ServiceError, match="unknown node id 42"):
            service._submit(("similar", "view", 3), 42)
        # The failed batch must not wedge the queue.
        assert service.queue_depth == 0
        ids, _ = service.recommend(0, "view", k=3)
        assert len(ids) > 0

    def test_self_feedback_rejected(self):
        service = make_service()
        with pytest.raises(ServiceError, match="itself"):
            service.feedback(3, 3, "view")

    def test_duplicate_feedback_reported_not_raised(self):
        service = make_service()
        assert service.feedback(0, 3, "view")["accepted"] is False
        assert service.view.duplicates_dropped == 1


class TestReports:
    def test_stats_report_shape(self):
        service = make_service()
        service.recommend(0, "view", k=3)
        service.feedback(0, 5, "buy")
        report = service.stats_report()
        assert set(report) == {"endpoints", "queue", "ingestion", "engine"}
        assert report["queue"]["max_queue"] == 64
        assert report["ingestion"]["edges_ingested"] == 1
        latency = report["endpoints"]["recommend"]["latency_ms"]
        assert set(latency) == {"p50", "p95", "p99"}
        assert latency["p50"] > 0.0

    def test_endpoint_stats_mean_batch_size(self):
        stats = EndpointStats()
        assert stats.to_dict()["mean_batch_size"] == 0.0
        stats.requests, stats.batches = 6, 2
        assert stats.to_dict()["mean_batch_size"] == 3.0

    def test_feedback_many_one_batch(self):
        service = make_service(compaction_threshold=0)
        results = service.feedback_many([(0, 5), (0, 6), (1, 6)], "view")
        assert [r["accepted"] for r in results] == [True, True, True]
        assert service.endpoint_stats["feedback"].batches == 1

    def test_stats_report_counts_executed_batches(self):
        # The batches counter is bumped in _execute under _cond (it used
        # to be updated with no lock); stats_report reads under the same
        # lock, so the numbers it returns are a coherent snapshot.
        service = make_service()
        service.recommend_many([0, 1, 2], "view", k=3)
        report = service.stats_report()
        recommend = report["endpoints"]["recommend"]
        assert recommend["requests"] == 3
        assert recommend["batches"] == 1
        assert recommend["mean_batch_size"] == 3.0
        assert report["queue"]["depth"] == 0
        assert report["queue"]["high_water"] >= 3

    def test_profiler_records_service_stages(self):
        service = make_service(compaction_threshold=2)
        service.recommend(0, "view", k=3)
        service.feedback(0, 5, "view")
        service.feedback(0, 6, "view")                # triggers compaction
        stages = service.profiler.report()
        assert "service.recommend" in stages
        assert "service.feedback" in stages
        assert "service.compaction" in stages
