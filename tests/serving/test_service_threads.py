"""Concurrency smoke: the service under a thread pool, compactions live.

The service guarantees epoch consistency: one execution lock serialises
engine reads, feedback application and compaction, so a concurrent read
must observe the graph as it stood between two write applications — never
a torn intermediate.  The torn-read test makes that falsifiable: every
concurrent read's result must be bit-identical to one of the precomputed
per-write-prefix snapshots.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.check.state import delta_findings
from repro.core.persistence import EmbeddingStore
from repro.errors import QueueFullError
from repro.graph import GraphBuilder, GraphSchema
from repro.serving import BatchServingEngine, RecommendService, ServiceConfig
from repro.serving.service import ColdStartEmbedder
from repro.utils.concurrency import (
    concurrency_findings,
    lock_sanitizer,
    reset_concurrency_state,
)


def build_base():
    schema = GraphSchema(["user", "item"], ["view", "buy"])
    builder = GraphBuilder(schema)
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


def build_store(graph, seed=0):
    rng = np.random.default_rng(seed)
    return EmbeddingStore({
        rel: rng.standard_normal((graph.num_nodes, 8))
        for rel in graph.schema.relationships
    })


def make_service(**overrides) -> RecommendService:
    graph = build_base()
    store = build_store(graph)
    defaults = dict(flush_interval=0.0, compaction_threshold=4, max_queue=64)
    defaults.update(overrides)
    return RecommendService(store, graph, config=ServiceConfig(**defaults))


def snapshot_read(graph_or_view, store, node, relation, k, base_nodes):
    """The reference result for one epoch: a fresh cache-free engine."""
    engine = BatchServingEngine(
        ColdStartEmbedder(store, base_nodes), graph_or_view
    )
    ids, scores = engine.topk_batch([node], relation, k)[0]
    return ids.tolist(), scores.tolist()


def test_no_torn_reads_during_compaction():
    """Concurrent reads during a compacting write stream land on epochs.

    A writer streams 12 unique edges (compaction threshold 3 → four
    compactions) while readers hammer one query.  Every observed result
    must equal one of the 13 per-prefix snapshots — a torn read (half-old
    half-new CSR, stale pool against a fresh table, ...) matches none.
    """
    graph = build_base()
    store = build_store(graph)
    writes = [
        (0, 5, "view"), (0, 6, "view"), (1, 4, "view"), (1, 6, "view"),
        (2, 3, "view"), (2, 5, "view"), (0, 4, "buy"), (0, 5, "buy"),
        (1, 3, "buy"), (1, 6, "buy"), (2, 4, "buy"), (2, 6, "buy"),
    ]
    query, relation, k = 0, "view", 4

    # Precompute the 13 legal snapshots (before any write, after each).
    from repro.serving.deltas import DeltaGraphView

    shadow = DeltaGraphView(graph, compaction_threshold=0)
    snapshots = [snapshot_read(shadow, store, query, relation, k,
                               graph.num_nodes)]
    for u, v, rel in writes:
        shadow.add_edge(u, v, rel)
        snapshots.append(snapshot_read(shadow, store, query, relation, k,
                                       graph.num_nodes))

    service = RecommendService(store, graph, config=ServiceConfig(
        flush_interval=0.0005, max_batch=8, max_queue=10_000,
        compaction_threshold=3,
    ))

    def writer():
        for u, v, rel in writes:
            service.feedback(u, v, rel)
        return "done"

    def reader(_):
        ids, scores = service.recommend(query, relation, k=k)
        return ids.tolist(), scores.tolist()

    with ThreadPoolExecutor(max_workers=6) as pool:
        write_future = pool.submit(writer)
        results = list(pool.map(reader, range(60)))
        assert write_future.result() == "done"

    assert service.view.compactions == 4
    for observed in results:
        assert observed in snapshots, (
            f"torn read: {observed} matches no write-prefix snapshot"
        )
    # The full write stream must be visible to a read issued after the storm.
    final = service.recommend(query, relation, k=k)
    assert (final[0].tolist(), final[1].tolist()) == snapshots[-1]


def test_stable_topk_under_concurrent_identical_reads():
    """With no writer, every concurrent read of one query is identical."""
    service = make_service(flush_interval=0.001, max_batch=16,
                           max_queue=10_000)
    expected = service.recommend(0, "view", k=4)

    def reader(_):
        ids, scores = service.recommend(0, "view", k=4)
        return ids.tolist(), scores.tolist()

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(reader, range(100)))
    assert set(map(tuple, (tuple(ids) for ids, _ in results))) == {
        tuple(expected[0].tolist())
    }
    for ids, scores in results:
        assert ids == expected[0].tolist()
        assert scores == expected[1].tolist()
    # Micro-batching actually coalesced some of those requests.
    stats = service.endpoint_stats["recommend"]
    assert stats.batches <= stats.requests


def test_mixed_storm_leaves_consistent_state():
    """Reads, writes and cold-start ingestion from many threads at once."""
    service = make_service(flush_interval=0.001, max_batch=8,
                           max_queue=10_000, compaction_threshold=6)
    errors = []

    def worker(i):
        # Deterministic per-index op choice: generators are not thread-safe.
        try:
            roll = i % 5
            if roll < 2:
                ids, scores = service.recommend(i % 3, "view", k=3)
                assert len(ids) == len(scores)
                assert all(0 <= n < service.view.num_nodes for n in ids)
            elif roll < 3:
                service.similar(3 + i % 4, "view", k=3)
            else:
                service.feedback(i % 3, 3 + (i * 7) % 4, "view")
        except QueueFullError:
            pass
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    with ThreadPoolExecutor(max_workers=8) as pool:
        list(pool.map(worker, range(120)))

    assert errors == []
    assert service.queue_depth == 0
    # The view's merged CSRs still match a from-scratch rebuild (C008).
    assert delta_findings(service.view) == []
    report = service.stats_report()
    admitted = sum(
        stats["requests"] for stats in report["endpoints"].values()
    )
    assert admitted > 0


def test_sanitized_storm_compaction_vs_batch_reads():
    """Compacting writes against batch reads under the runtime sanitizer.

    Writers stream "buy" feedback (threshold 3 → repeated compactions)
    while readers issue ``recommend_many`` batches on the untouched
    "view" relation.  With the lock-discipline sanitizer on, the run must
    produce zero lock-order errors and zero write-tracker findings, and
    the "view" top-K must stay bit-identical throughout (the write
    stream never touches it).
    """
    service = make_service(flush_interval=0.001, max_batch=8,
                           max_queue=10_000, compaction_threshold=3)
    expected = [
        (ids.tolist(), scores.tolist())
        for ids, scores in service.recommend_many([0, 1, 2], "view", k=3)
    ]
    writes = [
        (0, 4, "buy"), (0, 5, "buy"), (0, 6, "buy"), (1, 3, "buy"),
        (1, 5, "buy"), (1, 6, "buy"), (2, 3, "buy"), (2, 4, "buy"),
        (2, 6, "buy"),
    ]
    errors = []

    def writer():
        for u, v, rel in writes:
            service.feedback(u, v, rel)
        return "done"

    def reader(_):
        try:
            batch = service.recommend_many([0, 1, 2], "view", k=3)
            return [(ids.tolist(), scores.tolist()) for ids, scores in batch]
        except QueueFullError:  # pragma: no cover - queue is oversized
            return None
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)
            return None

    reset_concurrency_state()
    try:
        with lock_sanitizer():
            with ThreadPoolExecutor(max_workers=8) as pool:
                write_future = pool.submit(writer)
                results = list(pool.map(reader, range(50)))
                assert write_future.result() == "done"
            findings = concurrency_findings()
    finally:
        reset_concurrency_state()

    assert errors == []
    assert findings == [], [f.to_dict() for f in findings]
    assert service.view.compactions == 3
    assert service.queue_depth == 0
    for observed in results:
        assert observed == expected
    # Rerunning the batch after the storm, sanitizer off, still matches.
    after = [
        (ids.tolist(), scores.tolist())
        for ids, scores in service.recommend_many([0, 1, 2], "view", k=3)
    ]
    assert after == expected
