"""Streaming delta buffers: bit-identity to from-scratch rebuilds.

The contract under test (DESIGN.md "Streaming ingestion"): at *every*
point in an arbitrary interleaving of edge/node ingestion and reads, a
:class:`DeltaGraphView`'s merged CSR must be bit-identical to constructing
a :class:`MultiplexHeteroGraph` from scratch over the full (base + delta)
edge list — and compaction must be unobservable to readers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.state import delta_findings, verify_delta_view
from repro.errors import CheckError, GraphError, SchemaError
from repro.graph import GraphBuilder, GraphSchema
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.serving.deltas import DeltaGraphView, EdgeDeltaBuffer


def build_base():
    """Users 0-2, items 3-6, two relations (the conftest small graph)."""
    schema = GraphSchema(["user", "item"], ["view", "buy"])
    builder = GraphBuilder(schema)
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


def rebuild_from_scratch(view: DeltaGraphView) -> MultiplexHeteroGraph:
    """The naive truth: a cold restart over the full merged edge list."""
    return MultiplexHeteroGraph(
        view.schema,
        np.asarray(view.node_type_codes),
        {rel: view.edges(rel) for rel in view.schema.relationships},
    )


def assert_bit_identical(view: DeltaGraphView) -> None:
    rebuilt = rebuild_from_scratch(view)
    assert view.num_nodes == rebuilt.num_nodes
    for relation in view.schema.relationships:
        fast_indptr, fast_indices = view.csr(relation)
        slow_indptr, slow_indices = rebuilt.csr(relation)
        np.testing.assert_array_equal(fast_indptr, slow_indptr)
        np.testing.assert_array_equal(fast_indices, slow_indices)
        assert view.num_edges_in(relation) == rebuilt.num_edges_in(relation)


# ----------------------------------------------------------------------
# Hypothesis: arbitrary ingestion interleavings stay bit-identical
# ----------------------------------------------------------------------
@st.composite
def ingestion_ops(draw):
    """A mixed sequence of edge appends (possibly duplicate) and new nodes."""
    return draw(st.lists(
        st.one_of(
            st.tuples(
                st.just("edge"),
                st.integers(0, 11),       # endpoints may be invalid on
                st.integers(0, 11),       # purpose; invalid ops must raise
                st.sampled_from(["view", "buy"]),
            ),
            st.tuples(st.just("node"), st.sampled_from(["user", "item"])),
        ),
        min_size=1, max_size=40,
    ))


@settings(max_examples=40, deadline=None)
@given(ingestion_ops(), st.integers(0, 12))
def test_merged_view_bit_identical_under_any_interleaving(ops, threshold):
    """Every prefix of every interleaving matches a from-scratch rebuild —
    including across compaction boundaries."""
    view = DeltaGraphView(build_base(), compaction_threshold=threshold)
    compactions_seen = 0
    for op in ops:
        if op[0] == "node":
            view.add_node(op[1])
        else:
            _, u, v, relation = op
            if u == v or max(u, v) >= view.num_nodes:
                with pytest.raises(GraphError):
                    view.add_edge(u, v, relation)
                continue
            was_present = view.has_edge(u, v, relation)
            accepted = view.add_edge(u, v, relation)
            assert accepted == (not was_present)
            assert view.has_edge(u, v, relation)
        if view.maybe_compact():
            compactions_seen += 1
            assert view.pending_edges == 0 and view.pending_nodes == 0
        assert_bit_identical(view)
        assert not delta_findings(view)
    assert view.compactions == compactions_seen


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_compaction_point_is_unobservable(seed):
    """Reads immediately before and after an explicit compact() agree."""
    rng = np.random.default_rng(seed)
    view = DeltaGraphView(build_base(), compaction_threshold=0)
    users = list(range(3))
    items = [3, 4, 5, 6]
    for _ in range(12):
        u = int(rng.choice(users))
        v = int(rng.choice(items))
        view.add_edge(u, v, "view")
    before = {
        rel: tuple(np.array(part) for part in view.csr(rel))
        for rel in view.schema.relationships
    }
    degrees_before = view.degrees("view").copy()
    view.compact()
    assert view.pending_edges == 0
    for rel in view.schema.relationships:
        after = view.csr(rel)
        np.testing.assert_array_equal(before[rel][0], after[0])
        np.testing.assert_array_equal(before[rel][1], after[1])
    np.testing.assert_array_equal(degrees_before, view.degrees("view"))


# ----------------------------------------------------------------------
# Direct unit coverage
# ----------------------------------------------------------------------
class TestEdgeDeltaBuffer:
    def test_arrival_order_and_duplicates(self):
        buffer = EdgeDeltaBuffer("view")
        buffer.append(0, 5)
        buffer.append(4, 1)
        assert len(buffer) == 2
        assert buffer.contains(5, 0) and buffer.contains(1, 4)
        src, dst = buffer.arrays()
        np.testing.assert_array_equal(src, [0, 4])
        np.testing.assert_array_equal(dst, [5, 1])
        buffer.clear()
        assert len(buffer) == 0 and not buffer.contains(0, 5)

    def test_empty_arrays(self):
        src, dst = EdgeDeltaBuffer("view").arrays()
        assert len(src) == 0 and len(dst) == 0
        assert src.dtype == np.int64


class TestDeltaGraphView:
    def test_no_delta_serves_base_arrays(self):
        base = build_base()
        view = DeltaGraphView(base)
        indptr, indices = view.csr("view")
        base_indptr, base_indices = base.csr("view")
        assert indptr is base_indptr and indices is base_indices

    def test_duplicate_against_base_and_delta(self):
        view = DeltaGraphView(build_base())
        assert not view.add_edge(0, 3, "view")       # already in the base
        assert view.add_edge(0, 5, "view")
        assert not view.add_edge(5, 0, "view")       # reversed duplicate
        assert view.duplicates_dropped == 2
        assert view.edges_ingested == 1

    def test_multiplexity_same_pair_other_relation(self):
        view = DeltaGraphView(build_base())
        assert view.add_edge(0, 5, "view")
        assert view.add_edge(0, 5, "buy")            # distinct relation: ok
        assert view.has_edge(0, 5, "buy")

    def test_validation(self):
        view = DeltaGraphView(build_base())
        with pytest.raises(GraphError):
            view.add_edge(1, 1, "view")
        with pytest.raises(GraphError):
            view.add_edge(0, 99, "view")
        with pytest.raises(GraphError):
            view.add_edge(-1, 3, "view")
        with pytest.raises(SchemaError):
            view.add_edge(0, 3, "likes")
        with pytest.raises(SchemaError):
            view.add_node("brand")

    def test_add_node_surface(self):
        view = DeltaGraphView(build_base())
        node = view.add_node("item")
        assert node == 7 and view.num_nodes == 8
        assert view.node_type(node) == "item"
        assert node in view.nodes_of_type("item")
        assert view.degree(node) == 0
        view.add_edge(0, node, "view")
        assert view.degree(node, "view") == 1
        assert_bit_identical(view)

    def test_threshold_and_listeners(self):
        view = DeltaGraphView(build_base(), compaction_threshold=3)
        fired = []
        view.add_compaction_listener(lambda v: fired.append(v.version))
        for u, v in [(0, 5), (0, 6), (1, 4)]:
            view.add_edge(u, v, "view")
            compacted = view.maybe_compact()
        assert compacted and view.compactions == 1 and len(fired) == 1
        assert view.pending_edges == 0
        assert view.base.num_edges == 9 + 3

    def test_threshold_zero_disables_auto_compaction(self):
        view = DeltaGraphView(build_base(), compaction_threshold=0)
        for u, v in [(0, 5), (0, 6), (1, 4), (1, 6), (2, 3)]:
            view.add_edge(u, v, "view")
        assert not view.should_compact() and not view.maybe_compact()
        assert view.compactions == 0 and view.pending_edges == 5

    def test_version_clock_monotone(self):
        view = DeltaGraphView(build_base(), compaction_threshold=0)
        versions = [view.version]
        view.add_edge(0, 5, "view")
        versions.append(view.version)
        view.add_node("user")
        versions.append(view.version)
        view.add_edge(0, 5, "view")              # duplicate: no bump
        versions.append(view.version)
        view.compact()
        versions.append(view.version)
        assert versions == sorted(versions)
        assert versions[2] == versions[3]        # the duplicate
        assert versions[-1] > versions[-2]

    def test_stats_roundtrip(self):
        view = DeltaGraphView(build_base(), compaction_threshold=0)
        view.add_edge(0, 5, "view")
        view.add_node("item")
        stats = view.stats()
        assert stats["pending_edges"] == 1 and stats["pending_nodes"] == 1
        assert stats["num_nodes"] == 8 and stats["edges_ingested"] == 1


class TestC008DriftFinding:
    def test_clean_view_has_no_findings(self):
        view = DeltaGraphView(build_base())
        view.add_edge(0, 5, "view")
        view.add_node("user")
        assert delta_findings(view) == []
        verify_delta_view(view)  # must not raise

    def test_corrupted_merged_csr_is_flagged(self):
        view = DeltaGraphView(build_base(), compaction_threshold=0)
        view.add_edge(0, 5, "view")
        indptr, indices = view.csr("view")
        # Simulate a drifted cache: neighbor order silently permuted.
        view._merged_csr["view"] = (indptr, indices[::-1].copy())
        findings = delta_findings(view)
        assert [f.code for f in findings] == ["C008"]
        assert findings[0].param == "view"
        with pytest.raises(CheckError, match="C008"):
            verify_delta_view(view)
