"""Batch serving engine: bit-identical ordering, caching, and stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EmbeddingStore, Recommender
from repro.errors import EvaluationError
from repro.eval.ranking import _reference_ranked_candidates
from repro.serving import BatchServingEngine, CandidatePools, RelationEmbeddingCache
from repro.serving.engine import _stable_topk, _stable_topk_block


@pytest.fixture
def store(taobao_split):
    graph = taobao_split.train_graph
    rng = np.random.default_rng(42)
    tables = {
        relation: rng.standard_normal((graph.num_nodes, 16))
        for relation in graph.schema.relationships
    }
    # Plant duplicate rows so exact score ties actually occur.
    for table in tables.values():
        clones = rng.choice(graph.num_nodes, size=12, replace=False)
        table[clones[6:]] = table[clones[:6]]
    return EmbeddingStore(tables)


@pytest.fixture
def recommender(store, taobao_split):
    return Recommender(store, taobao_split.train_graph)


@pytest.fixture
def engine(recommender):
    return recommender.engine


def _warm_sources(graph, relation, count=12):
    return np.flatnonzero(graph.degrees(relation) > 0)[:count]


class TestOrderingEquivalence:
    """The engine must reproduce the scalar references list-for-list."""

    def test_recommend_batch_matches_reference(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        for relation in graph.schema.relationships:
            sources = _warm_sources(graph, relation)
            batched = recommender.recommend_batch(sources, relation, k=7)
            reference = recommender._reference_recommend_batch(sources, relation, k=7)
            for got, want in zip(batched, reference):
                assert [r.node for r in got] == [r.node for r in want]
                np.testing.assert_allclose(
                    [r.score for r in got], [r.score for r in want],
                    rtol=0, atol=1e-12,
                )

    def test_scalar_recommend_is_bit_identical(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        source = int(_warm_sources(graph, "page_view")[0])
        got = recommender.recommend(source, "page_view", k=9)
        want = recommender._reference_recommend(source, "page_view", k=9)
        assert got == want  # node ids AND exact float scores

    def test_similar_nodes_is_bit_identical(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        for item in graph.nodes_of_type("item")[:6].tolist():
            got = recommender.similar_nodes(item, "page_view", k=8)
            want = recommender._reference_similar_nodes(item, "page_view", k=8)
            assert got == want

    def test_rank_all_matches_reference(self, engine, recommender, taobao_split):
        graph = taobao_split.train_graph
        sources = _warm_sources(graph, "purchase", count=8)
        ranked = engine.rank_all(sources, "purchase", target_type="item")
        for source, got in zip(sources.tolist(), ranked):
            want = _reference_ranked_candidates(
                recommender.model, graph, source, "purchase", "item"
            )
            np.testing.assert_array_equal(got, want)

    def test_tie_ordering_is_stable(self, taobao_split):
        # All-equal scores: ties must resolve to ascending node id, exactly
        # like np.argsort(-scores, kind="stable").
        graph = taobao_split.train_graph
        table = np.ones((graph.num_nodes, 4))
        store = EmbeddingStore({r: table for r in graph.schema.relationships})
        recommender = Recommender(store, graph)
        sources = _warm_sources(graph, "page_view", count=5)
        batched = recommender.recommend_batch(sources, "page_view", k=6)
        reference = recommender._reference_recommend_batch(sources, "page_view", k=6)
        assert batched == reference
        for recs in batched:
            nodes = [r.node for r in recs]
            assert nodes == sorted(nodes)

    def test_exclude_known_false_matches_reference(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        sources = _warm_sources(graph, "page_view", count=6)
        batched = recommender.recommend_batch(
            sources, "page_view", k=5, exclude_known=False
        )
        reference = recommender._reference_recommend_batch(
            sources, "page_view", k=5, exclude_known=False
        )
        for got, want in zip(batched, reference):
            assert [r.node for r in got] == [r.node for r in want]

    def test_small_block_size_changes_nothing(self, store, taobao_split):
        graph = taobao_split.train_graph
        tiny = BatchServingEngine(store, graph, block_size=3)
        big = BatchServingEngine(store, graph, block_size=4096)
        sources = _warm_sources(graph, "page_view", count=11)
        a = tiny.recommend_batch(sources, "page_view", k=5)
        b = big.recommend_batch(sources, "page_view", k=5)
        assert [[r.node for r in recs] for recs in a] == [
            [r.node for r in recs] for recs in b
        ]


class TestEdgeCases:
    def test_k_larger_than_pool_returns_whole_pool(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        source = int(_warm_sources(graph, "page_view")[0])
        pool = recommender.candidates(source, "page_view")
        recs = recommender.recommend(source, "page_view", k=10 * graph.num_nodes)
        assert len(recs) == len(pool)
        assert recs == recommender._reference_recommend(
            source, "page_view", k=10 * graph.num_nodes
        )

    def test_invalid_k_raises(self, engine):
        with pytest.raises(EvaluationError):
            engine.topk_batch([0], "page_view", k=0)
        with pytest.raises(EvaluationError):
            engine.similar_topk([0], "page_view", k=-1)

    def test_cold_source_in_batch_never_crashes(self, recommender, taobao_split):
        # Regression: a cold-start node used to raise EvaluationError and
        # kill the whole batch; it now resolves its target type from the
        # relationship schema (or yields an empty list, never an exception).
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")
        cold = [u for u in users.tolist() if graph.degree(int(u), "purchase") == 0]
        if not cold:
            pytest.skip("no cold user under purchase")
        warm = _warm_sources(graph, "purchase", count=3)
        batch = warm.tolist() + cold[:2]
        lists = recommender.recommend_batch(batch, "purchase", k=4)
        assert len(lists) == len(batch)
        for recs in lists:
            assert all(graph.node_type(r.node) == "item" for r in recs)

    def test_empty_batch(self, engine):
        assert engine.recommend_batch([], "page_view", k=3) == []

    def test_rank_all_cold_source_gets_full_pool(self, engine, taobao_split):
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")
        cold = [u for u in users.tolist() if graph.degree(int(u), "purchase") == 0]
        if not cold:
            pytest.skip("no cold user under purchase")
        (ranked,) = engine.rank_all([cold[0]], "purchase")
        items = graph.nodes_of_type("item")
        assert len(ranked) == len(items)
        assert set(ranked.tolist()) == set(items.tolist())


class TestEmbeddingCache:
    def test_one_fetch_per_relation_per_batch(self, taobao_split):
        # Regression for the recommend_batch refetch bug: the old loop
        # called node_embeddings twice per source; the engine must hit the
        # model exactly once per relation, however large the batch.
        graph = taobao_split.train_graph
        rng = np.random.default_rng(0)
        inner = EmbeddingStore({
            r: rng.standard_normal((graph.num_nodes, 8))
            for r in graph.schema.relationships
        })
        calls = []

        class CountingModel:
            def node_embeddings(self, nodes, relation):
                calls.append((relation, len(nodes)))
                return inner.node_embeddings(nodes, relation)

        recommender = Recommender(CountingModel(), graph)
        sources = _warm_sources(graph, "page_view", count=20)
        recommender.recommend_batch(sources, "page_view", k=5)
        assert calls == [("page_view", graph.num_nodes)]
        recommender.recommend_batch(sources, "page_view", k=3)
        assert calls == [("page_view", graph.num_nodes)]  # cache hit, no refetch
        recommender.recommend_batch(sources[:4], "add_to_cart", k=3)
        assert calls == [
            ("page_view", graph.num_nodes), ("add_to_cart", graph.num_nodes)
        ]

    def test_lru_eviction(self, store, taobao_split):
        graph = taobao_split.train_graph
        cache = RelationEmbeddingCache(store, graph.num_nodes, capacity=2)
        relations = list(graph.schema.relationships)[:3]
        cache.table(relations[0])
        cache.table(relations[1])
        cache.table(relations[0])  # refresh 0 so 1 is the LRU entry
        cache.table(relations[2])  # evicts 1
        assert set(cache.cached_relations) == {relations[0], relations[2]}
        assert cache.misses == 3
        assert cache.hits == 1

    def test_norms_follow_table(self, store, taobao_split):
        graph = taobao_split.train_graph
        cache = RelationEmbeddingCache(store, graph.num_nodes)
        norms = cache.norms("page_view")
        np.testing.assert_array_equal(
            norms, np.linalg.norm(cache.table("page_view"), axis=1)
        )


class TestStatsAndProfiling:
    def test_counters_accumulate(self, engine, taobao_split):
        graph = taobao_split.train_graph
        sources = _warm_sources(graph, "page_view", count=7)
        engine.recommend_batch(sources, "page_view", k=4)
        assert engine.stats.requests == 1
        assert engine.stats.sources == 7
        assert engine.stats.candidates_scored > 0
        engine.recommend(int(sources[0]), "page_view", k=4)
        assert engine.stats.requests == 2
        assert engine.stats.sources == 8

    def test_latency_report_has_stages(self, engine, taobao_split):
        graph = taobao_split.train_graph
        engine.recommend_batch(_warm_sources(graph, "page_view"), "page_view", k=3)
        report = engine.latency_report()
        assert report["requests"] == 1
        stages = set(report["stages"])
        assert {"serving.pool", "serving.embeddings",
                "serving.score", "serving.topk"} <= stages


class TestCandidatePools:
    def test_type_pool_is_ascending_and_frozen(self, engine):
        pool = engine.pools.type_pool("item")
        assert np.all(np.diff(pool) > 0)
        with pytest.raises(ValueError):
            pool[0] = 1

    def test_pool_positions_roundtrip(self, engine, taobao_split):
        graph = taobao_split.train_graph
        pool = engine.pools.type_pool("user")
        positions = engine.pools.pool_positions("user")
        np.testing.assert_array_equal(positions[pool], np.arange(len(pool)))
        items = graph.nodes_of_type("item")
        assert np.all(positions[items] == -1)

    def test_exclusions_match_mask_matrix(self, engine, taobao_split):
        graph = taobao_split.train_graph
        sources = _warm_sources(graph, "page_view", count=9)
        pool, valid = engine.pools.valid_pool_matrix(sources, "page_view", "item")
        pool2, rows, cols = engine.pools.pool_exclusions(sources, "page_view", "item")
        np.testing.assert_array_equal(pool, pool2)
        dense = np.ones((len(sources), len(pool)), dtype=bool)
        dense[rows, cols] = False
        np.testing.assert_array_equal(dense, valid)

    def test_target_type_inference(self, engine, taobao_split):
        graph = taobao_split.train_graph
        warm = int(_warm_sources(graph, "purchase")[0])
        assert engine.pools.target_type_for(warm, "purchase") == "item"
        cold = [
            u for u in graph.nodes_of_type("user").tolist()
            if graph.degree(int(u), "purchase") == 0
        ]
        if cold:
            assert engine.pools.target_type_for(cold[0], "purchase") == "item"


class TestStableTopK:
    """Property tests of the vectorised extractor vs the scalar truth."""

    def test_block_matches_scalar_under_ties(self):
        rng = np.random.default_rng(7)
        for trial in range(120):
            b = int(rng.integers(1, 7))
            n = int(rng.integers(1, 30))
            k = int(rng.integers(1, 12))
            scores = rng.integers(0, 4, size=(b, n)).astype(float)
            valid = rng.random((b, n)) < rng.random()
            got = _stable_topk_block(scores.copy(), valid, k)
            premasked = _stable_topk_block(
                np.where(valid, scores, -np.inf), None, k
            )
            for j in range(b):
                ids, top_scores = _stable_topk(scores[j], valid[j], k)
                reference = np.flatnonzero(valid[j])[
                    np.argsort(-scores[j][valid[j]], kind="stable")
                ][:k]
                np.testing.assert_array_equal(ids, reference, err_msg=str(trial))
                for variant_ids, variant_scores in (got[j], premasked[j]):
                    np.testing.assert_array_equal(variant_ids, ids)
                    np.testing.assert_array_equal(variant_scores, top_scores)

    def test_empty_and_tiny_pools(self):
        scores = np.array([[3.0, 1.0, 2.0]])
        ids, top = _stable_topk(scores[0], np.zeros(3, dtype=bool), 5)
        assert len(ids) == 0 and len(top) == 0
        ids, top = _stable_topk(scores[0], np.array([True, False, True]), 5)
        np.testing.assert_array_equal(ids, [0, 2])
        np.testing.assert_array_equal(top, [3.0, 2.0])
