"""Metapath scheme enumeration and suggestion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MetapathError
from repro.graph import (
    count_schemes_by_length,
    enumerate_schemes,
    observed_type_triples,
    suggest_schemes,
)


class TestObservedTriples:
    def test_small_graph(self, small_graph):
        triples = observed_type_triples(small_graph)
        assert ("user", "view", "item") in triples
        assert ("item", "view", "user") in triples  # symmetric
        assert ("user", "buy", "item") in triples
        # No user-user edges exist.
        assert ("user", "view", "user") not in triples


class TestEnumerateSchemes:
    def test_length_one(self, small_graph):
        schemes = enumerate_schemes(small_graph, 1)
        described = {s.describe() for s in schemes}
        assert "user -view-> item" in described
        assert "item -buy-> user" in described
        assert all(len(s) == 1 for s in schemes)

    def test_length_bound_respected(self, small_graph):
        schemes = enumerate_schemes(small_graph, 3)
        assert max(len(s) for s in schemes) == 3

    def test_every_scheme_is_supported(self, taobao_dataset):
        graph = taobao_dataset.graph
        triples = observed_type_triples(graph)
        for scheme in enumerate_schemes(graph, 2):
            for i, relation in enumerate(scheme.relations):
                triple = (scheme.node_types[i], relation, scheme.node_types[i + 1])
                assert triple in triples

    def test_start_type_filter(self, small_graph):
        schemes = enumerate_schemes(small_graph, 2, start_type="item")
        assert all(s.start_type == "item" for s in schemes)

    def test_intra_only_filter(self, small_graph):
        schemes = enumerate_schemes(small_graph, 2, intra_only=True)
        assert all(s.is_intra_relationship for s in schemes)
        all_schemes = enumerate_schemes(small_graph, 2)
        assert len(all_schemes) > len(schemes)  # inter-relationship ones exist

    def test_symmetric_only_filter(self, small_graph):
        schemes = enumerate_schemes(small_graph, 2, symmetric_only=True)
        assert schemes
        assert all(s.is_symmetric for s in schemes)

    def test_table2_scheme_is_found(self, taobao_dataset):
        """The paper's U-I-U scheme must appear among the enumerated ones."""
        schemes = enumerate_schemes(
            taobao_dataset.graph, 2, start_type="user",
            intra_only=True, symmetric_only=True,
        )
        described = {s.describe() for s in schemes}
        assert "user -page_view-> item -page_view-> user" in described

    def test_invalid_length_rejected(self, small_graph):
        with pytest.raises(MetapathError):
            enumerate_schemes(small_graph, 0)


class TestBlowupCurve:
    def test_counts_grow_with_length(self, taobao_dataset):
        """The combinatorial blowup the paper's Sect. I points at."""
        counts = count_schemes_by_length(taobao_dataset.graph, 3)
        assert counts[2] > counts[1]
        assert counts[3] > counts[2]

    def test_counts_sum_matches_enumeration(self, small_graph):
        counts = count_schemes_by_length(small_graph, 2)
        assert sum(counts.values()) == len(enumerate_schemes(small_graph, 2))


class TestSuggestSchemes:
    def test_suggestions_are_relation_specific(self, taobao_dataset):
        suggestions = suggest_schemes(
            taobao_dataset.graph, "page_view", max_length=2, rng=0
        )
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.scheme.relations[0] == "page_view"
            assert 0.0 <= suggestion.coverage <= 1.0

    def test_sorted_by_coverage(self, taobao_dataset):
        suggestions = suggest_schemes(
            taobao_dataset.graph, "page_view", max_length=2, rng=0
        )
        coverages = [s.coverage for s in suggestions]
        assert coverages == sorted(coverages, reverse=True)

    def test_dense_relation_has_high_coverage(self, taobao_dataset):
        suggestions = suggest_schemes(
            taobao_dataset.graph, "page_view", max_length=2, rng=0
        )
        assert suggestions[0].coverage > 0.5
