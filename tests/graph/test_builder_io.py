"""GraphBuilder validation and graph serialisation round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, SchemaError
from repro.graph import (
    GraphBuilder,
    GraphSchema,
    compute_statistics,
    degree_clusters,
    graph_from_edge_arrays,
    load_graph,
    save_graph,
)


class TestBuilder:
    def test_add_node_returns_sequential_ids(self, small_schema):
        builder = GraphBuilder(small_schema)
        assert builder.add_node("user") == 0
        assert builder.add_node("item") == 1

    def test_add_nodes_bulk(self, small_schema):
        builder = GraphBuilder(small_schema)
        ids = builder.add_nodes("user", 5)
        np.testing.assert_array_equal(ids, np.arange(5))
        assert builder.num_nodes == 5

    def test_negative_count_rejected(self, small_schema):
        with pytest.raises(GraphError):
            GraphBuilder(small_schema).add_nodes("user", -1)

    def test_unknown_type_rejected(self, small_schema):
        with pytest.raises(SchemaError):
            GraphBuilder(small_schema).add_node("video")

    def test_edge_to_missing_node_rejected(self, small_schema):
        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        with pytest.raises(GraphError):
            builder.add_edge(0, 9, "view")

    def test_self_loop_rejected(self, small_schema):
        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        with pytest.raises(GraphError):
            builder.add_edge(1, 1, "view")

    def test_unknown_relation_rejected(self, small_schema):
        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        with pytest.raises(SchemaError):
            builder.add_edge(0, 1, "like")

    def test_duplicate_edges_deduplicated(self, small_schema):
        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 1)
        builder.add_edge(0, 2, "view")
        builder.add_edge(2, 0, "view")  # same undirected edge
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        assert graph.num_edges_in("view") == 1

    def test_empty_build_rejected(self, small_schema):
        with pytest.raises(GraphError):
            GraphBuilder(small_schema).build()

    def test_graph_from_edge_arrays(self, small_schema):
        graph = graph_from_edge_arrays(
            small_schema, [0, 0, 1], {"view": ([0], [2]), "buy": ([1], [2])}
        )
        assert graph.num_nodes == 3
        assert graph.num_edges == 2


class TestIO:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(small_graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == small_graph.num_nodes
        assert loaded.schema.node_types == small_graph.schema.node_types
        assert loaded.schema.relationships == small_graph.schema.relationships
        for relation in small_graph.schema.relationships:
            assert loaded.num_edges_in(relation) == small_graph.num_edges_in(relation)
            for node in range(small_graph.num_nodes):
                np.testing.assert_array_equal(
                    np.sort(loaded.neighbors(node, relation)),
                    np.sort(small_graph.neighbors(node, relation)),
                )

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\tview\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_malformed_line_rejected(self, small_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(small_graph, path)
        with path.open("a") as handle:
            handle.write("not-an-edge\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_unknown_relation_in_file_rejected(self, small_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_graph(small_graph, path)
        with path.open("a") as handle:
            handle.write("0\t1\tlike\n")
        with pytest.raises(GraphError):
            load_graph(path)


class TestStatistics:
    def test_table2_row(self, small_graph):
        stats = compute_statistics(small_graph)
        assert stats.as_row() == (7, 9, 2, 2)
        assert stats.nodes_per_type == {"user": 3, "item": 4}
        assert stats.edges_per_relationship == {"view": 6, "buy": 3}
        assert stats.max_degree >= 1

    def test_degree_clusters_partition_active_nodes(self, small_graph):
        clusters = degree_clusters(small_graph, num_clusters=3)
        all_nodes = np.concatenate([nodes for _, _, nodes in clusters])
        active = np.flatnonzero(small_graph.degrees() >= 1)
        assert sorted(all_nodes.tolist()) == sorted(active.tolist())

    def test_degree_clusters_respect_bounds(self, small_graph):
        degrees = small_graph.degrees()
        for low, high, nodes in degree_clusters(small_graph, num_clusters=2):
            for node in nodes:
                assert low <= degrees[node] <= high
