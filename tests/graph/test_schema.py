"""GraphSchema and MetapathScheme semantics (paper Defs. 1-4)."""

from __future__ import annotations

import pytest

from repro.errors import MetapathError, SchemaError
from repro.graph import GraphSchema, MetapathScheme, intra_relationship_schemes


class TestGraphSchema:
    def test_basic_properties(self):
        schema = GraphSchema(["user", "item"], ["view", "buy"])
        assert schema.num_node_types == 2
        assert schema.num_relationships == 2
        assert schema.is_multiplex
        assert schema.is_heterogeneous

    def test_single_relation_not_multiplex(self):
        schema = GraphSchema(["movie", "actor"], ["credit"])
        assert not schema.is_multiplex
        assert schema.is_heterogeneous  # |O| + |R| = 3 > 2

    def test_homogeneous_detection(self):
        schema = GraphSchema(["node"], ["edge"])
        assert not schema.is_heterogeneous

    @pytest.mark.parametrize(
        "types,rels,expected",
        [
            (["a"], ["r1", "r2"], "G1"),
            (["a", "b"], ["r1"], "G2"),
            (["a", "b"], ["r1", "r2"], "G3"),
            (["a"], ["r1"], "homogeneous"),
        ],
    )
    def test_categorisation(self, types, rels, expected):
        assert GraphSchema(types, rels).category() == expected

    def test_duplicate_node_types_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema(["user", "user"], ["r"])

    def test_duplicate_relationships_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema(["user"], ["r", "r"])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema([], ["r"])
        with pytest.raises(SchemaError):
            GraphSchema(["user"], [])

    def test_index_lookups(self):
        schema = GraphSchema(["user", "item"], ["view"])
        assert schema.node_type_index("item") == 1
        assert schema.relationship_index("view") == 0
        with pytest.raises(SchemaError):
            schema.node_type_index("video")
        with pytest.raises(SchemaError):
            schema.relationship_index("like")


class TestMetapathScheme:
    def test_intra_relationship(self):
        scheme = MetapathScheme.intra(["user", "item", "user"], "view")
        assert scheme.is_intra_relationship
        assert len(scheme) == 2
        assert scheme.start_type == "user"
        assert scheme.end_type == "user"
        assert scheme.is_symmetric

    def test_inter_relationship(self):
        scheme = MetapathScheme(["user", "item", "user"], ["view", "buy"])
        assert not scheme.is_intra_relationship

    def test_asymmetric(self):
        scheme = MetapathScheme.intra(["video", "user", "author"], "like")
        assert not scheme.is_symmetric

    def test_parse_table2_notation(self):
        scheme = MetapathScheme.parse("U-I-U", "view", {"U": "user", "I": "item"})
        assert scheme.node_types == ("user", "item", "user")
        assert scheme.relations == ("view", "view")

    def test_parse_unknown_abbreviation(self):
        with pytest.raises(MetapathError):
            MetapathScheme.parse("U-X-U", "view", {"U": "user"})

    def test_too_short_rejected(self):
        with pytest.raises(MetapathError):
            MetapathScheme(["user"], [])

    def test_relation_count_mismatch_rejected(self):
        with pytest.raises(MetapathError):
            MetapathScheme(["user", "item"], ["view", "buy"])

    def test_validate_against_schema(self):
        schema = GraphSchema(["user", "item"], ["view"])
        MetapathScheme.intra(["user", "item", "user"], "view").validate(schema)
        with pytest.raises(MetapathError):
            MetapathScheme.intra(["user", "video", "user"], "view").validate(schema)
        with pytest.raises(MetapathError):
            MetapathScheme.intra(["user", "item", "user"], "like").validate(schema)

    def test_describe(self):
        scheme = MetapathScheme.intra(["user", "item"], "buy")
        assert scheme.describe() == "user -buy-> item"


class TestIntraRelationshipSchemes:
    def test_expands_per_relationship(self):
        result = intra_relationship_schemes(
            ["U-I-U", "I-U-I"], ["view", "buy"], {"U": "user", "I": "item"}
        )
        assert set(result) == {"view", "buy"}
        assert len(result["view"]) == 2
        assert all(s.is_intra_relationship for s in result["view"])
        assert result["buy"][0].relations == ("buy", "buy")
