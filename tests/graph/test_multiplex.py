"""MultiplexHeteroGraph storage and adjacency semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, SchemaError
from repro.graph import GraphBuilder, GraphSchema, MultiplexHeteroGraph


class TestConstruction:
    def test_counts(self, small_graph):
        assert small_graph.num_nodes == 7
        assert small_graph.num_edges == 9
        assert small_graph.num_edges_in("view") == 6
        assert small_graph.num_edges_in("buy") == 3

    def test_empty_relationship_is_fine(self, small_schema):
        builder = GraphBuilder(small_schema)
        builder.add_nodes("user", 2)
        builder.add_nodes("item", 1)
        builder.add_edge(0, 2, "view")
        graph = builder.build()
        assert graph.num_edges_in("buy") == 0
        assert len(graph.neighbors(0, "buy")) == 0

    def test_rejects_out_of_range_edges(self, small_schema):
        with pytest.raises(GraphError):
            MultiplexHeteroGraph(
                small_schema, np.asarray([0, 1]),
                {"view": (np.asarray([0]), np.asarray([5]))},
            )

    def test_rejects_self_loops(self, small_schema):
        with pytest.raises(GraphError):
            MultiplexHeteroGraph(
                small_schema, np.asarray([0, 1]),
                {"view": (np.asarray([1]), np.asarray([1]))},
            )

    def test_rejects_unknown_relationship(self, small_schema):
        with pytest.raises(SchemaError):
            MultiplexHeteroGraph(
                small_schema, np.asarray([0, 1]),
                {"like": (np.asarray([0]), np.asarray([1]))},
            )

    def test_rejects_empty_graph(self, small_schema):
        with pytest.raises(GraphError):
            MultiplexHeteroGraph(small_schema, np.asarray([], dtype=np.int64), {})


class TestAdjacency:
    def test_neighbors_symmetric(self, small_graph):
        assert 3 in small_graph.neighbors(0, "view")
        assert 0 in small_graph.neighbors(3, "view")

    def test_neighbors_relationship_specific(self, small_graph):
        assert 4 in small_graph.neighbors(0, "view")
        assert 4 not in small_graph.neighbors(0, "buy")

    def test_degree(self, small_graph):
        assert small_graph.degree(0, "view") == 2
        assert small_graph.degree(0, "buy") == 1
        assert small_graph.degree(0) == 3

    def test_degrees_vector(self, small_graph):
        degrees = small_graph.degrees("view")
        assert degrees[0] == 2
        assert degrees.sum() == 2 * small_graph.num_edges_in("view")

    def test_active_relationships(self, small_graph):
        assert small_graph.active_relationships(0) == ["view", "buy"]
        assert small_graph.active_relationships(6) == ["view"]

    def test_has_edge_order_insensitive(self, small_graph):
        assert small_graph.has_edge(0, 3, "view")
        assert small_graph.has_edge(3, 0, "view")
        assert not small_graph.has_edge(0, 6, "view")
        assert not small_graph.has_edge(0, 0, "view")

    def test_multiplexity(self, small_graph):
        """The same pair can connect under several relationships."""
        assert small_graph.has_edge(0, 3, "view")
        assert small_graph.has_edge(0, 3, "buy")


class TestTypes:
    def test_node_type(self, small_graph):
        assert small_graph.node_type(0) == "user"
        assert small_graph.node_type(3) == "item"

    def test_nodes_of_type(self, small_graph):
        np.testing.assert_array_equal(small_graph.nodes_of_type("user"), [0, 1, 2])
        np.testing.assert_array_equal(small_graph.nodes_of_type("item"), [3, 4, 5, 6])

    def test_nodes_of_unknown_type(self, small_graph):
        with pytest.raises(SchemaError):
            small_graph.nodes_of_type("video")

    def test_type_codes_read_only(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.node_type_codes[0] = 1


class TestDerivedGraphs:
    def test_relationship_subgraph(self, small_graph):
        sub = small_graph.relationship_subgraph(["buy"])
        assert sub.num_nodes == small_graph.num_nodes
        assert sub.schema.relationships == ("buy",)
        assert sub.num_edges == 3

    def test_relationship_subgraph_preserves_node_ids(self, small_graph):
        sub = small_graph.relationship_subgraph(["view"])
        assert sub.node_type(3) == small_graph.node_type(3)

    def test_relationship_subgraph_empty_rejected(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.relationship_subgraph([])

    def test_merged_homogeneous_view(self, small_graph):
        src, dst = small_graph.merged_homogeneous_view()
        assert len(src) == small_graph.num_edges

    def test_merged_relation_graph(self, small_graph):
        merged = small_graph.merged_relation_graph()
        assert merged.schema.relationships == ("all",)
        assert merged.num_edges == small_graph.num_edges
        assert merged.schema.node_types == small_graph.schema.node_types
