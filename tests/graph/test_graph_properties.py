"""Property-based tests of the graph substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import GraphBuilder, GraphSchema


@st.composite
def random_multiplex_graph(draw):
    """A random small multiplex heterogeneous graph plus its raw edge list."""
    num_types = draw(st.integers(1, 3))
    num_relations = draw(st.integers(1, 3))
    schema = GraphSchema(
        [f"t{i}" for i in range(num_types)],
        [f"r{i}" for i in range(num_relations)],
    )
    builder = GraphBuilder(schema)
    counts = [draw(st.integers(2, 6)) for _ in range(num_types)]
    for node_type, count in zip(schema.node_types, counts):
        builder.add_nodes(node_type, count)
    total = sum(counts)
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, total - 1),
                st.integers(0, total - 1),
                st.integers(0, num_relations - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    added = []
    for u, v, r in edges:
        if u != v:
            relation = schema.relationships[r]
            builder.add_edge(u, v, relation)
            added.append((min(u, v), max(u, v), relation))
    return builder.build(), set(added)


@settings(max_examples=50, deadline=None)
@given(random_multiplex_graph())
def test_adjacency_is_symmetric(data):
    graph, _ = data
    for relation in graph.schema.relationships:
        for node in range(graph.num_nodes):
            for neighbor in graph.neighbors(node, relation):
                assert node in graph.neighbors(int(neighbor), relation)


@settings(max_examples=50, deadline=None)
@given(random_multiplex_graph())
def test_has_edge_agrees_with_edge_list(data):
    graph, added = data
    for u, v, relation in added:
        assert graph.has_edge(u, v, relation)
        assert graph.has_edge(v, u, relation)


@settings(max_examples=50, deadline=None)
@given(random_multiplex_graph())
def test_degree_sums_twice_edge_count(data):
    graph, _ = data
    for relation in graph.schema.relationships:
        degrees = graph.degrees(relation)
        assert degrees.sum() == 2 * graph.num_edges_in(relation)


@settings(max_examples=50, deadline=None)
@given(random_multiplex_graph())
def test_edge_count_matches_deduplicated_list(data):
    graph, added = data
    per_relation = {}
    for u, v, relation in added:
        per_relation.setdefault(relation, set()).add((u, v))
    for relation, pairs in per_relation.items():
        assert graph.num_edges_in(relation) == len(pairs)


@settings(max_examples=50, deadline=None)
@given(random_multiplex_graph())
def test_nodes_of_type_partition_the_node_set(data):
    graph, _ = data
    seen = []
    for node_type in graph.schema.node_types:
        seen.extend(graph.nodes_of_type(node_type).tolist())
    assert sorted(seen) == list(range(graph.num_nodes))


@settings(max_examples=30, deadline=None)
@given(data=random_multiplex_graph())
def test_io_roundtrip_preserves_structure(tmp_path_factory, data):
    from repro.graph import load_graph, save_graph

    graph, _ = data
    path = tmp_path_factory.mktemp("graphs") / "g.tsv"
    save_graph(graph, path)
    loaded = load_graph(path)
    assert loaded.num_nodes == graph.num_nodes
    for relation in graph.schema.relationships:
        assert loaded.num_edges_in(relation) == graph.num_edges_in(relation)
        for node in range(graph.num_nodes):
            np.testing.assert_array_equal(
                np.sort(loaded.neighbors(node, relation)),
                np.sort(graph.neighbors(node, relation)),
            )


@settings(max_examples=30, deadline=None)
@given(random_multiplex_graph())
def test_relationship_subgraph_preserves_edges(data):
    graph, _ = data
    relation = graph.schema.relationships[0]
    sub = graph.relationship_subgraph([relation])
    assert sub.num_edges_in(relation) == graph.num_edges_in(relation)
    for node in range(graph.num_nodes):
        np.testing.assert_array_equal(
            np.sort(sub.neighbors(node, relation)),
            np.sort(graph.neighbors(node, relation)),
        )


@settings(max_examples=30, deadline=None)
@given(random_multiplex_graph())
def test_merged_view_edge_count(data):
    graph, _ = data
    src, dst = graph.merged_homogeneous_view()
    assert len(src) == graph.num_edges
