"""CLI table/figure regeneration commands (micro profile via monkeypatch)."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.cli as cli
from repro.cli import main
from repro.core import HybridGNNConfig, TrainerConfig
from repro.experiments import ExperimentProfile


@pytest.fixture
def micro_cli(monkeypatch):
    micro = ExperimentProfile(
        name="micro", scale=0.15, seeds=1,
        trainer=TrainerConfig(epochs=1, batch_size=1024, num_walks=1,
                              walk_length=5, window=2, patience=1,
                              max_batches_per_epoch=2),
        hybrid=HybridGNNConfig(base_dim=8, edge_dim=4,
                               metapath_fanouts=(2, 2, 2, 2, 2, 2),
                               exploration_fanout=2, exploration_depth=1,
                               eval_samples=1),
        shallow_epochs=1, shallow_walks=1, fullbatch_epochs=2, sage_epochs=1,
        ranking_max_sources=4,
    )
    monkeypatch.setattr(cli, "get_profile", lambda name="": micro)
    return micro


def test_cli_table5(capsys, micro_cli):
    assert main(["table", "5"]) == 0
    out = capsys.readouterr().out
    assert "L=1" in out and "L=3" in out


def test_cli_table6(capsys, micro_cli):
    assert main(["table", "6"]) == 0
    out = capsys.readouterr().out
    assert "Subgraph" in out and "HybridGNN" in out


def test_cli_figure6(capsys, micro_cli):
    assert main(["figure", "6"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
