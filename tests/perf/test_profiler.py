"""Timer / StageProfiler and the trainer's sampling-vs-SGD instrumentation."""

from __future__ import annotations

import time

from repro.core import HybridGNN, SkipGramTrainer
from repro.perf import StageProfiler, Timer


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_reentry_restarts(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            pass
        assert timer.elapsed < first


class TestStageProfiler:
    def test_accumulates_across_activations(self):
        profiler = StageProfiler()
        for _ in range(3):
            with profiler.stage("work"):
                time.sleep(0.002)
        report = profiler.report()
        assert report["work"]["calls"] == 3
        assert report["work"]["seconds"] >= 0.005

    def test_fractions_sum_to_one(self):
        profiler = StageProfiler()
        with profiler.stage("a"):
            time.sleep(0.002)
        with profiler.stage("b"):
            time.sleep(0.002)
        report = profiler.report()
        assert sum(entry["fraction"] for entry in report.values()) == 1.0
        assert profiler.total() == sum(entry["seconds"] for entry in report.values())

    def test_unknown_stage_reads_zero(self):
        assert StageProfiler().seconds("never") == 0.0

    def test_percentiles_in_report(self):
        profiler = StageProfiler()
        for _ in range(20):
            with profiler.stage("serve"):
                time.sleep(0.001)
        entry = profiler.report()["serve"]
        assert 0.0 < entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
        assert profiler.percentiles("serve")["p50_ms"] == entry["p50_ms"]

    def test_percentiles_of_unknown_stage_read_zero(self):
        assert StageProfiler().percentiles("never") == {
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_reset_clears(self):
        profiler = StageProfiler()
        with profiler.stage("a"):
            pass
        profiler.reset()
        assert profiler.report() == {}
        assert profiler.percentiles("a") == {
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_summary_mentions_stages(self):
        profiler = StageProfiler()
        with profiler.stage("sampling"):
            time.sleep(0.001)
        assert "sampling" in profiler.summary()


class TestTrainerInstrumentation:
    def test_fit_reports_sampling_vs_sgd_split(
        self, taobao_dataset, taobao_split, tiny_hybrid_config, tiny_trainer_config
    ):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            tiny_trainer_config, rng=1,
        )
        trainer.fit()
        report = trainer.profiler.report()
        assert report["sampling.walks"]["seconds"] > 0
        assert report["sampling.pairs"]["seconds"] > 0
        assert report["train.sgd"]["seconds"] > 0
        assert report["train.sgd"]["calls"] >= 1

    def test_default_config_not_shared_between_trainers(
        self, taobao_dataset, taobao_split, tiny_hybrid_config
    ):
        def build():
            model = HybridGNN(
                taobao_split.train_graph, taobao_dataset.all_schemes(),
                tiny_hybrid_config, rng=0,
            )
            return SkipGramTrainer(
                model, taobao_dataset.all_schemes(), taobao_split, rng=1
            )

        first, second = build(), build()
        assert first.config is not second.config
