"""Tests for the runtime allocation-budget sanitizer.

Covers the contract in :mod:`repro.perf.allocations`: off by default
(no listener installed, zero stats recorded), correct per-stage and
nested attribution of temporary peaks, budget checking semantics
(unbudgeted stages ignored, violations sorted and quantified), state
restoration on context exit, and bit-identical numerics with the
tracker off vs on.  The heavyweight canonical-workload gates live in
``repro verify --suite alloc`` (:mod:`repro.verify.alloc_oracles`).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.perf import (
    AllocationTracker,
    StageProfiler,
    allocation_tracker,
    allocation_tracking_enabled,
    check_budgets,
    default_budget_path,
    load_budgets,
)
from repro.perf import profiler as profiler_mod

MB = 1_000_000


@pytest.fixture
def profiler():
    return StageProfiler()


class TestOffByDefault:
    def test_no_listener_and_no_tracking_outside_context(self, profiler):
        assert profiler_mod.stage_listener() is None
        assert not allocation_tracking_enabled()
        with profiler.stage("plain"):
            np.zeros(MB // 8)
        # Timing still recorded; nothing was tracked anywhere.
        assert profiler.seconds("plain") >= 0.0

    def test_stages_outside_context_record_nothing(self, profiler):
        with allocation_tracker() as tracker:
            pass
        with profiler.stage("after"):
            np.zeros(MB // 8)
        assert "after" not in tracker.report()

    def test_context_restores_listener_state_and_tracemalloc(self, profiler):
        was_tracing = tracemalloc.is_tracing()
        with allocation_tracker():
            assert allocation_tracking_enabled()
            assert tracemalloc.is_tracing()
        assert not allocation_tracking_enabled()
        assert profiler_mod.stage_listener() is None
        assert tracemalloc.is_tracing() == was_tracing


class TestAttribution:
    def test_peak_and_calls_recorded(self, profiler):
        with allocation_tracker() as tracker:
            for _ in range(3):
                with profiler.stage("hog"):
                    scratch = np.zeros(MB)  # 8 MB temporary
                    del scratch
        entry = tracker.stats()["hog"]
        assert entry.calls == 3
        assert 8 * MB <= entry.peak_bytes < 9 * MB
        # The temporary was freed: nothing retained past stage exit.
        assert entry.total_net_bytes < MB

    def test_retained_output_counts_as_net(self, profiler):
        keep = []
        with allocation_tracker() as tracker:
            with profiler.stage("producer"):
                keep.append(np.zeros(MB))
        entry = tracker.stats()["producer"]
        assert entry.total_net_bytes >= 8 * MB
        assert entry.peak_bytes >= 8 * MB

    def test_nested_stages_attribute_to_both_frames(self, profiler):
        with allocation_tracker() as tracker:
            with profiler.stage("outer"):
                a = np.zeros(MB)  # 8 MB, alive across the inner stage
                with profiler.stage("inner"):
                    b = np.zeros(MB // 2)  # 4 MB temporary
                    del b
                del a
        report = tracker.report()
        # Inner sees only its own 4 MB (outer's 8 MB existed at entry).
        assert 4 * MB <= report["inner"]["peak_bytes"] < 5 * MB
        # Outer's peak includes its own 8 MB plus the inner child's 4 MB.
        assert report["outer"]["peak_bytes"] >= 12 * MB

    def test_mismatched_exit_is_dropped(self):
        tracker = AllocationTracker()
        with allocation_tracker(tracker):
            tracker.stage_exit("never-entered")
        assert tracker.stats() == {}

    def test_reset_clears_stats(self, profiler):
        with allocation_tracker() as tracker:
            with profiler.stage("hog"):
                np.zeros(MB)
        assert tracker.stats()
        tracker.reset()
        assert tracker.stats() == {}


class TestBudgets:
    def _stats(self, profiler):
        with allocation_tracker() as tracker:
            with profiler.stage("hog"):
                scratch = np.zeros(MB)
                del scratch
            with profiler.stage("lean"):
                small = np.zeros(100)
                del small
        return tracker.stats()

    def test_within_budget_passes(self, profiler):
        stats = self._stats(profiler)
        assert check_budgets(stats, {"hog": 64 * MB, "lean": MB}) == []

    def test_violation_reported_with_ratio(self, profiler):
        stats = self._stats(profiler)
        violations = check_budgets(stats, {"hog": MB, "lean": MB})
        assert [v.stage for v in violations] == ["hog"]
        v = violations[0]
        assert v.peak_bytes >= 8 * MB
        assert v.budget_bytes == MB
        assert v.ratio > 8.0
        assert v.calls == 1
        assert v.to_dict()["stage"] == "hog"

    def test_unbudgeted_and_unmeasured_stages_ignored(self, profiler):
        stats = self._stats(profiler)
        # 'hog' carries no budget: not checked. 'ghost' was never
        # measured: coverage is the alloc oracle suite's concern.
        assert check_budgets(stats, {"lean": MB, "ghost": 1}) == []

    def test_committed_budget_file_loads(self):
        path = default_budget_path()
        assert path.is_file(), "benchmarks/alloc_budgets.json must be committed"
        budgets = load_budgets()
        for stage in ("serving.score", "serving.topk", "sampling.walks",
                      "train.batching", "train.sgd"):
            assert stage in budgets
            assert budgets[stage] > 0


class TestBitIdentity:
    @staticmethod
    def _workload():
        """A seeded numeric kernel run under profiler stages."""
        rng = np.random.default_rng(1234)
        profiler = StageProfiler()
        with profiler.stage("gen"):
            a = rng.standard_normal((64, 64))
            b = rng.standard_normal((64, 64))
        with profiler.stage("mm"):
            c = a @ b
        with profiler.stage("reduce"):
            scores = np.sort(c.ravel())[-10:]
        return scores

    def test_tracker_does_not_perturb_numerics(self):
        baseline = self._workload()
        with allocation_tracker():
            tracked = self._workload()
        np.testing.assert_array_equal(baseline, tracked)
