"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def fast_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "smoke")


class TestDatasets:
    def test_lists_all_alikes(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        for name in ("amazon", "youtube", "imdb", "taobao", "kuaishou"):
            assert name in out
        assert "|R|" in out


class TestSchemes:
    def test_suggests_schemes(self, capsys):
        code = main([
            "schemes", "--dataset", "taobao", "--scale", "0.15",
            "--relation", "page_view",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "page_view" in out
        assert "Coverage" in out

    def test_default_relation(self, capsys):
        assert main(["schemes", "--dataset", "amazon", "--scale", "0.15"]) == 0
        assert "common_bought" in capsys.readouterr().out


class TestTrainEvaluateRecommend:
    def test_full_cli_workflow(self, capsys, tmp_path, monkeypatch):
        """train -> evaluate -> recommend through saved embeddings."""
        embeddings = tmp_path / "emb.npz"
        checkpoint = tmp_path / "ckpt.npz"
        code = main([
            "train", "--dataset", "amazon", "--scale", "0.15",
            "--model", "DeepWalk", "--seed", "1",
            "--save-embeddings", str(embeddings),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ROC-AUC" in out and "embeddings written" in out
        assert embeddings.exists()

        code = main([
            "evaluate", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(embeddings),
        ])
        assert code == 0
        assert "Stored embeddings" in capsys.readouterr().out

        code = main([
            "recommend", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(embeddings),
            "--node", "0", "--relation", "common_bought", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out

    def test_train_hybrid_with_checkpoint(self, capsys, tmp_path, monkeypatch):
        """HybridGNN path exercises the checkpoint branch (micro budget)."""
        from dataclasses import replace

        import repro.cli as cli
        import repro.experiments.profiles as profiles

        checkpoint = tmp_path / "ckpt.npz"
        micro = replace(
            profiles.SMOKE,
            trainer=replace(profiles.SMOKE.trainer, epochs=1,
                            max_batches_per_epoch=2),
        )
        # The cli module imported get_profile directly; patch its reference.
        monkeypatch.setattr(cli, "get_profile", lambda name="": micro)
        code = main([
            "train", "--dataset", "amazon", "--scale", "0.15",
            "--model", "HybridGNN", "--seed", "1",
            "--save-checkpoint", str(checkpoint),
        ])
        assert code == 0
        assert checkpoint.exists()


class TestServingCLI:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        """One DeepWalk training run shared by the serving CLI tests.

        Saved through a suffix-less path on purpose: the CLI must report
        and round-trip the normalised ``.npz`` location.
        """
        tmp = tmp_path_factory.mktemp("serving_cli")
        requested = tmp / "emb"  # no .npz suffix
        code = main([
            "train", "--dataset", "amazon", "--scale", "0.15",
            "--model", "DeepWalk", "--seed", "1",
            "--save-embeddings", str(requested),
        ])
        assert code == 0
        assert (tmp / "emb.npz").exists()
        return requested

    def test_suffixless_export_path_reported_and_loadable(self, exported, capsys):
        # Regression: the CLI used to print the requested path while numpy
        # wrote "<path>.npz"; evaluate with the suffix-less spelling works.
        code = main([
            "evaluate", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(exported),
        ])
        assert code == 0
        assert "Stored embeddings" in capsys.readouterr().out

    def test_batch_recommend(self, exported, capsys):
        code = main([
            "recommend", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(exported),
            "--nodes", "0,1,2", "--relation", "common_bought", "--k", "3",
            "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "for 3 nodes (batch)" in out
        assert "Source" in out
        assert "serving." in out  # --stats prints stage timings

    def test_recommend_requires_a_node_argument(self, exported, capsys):
        code = main([
            "recommend", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(exported),
            "--relation", "common_bought",
        ])
        assert code == 2
        assert "--nodes" in capsys.readouterr().err


class TestArgumentValidation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "netflix"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "PinSage"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])
