"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def fast_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "smoke")


class TestDatasets:
    def test_lists_all_alikes(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        out = capsys.readouterr().out
        for name in ("amazon", "youtube", "imdb", "taobao", "kuaishou"):
            assert name in out
        assert "|R|" in out


class TestSchemes:
    def test_suggests_schemes(self, capsys):
        code = main([
            "schemes", "--dataset", "taobao", "--scale", "0.15",
            "--relation", "page_view",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "page_view" in out
        assert "Coverage" in out

    def test_default_relation(self, capsys):
        assert main(["schemes", "--dataset", "amazon", "--scale", "0.15"]) == 0
        assert "common_bought" in capsys.readouterr().out


class TestTrainEvaluateRecommend:
    def test_full_cli_workflow(self, capsys, tmp_path, monkeypatch):
        """train -> evaluate -> recommend through saved embeddings."""
        embeddings = tmp_path / "emb.npz"
        checkpoint = tmp_path / "ckpt.npz"
        code = main([
            "train", "--dataset", "amazon", "--scale", "0.15",
            "--model", "DeepWalk", "--seed", "1",
            "--save-embeddings", str(embeddings),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ROC-AUC" in out and "embeddings written" in out
        assert embeddings.exists()

        code = main([
            "evaluate", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(embeddings),
        ])
        assert code == 0
        assert "Stored embeddings" in capsys.readouterr().out

        code = main([
            "recommend", "--dataset", "amazon", "--scale", "0.15",
            "--seed", "1", "--embeddings", str(embeddings),
            "--node", "0", "--relation", "common_bought", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out

    def test_train_hybrid_with_checkpoint(self, capsys, tmp_path, monkeypatch):
        """HybridGNN path exercises the checkpoint branch (micro budget)."""
        from dataclasses import replace

        import repro.cli as cli
        import repro.experiments.profiles as profiles

        checkpoint = tmp_path / "ckpt.npz"
        micro = replace(
            profiles.SMOKE,
            trainer=replace(profiles.SMOKE.trainer, epochs=1,
                            max_batches_per_epoch=2),
        )
        # The cli module imported get_profile directly; patch its reference.
        monkeypatch.setattr(cli, "get_profile", lambda name="": micro)
        code = main([
            "train", "--dataset", "amazon", "--scale", "0.15",
            "--model", "HybridGNN", "--seed", "1",
            "--save-checkpoint", str(checkpoint),
        ])
        assert code == 0
        assert checkpoint.exists()


class TestArgumentValidation:
    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--dataset", "netflix"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "PinSage"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "9"])
