"""Config validation for HybridGNN and its trainer."""

from __future__ import annotations

import pytest

from repro.core import HybridGNNConfig, TrainerConfig
from repro.errors import TrainingError


class TestHybridGNNConfig:
    def test_defaults_valid(self):
        config = HybridGNNConfig()
        assert config.aggregator == "mean"
        assert config.use_hybrid_flows and config.use_randomized_exploration

    def test_frozen(self):
        with pytest.raises(Exception):
            HybridGNNConfig().base_dim = 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_dim": 0},
            {"edge_dim": -1},
            {"exploration_depth": 0},
            {"exploration_fanout": 0},
            {"num_negatives": 0},
            {"metapath_fanouts": ()},
            {"metapath_fanouts": (3, 0)},
            {"aggregator": "median"},
            {"random_flow_depth": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(TrainingError):
            HybridGNNConfig(**kwargs)

    def test_cannot_disable_both_flow_sources(self):
        with pytest.raises(TrainingError):
            HybridGNNConfig(
                use_hybrid_flows=False, use_randomized_exploration=False
            )

    def test_each_ablation_variant_is_valid(self):
        from repro.experiments import ABLATION_VARIANTS

        for overrides in ABLATION_VARIANTS.values():
            HybridGNNConfig(**overrides)  # must not raise


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
            {"num_walks": 0},
            {"walk_length": 1},
            {"window": 0},
            {"patience": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(TrainingError):
            TrainerConfig(**kwargs)
