"""Extra coverage for the hybrid aggregation flows: gradients & determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hybrid_aggregation import ExplorationFlow, MetapathFlow
from repro.nn import Embedding


class TestFlowGradients:
    def test_metapath_flow_trains_feature_table(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = MetapathFlow(graph, scheme, features, 6, (3, 2), rng=0)
        users = graph.nodes_of_type("user")[:8]
        flow(users).sum().backward()
        assert features.weight.grad is not None
        touched = np.flatnonzero(np.abs(features.weight.grad).sum(axis=1))
        # The batch nodes themselves must receive gradient (self features
        # always participate via the aggregator's self path).
        assert set(users.tolist()) <= set(touched.tolist())

    def test_exploration_flow_trains_aggregators(self, taobao_dataset):
        graph = taobao_dataset.graph
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = ExplorationFlow(graph, features, 6, depth=2, fanout=3, rng=0)
        flow(np.arange(8)).sum().backward()
        for aggregator in flow.aggregators:
            assert aggregator.combine.weight.grad is not None


class TestFlowDeterminism:
    def test_same_rng_seed_same_output(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]

        def build_and_run():
            features = Embedding(graph.num_nodes, 6, rng=1)
            flow = MetapathFlow(graph, scheme, features, 6, (3, 2), rng=2)
            return flow(graph.nodes_of_type("user")[:5]).data

        np.testing.assert_array_equal(build_and_run(), build_and_run())

    def test_consecutive_calls_resample(self, taobao_dataset):
        """Two forward passes sample different neighborhoods (stochastic)."""
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 6, rng=1)
        flow = MetapathFlow(graph, scheme, features, 6, (3, 2), rng=2)
        users = graph.nodes_of_type("user")[:5]
        a = flow(users).data
        b = flow(users).data
        assert not np.allclose(a, b)


class TestFlowShapesAcrossSchemes:
    @pytest.mark.parametrize("pattern_index", [0, 1, 4])
    def test_imdb_scheme_lengths(self, pattern_index):
        """IMDb mixes 2-hop and 4-hop schemes; all must aggregate cleanly."""
        from repro.datasets import load_dataset

        ds = load_dataset("imdb", scale=0.2, seed=0)
        graph = ds.graph
        schemes = ds.schemes_for("credit")
        scheme = schemes[pattern_index]
        features = Embedding(graph.num_nodes, 4, rng=0)
        flow = MetapathFlow(
            graph, scheme, features, 4, (3, 2, 2, 2), rng=0
        )
        starts = graph.nodes_of_type(scheme.start_type)[:4]
        out = flow(starts)
        assert out.shape == (4, 4)
        assert np.all(np.isfinite(out.data))
