"""Metapath- and relationship-level attention (Eqs. 6-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MetapathLevelAttention, RelationshipLevelAttention
from repro.nn import Tensor


def flows(n_flows, batch=4, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    return [Tensor(rng.normal(size=(batch, dim)), requires_grad=True)
            for _ in range(n_flows)]


class TestMetapathLevelAttention:
    def test_output_shape(self):
        attn = MetapathLevelAttention(6, rng=0)
        out = attn(flows(3))
        assert out.shape == (4, 6)

    def test_flow_importance_is_distribution(self):
        attn = MetapathLevelAttention(6, rng=0)
        attn(flows(3))
        importance = attn.last_flow_importance
        assert importance.shape == (3,)
        assert importance.sum() == pytest.approx(1.0)
        assert np.all(importance >= 0)

    def test_disabled_is_uniform_mean(self):
        attn = MetapathLevelAttention(6, enabled=False)
        inputs = flows(4)
        out = attn(inputs)
        expected = np.mean([t.data for t in inputs], axis=0)
        np.testing.assert_allclose(out.data, expected)
        np.testing.assert_allclose(attn.last_flow_importance, 0.25)

    def test_single_flow_works(self):
        attn = MetapathLevelAttention(6, rng=0)
        out = attn(flows(1))
        assert out.shape == (4, 6)
        assert attn.last_flow_importance.shape == (1,)

    def test_gradients_reach_every_flow(self):
        attn = MetapathLevelAttention(6, rng=0)
        inputs = flows(3)
        attn(inputs).sum().backward()
        for tensor in inputs:
            assert tensor.grad is not None
            assert np.any(tensor.grad != 0)

    def test_disabled_has_no_parameters(self):
        assert MetapathLevelAttention(6, enabled=False).num_parameters() == 0
        assert MetapathLevelAttention(6, enabled=True).num_parameters() > 0


class TestRelationshipLevelAttention:
    def test_output_shape(self):
        attn = RelationshipLevelAttention(6, rng=0)
        out = attn(flows(4))
        assert out.shape == (4, 4, 6)

    def test_disabled_is_identity_stack(self):
        attn = RelationshipLevelAttention(6, enabled=False)
        inputs = flows(3)
        out = attn(inputs)
        for idx, tensor in enumerate(inputs):
            np.testing.assert_allclose(out.data[:, idx], tensor.data)

    def test_relation_importance_is_distribution(self):
        attn = RelationshipLevelAttention(6, rng=0)
        attn(flows(5))
        importance = attn.last_relation_importance
        assert importance.shape == (5,)
        assert importance.sum() == pytest.approx(1.0)

    def test_enabled_mixes_relations(self):
        """With attention on, each output position depends on all inputs."""
        attn = RelationshipLevelAttention(4, rng=0)
        inputs = flows(3, batch=2, dim=4)
        attn(inputs)[:, 0, :].sum().backward()
        # Output slot 0 must receive gradient from slots 1 and 2 too.
        assert np.any(inputs[1].grad != 0)
        assert np.any(inputs[2].grad != 0)

    def test_disabled_does_not_mix(self):
        attn = RelationshipLevelAttention(4, enabled=False)
        inputs = flows(3, batch=2, dim=4)
        attn(inputs)[:, 0, :].sum().backward()
        assert np.all(inputs[1].grad == 0)
        assert np.all(inputs[2].grad == 0)
