"""SkipGramTrainer: pair generation, training loop, early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    SkipGramTrainer,
    TrainerConfig,
)
from repro.eval import evaluate_link_prediction


@pytest.fixture
def setup(taobao_dataset, taobao_split, tiny_hybrid_config, tiny_trainer_config):
    model = HybridGNN(
        taobao_split.train_graph, taobao_dataset.all_schemes(),
        tiny_hybrid_config, rng=0,
    )
    trainer = SkipGramTrainer(
        model, taobao_dataset.all_schemes(), taobao_split,
        tiny_trainer_config, rng=1,
    )
    return model, trainer


class TestPairGeneration:
    def test_pairs_exist_for_every_relationship(self, setup, taobao_split):
        _, trainer = setup
        pairs = trainer.generate_pairs()
        assert set(pairs) <= set(taobao_split.train_graph.schema.relationships)
        assert len(pairs) >= 1
        for relation_pairs in pairs.values():
            assert relation_pairs.shape[1] == 2
            assert len(relation_pairs) > 0

    def test_pairs_reference_valid_nodes(self, setup, taobao_split):
        _, trainer = setup
        pairs = trainer.generate_pairs()
        n = taobao_split.train_graph.num_nodes
        for relation_pairs in pairs.values():
            assert relation_pairs.min() >= 0
            assert relation_pairs.max() < n


class TestTraining:
    def test_loss_decreases(self, setup):
        _, trainer = setup
        history = trainer.fit()
        assert len(history.losses) >= 2
        assert history.losses[-1] < history.losses[0]

    def test_validation_tracked(self, setup):
        _, trainer = setup
        history = trainer.fit()
        assert len(history.val_scores) == len(history.losses)
        assert history.best_epoch >= 0
        assert history.best_val_score > 0

    def test_best_val_score_is_running_max(self, setup):
        model, trainer = setup
        history = trainer.fit()
        assert history.best_val_score == pytest.approx(max(history.val_scores))
        assert history.val_scores[history.best_epoch] == pytest.approx(
            history.best_val_score
        )

    def test_best_parameters_restored(self, taobao_dataset, taobao_split,
                                      tiny_hybrid_config):
        """fit() must leave the model at the best-epoch snapshot.

        Forward passes resample neighborhoods, so compare parameters, not
        metric values: train once recording a snapshot each epoch, then
        verify the final parameters equal the best epoch's snapshot.
        """
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=3, batch_size=128, num_walks=1, walk_length=6,
                          window=2, patience=3),
            rng=1,
        )
        snapshots = []
        original_validate = trainer._validation_score

        def recording_validate():
            score = original_validate()
            snapshots.append(model.state_dict())
            return score

        trainer._validation_score = recording_validate
        history = trainer.fit()
        best = snapshots[history.best_epoch]
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, best[name])

    def test_training_improves_over_init(self, taobao_dataset, taobao_split,
                                         tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        before = evaluate_link_prediction(model, taobao_split.test)["roc_auc"]
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=5, batch_size=128, num_walks=2, walk_length=8,
                          window=3, patience=5),
            rng=1,
        )
        trainer.fit()
        model.invalidate_cache()
        after = evaluate_link_prediction(model, taobao_split.test)["roc_auc"]
        assert after > before + 5.0

    def test_early_stopping_respects_patience(self, taobao_dataset, taobao_split,
                                              tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        # Zero learning rate: validation can never improve after epoch 1.
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=50, batch_size=4096, num_walks=1, walk_length=4,
                          window=1, patience=2, learning_rate=1e-12,
                          max_batches_per_epoch=1),
            rng=1,
        )
        history = trainer.fit()
        assert history.stopped_early
        assert len(history.losses) <= 5  # 1 best epoch + 2 patience + margin

class TestMaxBatchesCap:
    def test_single_batch_epoch_is_fast(self, taobao_dataset, taobao_split,
                                        tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=1, batch_size=64, num_walks=1, walk_length=6,
                          window=2, max_batches_per_epoch=1),
            rng=1,
        )
        history = trainer.fit()
        assert len(history.losses) == 1
