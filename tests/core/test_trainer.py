"""SkipGramTrainer: pair generation, training loop, early stopping."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    SkipGramTrainer,
    TrainerConfig,
)
from repro.datasets import split_edges
from repro.eval import evaluate_link_prediction


@pytest.fixture
def setup(taobao_dataset, taobao_split, tiny_hybrid_config, tiny_trainer_config):
    model = HybridGNN(
        taobao_split.train_graph, taobao_dataset.all_schemes(),
        tiny_hybrid_config, rng=0,
    )
    trainer = SkipGramTrainer(
        model, taobao_dataset.all_schemes(), taobao_split,
        tiny_trainer_config, rng=1,
    )
    return model, trainer


class TestPairGeneration:
    def test_pairs_exist_for_every_relationship(self, setup, taobao_split):
        _, trainer = setup
        pairs = trainer.generate_pairs()
        assert set(pairs) <= set(taobao_split.train_graph.schema.relationships)
        assert len(pairs) >= 1
        for relation_pairs in pairs.values():
            assert relation_pairs.shape[1] == 2
            assert len(relation_pairs) > 0

    def test_pairs_reference_valid_nodes(self, setup, taobao_split):
        _, trainer = setup
        pairs = trainer.generate_pairs()
        n = taobao_split.train_graph.num_nodes
        for relation_pairs in pairs.values():
            assert relation_pairs.min() >= 0
            assert relation_pairs.max() < n


class TestTraining:
    def test_loss_decreases(self, setup):
        _, trainer = setup
        history = trainer.fit()
        assert len(history.losses) >= 2
        assert history.losses[-1] < history.losses[0]

    def test_validation_tracked(self, setup):
        _, trainer = setup
        history = trainer.fit()
        assert len(history.val_scores) == len(history.losses)
        assert history.best_epoch >= 0
        assert history.best_val_score > 0

    def test_best_val_score_is_running_max(self, setup):
        model, trainer = setup
        history = trainer.fit()
        assert history.best_val_score == pytest.approx(max(history.val_scores))
        assert history.val_scores[history.best_epoch] == pytest.approx(
            history.best_val_score
        )

    def test_best_parameters_restored(self, taobao_dataset, taobao_split,
                                      tiny_hybrid_config):
        """fit() must leave the model at the best-epoch snapshot.

        Forward passes resample neighborhoods, so compare parameters, not
        metric values: train once recording a snapshot each epoch, then
        verify the final parameters equal the best epoch's snapshot.
        """
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=3, batch_size=128, num_walks=1, walk_length=6,
                          window=2, patience=3),
            rng=1,
        )
        snapshots = []
        original_validate = trainer._validation_score

        def recording_validate():
            score = original_validate()
            snapshots.append(model.state_dict())
            return score

        trainer._validation_score = recording_validate
        history = trainer.fit()
        best = snapshots[history.best_epoch]
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, best[name])

    def test_training_improves_over_init(self, taobao_dataset, taobao_split,
                                         tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        before = evaluate_link_prediction(model, taobao_split.test)["roc_auc"]
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=5, batch_size=128, num_walks=2, walk_length=8,
                          window=3, patience=5),
            rng=1,
        )
        trainer.fit()
        model.invalidate_cache()
        after = evaluate_link_prediction(model, taobao_split.test)["roc_auc"]
        assert after > before + 5.0

    def test_early_stopping_respects_patience(self, taobao_dataset, taobao_split,
                                              tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        # Zero learning rate: validation can never improve after epoch 1.
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=50, batch_size=4096, num_walks=1, walk_length=4,
                          window=1, patience=2, learning_rate=1e-12,
                          max_batches_per_epoch=1),
            rng=1,
        )
        history = trainer.fit()
        assert history.stopped_early
        assert len(history.losses) <= 5  # 1 best epoch + 2 patience + margin

class TestMaxBatchesCap:
    def test_single_batch_epoch_is_fast(self, taobao_dataset, taobao_split,
                                        tiny_hybrid_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            TrainerConfig(epochs=1, batch_size=64, num_walks=1, walk_length=6,
                          window=2, max_batches_per_epoch=1),
            rng=1,
        )
        history = trainer.fit()
        assert len(history.losses) == 1

    def test_loss_averaged_over_truncated_batches(self, setup):
        """The epoch loss divides by the capped batch count, not the full
        pre-cap count — otherwise truncated epochs report deflated losses."""
        _, trainer = setup
        trainer.config = dataclasses.replace(
            trainer.config, max_batches_per_epoch=3)
        pairs = trainer.generate_pairs()
        batches = trainer.make_batches(pairs)
        assert len(batches) == 3
        seen = {}
        trainer._run_batches = lambda bs: seen.setdefault("count", len(bs)) * 2.0
        loss = trainer.apply_updates(batches)
        assert seen["count"] == 3
        assert loss == pytest.approx(2.0)  # (3 * 2.0) / 3 batches


class TestStagedPipeline:
    def _twin(self, taobao_dataset, taobao_split, tiny_hybrid_config,
              tiny_trainer_config):
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), taobao_split,
            tiny_trainer_config, rng=1,
        )
        return model, trainer

    def test_staged_fit_bit_identical_to_reference(
            self, taobao_dataset, taobao_split, tiny_hybrid_config,
            tiny_trainer_config):
        """The sample→batch→update decomposition must not move a single
        bit relative to the pre-refactor monolithic loop."""
        model_a, staged = self._twin(
            taobao_dataset, taobao_split, tiny_hybrid_config,
            tiny_trainer_config)
        model_b, reference = self._twin(
            taobao_dataset, taobao_split, tiny_hybrid_config,
            tiny_trainer_config)
        hist_a = staged.fit()
        hist_b = reference._reference_fit()
        assert hist_a.losses == hist_b.losses
        assert hist_a.val_scores == hist_b.val_scores
        assert hist_a.best_epoch == hist_b.best_epoch
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert set(state_a) == set(state_b)
        for name, value in state_a.items():
            np.testing.assert_array_equal(value, state_b[name])

    def test_make_batches_respects_size_and_content(self, setup):
        _, trainer = setup
        pairs = trainer.generate_pairs()
        batches = trainer.make_batches(pairs)
        size = trainer.config.batch_size
        per_relation = {relation: [] for relation in pairs}
        for relation, batch in batches:
            assert 1 <= len(batch) <= size
            per_relation[relation].append(batch)
        for relation, relation_pairs in pairs.items():
            got = np.concatenate(per_relation[relation])
            assert sorted(map(tuple, got.tolist())) == sorted(
                map(tuple, relation_pairs.tolist()))


class TestResampleWalks:
    def _counting_trainer(self, setup, **overrides):
        _, trainer = setup
        trainer.config = dataclasses.replace(trainer.config, **overrides)
        sampled = []
        original = trainer.generate_pairs

        def recording_generate():
            pairs = original()
            sampled.append(pairs)
            return pairs

        trainer.generate_pairs = recording_generate
        return trainer, sampled

    def test_default_reuses_pairs_across_epochs(self, setup):
        trainer, sampled = self._counting_trainer(
            setup, epochs=3, patience=10)
        trainer.fit()
        assert len(sampled) == 1

    def test_resample_gives_fresh_pairs_from_second_epoch(self, setup):
        trainer, sampled = self._counting_trainer(
            setup, epochs=3, patience=10, resample_walks_every=1)
        history = trainer.fit()
        assert len(history.losses) == 3
        assert len(sampled) == 3  # initial + epochs 2 and 3
        first, second = sampled[0], sampled[1]
        assert any(
            first[relation].shape != second[relation].shape
            or not np.array_equal(first[relation], second[relation])
            for relation in first
        )

    def test_resample_every_two(self, setup):
        trainer, sampled = self._counting_trainer(
            setup, epochs=4, patience=10, resample_walks_every=2)
        trainer.fit()
        assert len(sampled) == 2  # initial + epoch 3 (index 2)

    def test_negative_resample_rejected(self):
        from repro.errors import TrainingError
        with pytest.raises(TrainingError):
            TrainerConfig(resample_walks_every=-1)


class TestNoValidationSplit:
    @pytest.fixture
    def val_free_setup(self, taobao_dataset, tiny_hybrid_config):
        split = split_edges(
            taobao_dataset.graph, train_fraction=0.85, val_fraction=0.0,
            rng=8)
        assert not split.val
        model = HybridGNN(
            split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=0,
        )
        trainer = SkipGramTrainer(
            model, taobao_dataset.all_schemes(), split,
            TrainerConfig(epochs=3, batch_size=128, num_walks=1,
                          walk_length=6, window=2, patience=1,
                          max_batches_per_epoch=2),
            rng=1,
        )
        return model, trainer

    def test_no_best_state_and_sentinel_epoch(self, val_free_setup):
        model, trainer = val_free_setup
        history = trainer.fit()
        assert history.best_epoch == -1
        assert history.best_val_score == float("-inf")
        assert history.val_scores == []

    def test_final_parameters_kept_without_restore(self, val_free_setup):
        """With no val split there is no best-state snapshot: fit() must
        leave the parameters exactly where the last update put them."""
        model, trainer = val_free_setup
        restored = []
        original = model.load_state_dict
        model.load_state_dict = lambda state: restored.append(state) or original(state)
        trainer.fit()
        assert restored == []

    def test_early_stop_counter_never_advances(self, val_free_setup):
        """patience=1 with no val scores must still run every epoch —
        the early-stop counter only moves when a val score exists."""
        _, trainer = val_free_setup
        history = trainer.fit()
        assert len(history.losses) == trainer.config.epochs
        assert not history.stopped_early
