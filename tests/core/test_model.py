"""HybridGNN model behaviour: forward, ablations, attention readout, cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridGNN, HybridGNNConfig
from repro.errors import TrainingError


@pytest.fixture
def model(taobao_dataset, taobao_split, tiny_hybrid_config):
    return HybridGNN(
        taobao_split.train_graph,
        taobao_dataset.all_schemes(),
        tiny_hybrid_config,
        rng=0,
    )


class TestForward:
    def test_output_shape(self, model):
        out = model(np.arange(10), "page_view")
        assert out.shape == (10, model.config.base_dim)

    def test_mixed_type_batch(self, model, taobao_split):
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")[:3]
        items = graph.nodes_of_type("item")[:3]
        batch = np.concatenate([items, users])  # deliberately interleaved types
        out = model(batch, "purchase")
        assert out.shape == (6, model.config.base_dim)

    def test_mixed_batch_matches_pure_batches(self, taobao_dataset, taobao_split):
        """Stitching per-type groups must preserve row order.

        Sampling is stochastic, so compare the deterministic part: the base
        embedding contribution is row-aligned if stitching is correct.  We
        test alignment by checking each row only depends on its own node via
        the base table (perturb one base row, only that output row moves
        deterministically)."""
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, metapath_fanouts=(2, 2, 2, 2, 2, 2),
            exploration_fanout=2, exploration_depth=1,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        graph = taobao_split.train_graph
        batch = np.concatenate(
            [graph.nodes_of_type("item")[:2], graph.nodes_of_type("user")[:2]]
        )
        before = model(batch, "page_view").data.copy()
        model.base.weight.data[batch[0]] += 100.0
        after = model(batch, "page_view").data
        # Row 0 must shift by ~100 in base-embedding space; rows 1-3 must not.
        assert np.abs(after[0] - before[0]).max() > 50.0
        for row in range(1, 4):
            assert np.abs(after[row] - before[row]).max() < 50.0

    def test_unknown_relation_rejected(self, model):
        with pytest.raises(TrainingError):
            model(np.arange(3), "likes")

    def test_different_relations_give_different_embeddings(self, model):
        nodes = np.arange(8)
        a = model(nodes, "page_view").data
        b = model(nodes, "purchase").data
        assert not np.allclose(a, b)


class TestAblationVariants:
    def test_no_metapath_attention(self, taobao_dataset, taobao_split):
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, use_metapath_attention=False,
            metapath_fanouts=(2, 2), exploration_fanout=2, exploration_depth=1,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        assert model(np.arange(4), "page_view").shape == (4, 8)
        assert model.metapath_attention["page_view"].attention is None

    def test_no_relationship_attention(self, taobao_dataset, taobao_split):
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, use_relationship_attention=False,
            metapath_fanouts=(2, 2), exploration_fanout=2, exploration_depth=1,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        assert model(np.arange(4), "page_view").shape == (4, 8)

    def test_no_randomized_exploration(self, taobao_dataset, taobao_split):
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, use_randomized_exploration=False,
            metapath_fanouts=(2, 2), exploration_fanout=2,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        assert model.exploration_flow is None
        assert model(np.arange(4), "page_view").shape == (4, 8)

    def test_no_hybrid_flows(self, taobao_dataset, taobao_split):
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, use_hybrid_flows=False,
            metapath_fanouts=(2, 2), exploration_fanout=2, exploration_depth=1,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        from repro.core.hybrid_aggregation import RandomNeighborFlow

        for relation in model.relations:
            flows = list(model.flows[relation])
            assert len(flows) == 1
            assert isinstance(flows[0], RandomNeighborFlow)
        assert model(np.arange(4), "page_view").shape == (4, 8)

    def test_missing_schemes_rejected(self, taobao_split, tiny_hybrid_config):
        with pytest.raises(TrainingError):
            HybridGNN(taobao_split.train_graph, {}, tiny_hybrid_config, rng=0)


class TestEmbeddingCache:
    def test_cache_consistency(self, model, taobao_split):
        nodes = np.arange(6)
        first = model.node_embeddings(nodes, "page_view")
        second = model.node_embeddings(nodes, "page_view")
        np.testing.assert_array_equal(first, second)

    def test_cache_invalidation_changes_samples(self, model):
        nodes = np.arange(6)
        first = model.node_embeddings(nodes, "page_view").copy()
        model.invalidate_cache()
        model.base.weight.data += 1.0
        second = model.node_embeddings(nodes, "page_view")
        assert not np.allclose(first, second)

    def test_embeddings_cover_all_nodes(self, model, taobao_split):
        all_nodes = np.arange(taobao_split.train_graph.num_nodes)
        emb = model.node_embeddings(all_nodes, "favorite")
        assert emb.shape == (len(all_nodes), model.config.base_dim)
        assert np.all(np.isfinite(emb))


class TestAttentionReadout:
    def test_metapath_scores_form_distribution(self, model):
        scores = model.metapath_attention_scores("page_view", "user", rng=0)
        assert "random" in scores
        assert "U-I-U" in scores
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_item_start_type_uses_iui(self, model):
        scores = model.metapath_attention_scores("page_view", "item", rng=0)
        assert "I-U-I" in scores

    def test_relationship_scores_form_distribution(self, model, taobao_split):
        scores = model.relationship_attention_scores(rng=0)
        assert set(scores) == set(taobao_split.train_graph.schema.relationships)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)


class TestTrainerProtocol:
    def test_num_negatives_property(self, model):
        assert model.num_negatives == model.config.num_negatives

    def test_state_dict_roundtrip(self, model):
        state = model.state_dict()
        for param in model.parameters():
            param.data += 0.5
        model.load_state_dict(state)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])
