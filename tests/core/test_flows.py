"""Hybrid aggregation flows (Eqs. 3-5) and the layered aggregation kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hybrid_aggregation import (
    ExplorationFlow,
    MetapathFlow,
    RandomNeighborFlow,
    aggregate_layers,
)
from repro.nn import Embedding, MeanAggregator, ModuleList


@pytest.fixture
def features():
    return Embedding(200, 6, rng=0)


class TestAggregateLayers:
    def test_output_shape(self, features):
        layers = [
            np.arange(4),
            np.arange(12).reshape(4, 3),
            np.arange(24).reshape(4, 6),
        ]
        aggs = ModuleList([MeanAggregator(6, 6, rng=0), MeanAggregator(6, 6, rng=1)])
        out = aggregate_layers(layers, [3, 2], features, aggs)
        assert out.shape == (4, 6)

    def test_single_hop(self, features):
        layers = [np.arange(5), np.arange(15).reshape(5, 3)]
        aggs = ModuleList([MeanAggregator(6, 6, rng=0)])
        out = aggregate_layers(layers, [3], features, aggs)
        assert out.shape == (5, 6)

    def test_gradients_reach_feature_table(self, features):
        layers = [np.arange(3), np.arange(9).reshape(3, 3)]
        aggs = ModuleList([MeanAggregator(6, 6, rng=0)])
        out = aggregate_layers(layers, [3], features, aggs)
        out.sum().backward()
        assert features.weight.grad is not None
        assert np.any(features.weight.grad != 0)


class TestMetapathFlow:
    def test_forward_shape(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = MetapathFlow(graph, scheme, features, 6, (3, 2), rng=0)
        users = graph.nodes_of_type("user")[:7]
        out = flow(users)
        assert out.shape == (7, 6)

    def test_label_and_start_type(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = MetapathFlow(graph, scheme, features, 6, (3, 2), rng=0)
        assert flow.label == "U-I-U"
        assert flow.start_type == "user"

    def test_too_few_fanouts_rejected(self, taobao_dataset):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 6, rng=0)
        with pytest.raises(ValueError):
            MetapathFlow(graph, scheme, features, 6, (3,), rng=0)

    @pytest.mark.parametrize("aggregator", ["mean", "pool", "lstm"])
    def test_all_aggregator_kinds(self, taobao_dataset, aggregator):
        graph = taobao_dataset.graph
        scheme = taobao_dataset.schemes_for("page_view")[0]
        features = Embedding(graph.num_nodes, 4, rng=0)
        flow = MetapathFlow(
            graph, scheme, features, 4, (2, 2), aggregator=aggregator, rng=0
        )
        out = flow(graph.nodes_of_type("user")[:3])
        assert out.shape == (3, 4)


class TestExplorationFlow:
    def test_forward_shape(self, taobao_dataset):
        graph = taobao_dataset.graph
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = ExplorationFlow(graph, features, 6, depth=2, fanout=3, rng=0)
        out = flow(np.arange(9))
        assert out.shape == (9, 6)

    def test_depth_one(self, taobao_dataset):
        graph = taobao_dataset.graph
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = ExplorationFlow(graph, features, 6, depth=1, fanout=4, rng=0)
        assert flow(np.arange(5)).shape == (5, 6)

    def test_label(self, taobao_dataset):
        graph = taobao_dataset.graph
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = ExplorationFlow(graph, features, 6, depth=1, fanout=2, rng=0)
        assert flow.label == "random"


class TestRandomNeighborFlow:
    def test_forward_shape(self, taobao_dataset):
        graph = taobao_dataset.graph
        features = Embedding(graph.num_nodes, 6, rng=0)
        flow = RandomNeighborFlow(
            graph, "page_view", features, 6, depth=2, fanout=3, rng=0
        )
        assert flow(np.arange(6)).shape == (6, 6)
