"""The skip-gram negative-sampling objective (Eq. 13) and softplus."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import skip_gram_loss, softplus
from repro.nn import Embedding, Tensor
from repro.nn.gradcheck import check_gradients


class TestSoftplus:
    def test_matches_reference(self):
        x = Tensor(np.linspace(-5, 5, 31))
        expected = np.log1p(np.exp(x.data))
        np.testing.assert_allclose(softplus(x).data, expected, atol=1e-12)

    def test_stable_for_large_inputs(self):
        x = Tensor(np.asarray([-800.0, 800.0]))
        out = softplus(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(800.0)
        assert np.all(np.isfinite(out))

    def test_gradient(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5,)), requires_grad=True)
        check_gradients(lambda: softplus(x).sum(), [x])

    def test_negative_log_sigmoid_identity(self):
        """-log(sigmoid(x)) == softplus(-x), the form used by the loss."""
        x = np.linspace(-4, 4, 17)
        lhs = -np.log(1 / (1 + np.exp(-x)))
        rhs = softplus(Tensor(-x)).data
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)


class TestSkipGramLoss:
    def setup_method(self):
        self.table = Embedding(20, 8, rng=0)
        rng = np.random.default_rng(1)
        self.targets = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        self.contexts = np.arange(6)
        self.negatives = rng.integers(0, 20, size=(6, 4))

    def test_scalar_output(self):
        loss = skip_gram_loss(self.targets, self.table, self.contexts, self.negatives)
        assert loss.shape == ()
        assert np.isfinite(loss.item())

    def test_positive(self):
        loss = skip_gram_loss(self.targets, self.table, self.contexts, self.negatives)
        assert loss.item() > 0

    def test_gradients_flow(self):
        loss = skip_gram_loss(self.targets, self.table, self.contexts, self.negatives)
        loss.backward()
        assert self.targets.grad is not None
        assert self.table.weight.grad is not None

    def test_loss_decreases_when_aligned(self):
        """Targets aligned with positive contexts score lower loss."""
        aligned = Tensor(self.table.weight.data[self.contexts] * 3.0)
        rng = np.random.default_rng(2)
        random = Tensor(rng.normal(size=aligned.shape))
        loss_aligned = skip_gram_loss(
            aligned, self.table, self.contexts, self.negatives
        ).item()
        loss_random = skip_gram_loss(
            random, self.table, self.contexts, self.negatives
        ).item()
        assert loss_aligned < loss_random

    def test_more_negatives_higher_loss(self):
        rng = np.random.default_rng(3)
        few = rng.integers(0, 20, size=(6, 1))
        many = rng.integers(0, 20, size=(6, 10))
        loss_few = skip_gram_loss(self.targets, self.table, self.contexts, few).item()
        loss_many = skip_gram_loss(self.targets, self.table, self.contexts, many).item()
        assert loss_many > loss_few

    def test_gradcheck(self):
        check_gradients(
            lambda: skip_gram_loss(
                self.targets, self.table, self.contexts, self.negatives
            ),
            [self.targets, self.table.weight],
        )
