"""Recommender facade and model persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EmbeddingStore,
    HybridGNN,
    HybridGNNConfig,
    Recommender,
    export_embeddings,
    load_checkpoint_into,
    load_embeddings,
    save_checkpoint,
)
from repro.errors import EvaluationError, ReproError


@pytest.fixture
def model(taobao_dataset, taobao_split, tiny_hybrid_config):
    return HybridGNN(
        taobao_split.train_graph, taobao_dataset.all_schemes(),
        tiny_hybrid_config, rng=0,
    )


@pytest.fixture
def recommender(model, taobao_split):
    return Recommender(model, taobao_split.train_graph)


class TestRecommender:
    def test_recommend_returns_k_items(self, recommender, taobao_split):
        user = int(taobao_split.train_graph.nodes_of_type("user")[0])
        recs = recommender.recommend(user, "page_view", k=5)
        assert len(recs) == 5
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    def test_recommendations_are_items(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        user = int(graph.nodes_of_type("user")[0])
        for rec in recommender.recommend(user, "page_view", k=5):
            assert graph.node_type(rec.node) == "item"

    def test_known_neighbors_excluded(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")
        user = next(int(u) for u in users if graph.degree(int(u), "page_view") > 0)
        known = set(graph.neighbors(user, "page_view").tolist())
        recs = recommender.recommend(user, "page_view", k=10)
        assert not {r.node for r in recs} & known

    def test_include_known_when_asked(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")
        user = next(int(u) for u in users if graph.degree(int(u), "page_view") > 2)
        pool = recommender.candidates(user, "page_view", exclude_known=False)
        known = set(graph.neighbors(user, "page_view").tolist())
        assert known <= set(pool.tolist())

    def test_isolated_source_resolves_type_from_schema(
        self, recommender, taobao_split
    ):
        # Regression: cold-start nodes used to raise EvaluationError unless
        # the caller passed target_type; the type is now inferred from the
        # relationship's schema-level endpoint map.
        graph = taobao_split.train_graph
        users = graph.nodes_of_type("user")
        isolated = [u for u in users if graph.degree(int(u), "purchase") == 0]
        if not isolated:
            pytest.skip("no isolated user under purchase")
        user = int(isolated[0])
        inferred = recommender.recommend(user, "purchase", k=3)
        explicit = recommender.recommend(user, "purchase", k=3, target_type="item")
        assert inferred == explicit
        assert len(inferred) == 3

    def test_invalid_k(self, recommender):
        with pytest.raises(EvaluationError):
            recommender.recommend(0, "page_view", k=0)

    def test_batch(self, recommender, taobao_split):
        users = taobao_split.train_graph.nodes_of_type("user")[:3]
        lists = recommender.recommend_batch(users, "page_view", k=4)
        assert len(lists) == 3
        assert all(len(l) == 4 for l in lists)

    def test_similar_nodes_same_type(self, recommender, taobao_split):
        graph = taobao_split.train_graph
        item = int(graph.nodes_of_type("item")[0])
        similar = recommender.similar_nodes(item, "page_view", k=5)
        assert len(similar) == 5
        assert item not in {r.node for r in similar}
        for rec in similar:
            assert graph.node_type(rec.node) == "item"
            assert -1.0 - 1e-9 <= rec.score <= 1.0 + 1e-9


class TestCheckpoints:
    def test_roundtrip(self, model, taobao_dataset, taobao_split,
                       tiny_hybrid_config, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        clone = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=99,  # different init
        )
        load_checkpoint_into(clone, path)
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_wrong_file_rejected(self, model, tmp_path):
        path = tmp_path / "not_a_checkpoint.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ReproError):
            load_checkpoint_into(model, path)

    def test_suffixless_path_roundtrips(self, model, taobao_dataset, taobao_split,
                                        tiny_hybrid_config, tmp_path):
        # Regression: np.savez_compressed silently appends ".npz", so saving
        # to "ckpt" wrote "ckpt.npz" while loading looked for "ckpt" and
        # failed.  Save must report the real path and load must accept the
        # suffix-less spelling.
        requested = tmp_path / "ckpt"
        written = save_checkpoint(model, requested)
        assert written == tmp_path / "ckpt.npz"
        assert written.exists()
        assert not requested.exists()
        clone = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(),
            tiny_hybrid_config, rng=123,
        )
        load_checkpoint_into(clone, requested)  # suffix-less, as saved
        for (_, param_a), (_, param_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_meta_parameter_name_rejected(self, model, tmp_path):
        # Regression: a parameter named "__meta__" used to silently collide
        # with the archive's metadata entry and corrupt the checkpoint.
        from repro.nn.module import Module, Parameter

        class Poisoned(Module):
            def __init__(self):
                super().__init__()
                setattr(self, "__meta__", Parameter(np.zeros(2)))

        with pytest.raises(ReproError, match="reserved"):
            save_checkpoint(Poisoned(), tmp_path / "poisoned.npz")
        assert not (tmp_path / "poisoned.npz").exists()


class TestEmbeddingExport:
    def test_roundtrip(self, model, taobao_split, tmp_path):
        path = tmp_path / "embeddings.npz"
        graph = taobao_split.train_graph
        relations = list(graph.schema.relationships)
        export_embeddings(model, graph.num_nodes, relations, path)
        store = load_embeddings(path)
        assert store.num_nodes == graph.num_nodes
        assert set(store.relations) == set(relations)
        nodes = np.arange(10)
        np.testing.assert_allclose(
            store.node_embeddings(nodes, "page_view"),
            model.node_embeddings(nodes, "page_view"),
        )

    def test_store_usable_by_recommender(self, model, taobao_split, tmp_path):
        path = tmp_path / "embeddings.npz"
        graph = taobao_split.train_graph
        export_embeddings(model, graph.num_nodes, graph.schema.relationships, path)
        store = load_embeddings(path)
        recommender = Recommender(store, graph)
        user = int(graph.nodes_of_type("user")[0])
        assert len(recommender.recommend(user, "page_view", k=3)) == 3

    def test_unknown_relation_rejected(self, model, taobao_split, tmp_path):
        path = tmp_path / "embeddings.npz"
        graph = taobao_split.train_graph
        export_embeddings(model, graph.num_nodes, ["page_view"], path)
        store = load_embeddings(path)
        with pytest.raises(ReproError):
            store.node_embeddings(np.arange(2), "purchase")

    def test_mismatched_tables_rejected(self):
        with pytest.raises(ReproError):
            EmbeddingStore({"a": np.zeros((3, 2)), "b": np.zeros((4, 2))})
        with pytest.raises(ReproError):
            EmbeddingStore({})

    def test_suffixless_path_roundtrips(self, model, taobao_split, tmp_path):
        graph = taobao_split.train_graph
        requested = tmp_path / "embeddings"
        written = export_embeddings(
            model, graph.num_nodes, ["page_view"], requested
        )
        assert written == tmp_path / "embeddings.npz"
        store = load_embeddings(requested)  # suffix-less, as saved
        np.testing.assert_array_equal(
            store.node_embeddings(np.arange(5), "page_view"),
            model.node_embeddings(np.arange(5), "page_view"),
        )

    def test_meta_relation_name_rejected(self, model, tmp_path):
        with pytest.raises(ReproError, match="reserved"):
            export_embeddings(model, 4, ["__meta__"], tmp_path / "bad.npz")