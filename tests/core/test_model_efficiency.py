"""Efficiency-relevant model behaviour: shared exploration, eval averaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridGNN, HybridGNNConfig


@pytest.fixture
def model(taobao_dataset, taobao_split):
    config = HybridGNNConfig(
        base_dim=8, edge_dim=4, metapath_fanouts=(2, 2, 2, 2, 2, 2),
        exploration_fanout=2, exploration_depth=1, eval_samples=2,
    )
    return HybridGNN(
        taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
    )


def test_exploration_flow_runs_once_per_forward(model, monkeypatch):
    """The P_rand flow is relation-independent (Eq. 4): one forward pass must
    invoke it exactly once even with relationship attention over 4 relations."""
    calls = []
    original = model.exploration_flow.forward

    def counting(nodes):
        calls.append(len(nodes))
        return original(nodes)

    monkeypatch.setattr(model.exploration_flow, "forward", counting)
    model(np.arange(6), "page_view")
    assert len(calls) == 1


def test_eval_samples_reduces_embedding_variance(taobao_dataset, taobao_split):
    """Averaging more stochastic passes yields more stable cached embeddings."""

    def spread(eval_samples):
        config = HybridGNNConfig(
            base_dim=8, edge_dim=4, metapath_fanouts=(2, 2, 2, 2, 2, 2),
            exploration_fanout=2, exploration_depth=1,
            eval_samples=eval_samples,
        )
        model = HybridGNN(
            taobao_split.train_graph, taobao_dataset.all_schemes(), config, rng=0
        )
        runs = []
        for _ in range(4):
            model.invalidate_cache()
            runs.append(model.node_embeddings(np.arange(20), "page_view").copy())
        return float(np.mean(np.var(np.stack(runs), axis=0)))

    assert spread(6) < spread(1)


def test_eval_samples_config_validated():
    from repro.errors import TrainingError

    with pytest.raises(TrainingError):
        HybridGNNConfig(eval_samples=0)


def test_metapath_attention_residual_keeps_flow_signal(model):
    """With residual attention, the fused embedding moves when any single
    flow's contribution changes (no flow can be entirely gated away)."""
    nodes = model.graph.nodes_of_type("user")[:4]
    before = model.relation_embedding(nodes, "page_view").data.copy()
    # Perturb the feature table massively: flows must propagate the change.
    model.features.weight.data += 10.0
    after = model.relation_embedding(nodes, "page_view").data
    assert not np.allclose(before, after)
