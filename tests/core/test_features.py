"""Feature sources: transductive learned table vs inductive projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    LearnedFeatures,
    ProjectedFeatures,
    SkipGramTrainer,
    TrainerConfig,
    make_feature_source,
)
from repro.errors import TrainingError


class TestProjectedFeatures:
    def test_output_shape(self):
        raw = np.random.default_rng(0).normal(size=(10, 7))
        source = ProjectedFeatures(raw, out_dim=4, rng=0)
        out = source(np.asarray([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)

    def test_projection_is_learnable(self):
        raw = np.random.default_rng(0).normal(size=(10, 7))
        source = ProjectedFeatures(raw, out_dim=4, rng=0)
        out = source(np.arange(5))
        out.sum().backward()
        assert source.project.weight.grad is not None

    def test_raw_features_not_parameters(self):
        raw = np.random.default_rng(0).normal(size=(10, 7))
        source = ProjectedFeatures(raw, out_dim=4, rng=0)
        names = {name for name, _ in source.named_parameters()}
        assert names == {"project.weight", "project.bias"}

    def test_same_features_same_output(self):
        """Nodes with identical raw features map to identical projections."""
        raw = np.zeros((4, 3))
        raw[1] = raw[2] = [1.0, 2.0, 3.0]
        source = ProjectedFeatures(raw, out_dim=5, rng=0)
        out = source(np.asarray([1, 2])).data
        np.testing.assert_allclose(out[0], out[1])

    def test_invalid_features_rejected(self):
        with pytest.raises(TrainingError):
            ProjectedFeatures(np.zeros(5), out_dim=2)
        with pytest.raises(TrainingError):
            ProjectedFeatures(np.asarray([[np.inf, 1.0]]), out_dim=2)


class TestMakeFeatureSource:
    def test_none_gives_learned_table(self):
        source = make_feature_source(8, 4, rng=0)
        assert isinstance(source, LearnedFeatures)
        assert source(np.arange(3)).shape == (3, 4)

    def test_matrix_gives_projection(self):
        raw = np.zeros((8, 6))
        source = make_feature_source(8, 4, node_features=raw, rng=0)
        assert isinstance(source, ProjectedFeatures)

    def test_node_count_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            make_feature_source(8, 4, node_features=np.zeros((5, 6)))


class TestInductiveHybridGNN:
    def test_model_trains_with_node_features(self, taobao_dataset, taobao_split,
                                             tiny_hybrid_config):
        graph = taobao_split.train_graph
        rng = np.random.default_rng(0)
        # Features = noisy one-hot node type + degree: realistic minimal set.
        features = np.concatenate(
            [
                np.eye(graph.schema.num_node_types)[graph.node_type_codes],
                graph.degrees()[:, None] / 10.0,
            ],
            axis=1,
        ) + rng.normal(0, 0.01, size=(graph.num_nodes, 3))
        schemes = taobao_dataset.all_schemes()
        model = HybridGNN(graph, schemes, tiny_hybrid_config, rng=1,
                          node_features=features)
        trainer = SkipGramTrainer(
            model, schemes, taobao_split,
            TrainerConfig(epochs=2, batch_size=256, num_walks=1, walk_length=6,
                          window=2, patience=2),
            rng=2,
        )
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, tiny_hybrid_config.base_dim)

    def test_feature_gradients_flow_through_flows(self, taobao_dataset,
                                                  taobao_split,
                                                  tiny_hybrid_config):
        graph = taobao_split.train_graph
        features = np.random.default_rng(0).normal(size=(graph.num_nodes, 5))
        model = HybridGNN(graph, taobao_dataset.all_schemes(),
                          tiny_hybrid_config, rng=1, node_features=features)
        out = model(np.arange(8), "page_view")
        out.sum().backward()
        assert model.features.project.weight.grad is not None
        assert np.any(model.features.project.weight.grad != 0)
