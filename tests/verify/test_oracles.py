"""Differential oracles: every fast path vs an independent slow truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.verify.oracles import (
    DEFAULT_TOLERANCE,
    format_oracle_table,
    metric_oracles,
    model_oracles,
    run_oracle_suite,
    sampling_oracles,
    serving_oracles,
)


@pytest.fixture(scope="module")
def suite_results(taobao_dataset):
    return run_oracle_suite(seed=0, dataset=taobao_dataset)


class TestSuite:
    def test_all_oracles_pass_within_tolerance(self, suite_results):
        failed = [
            f"{r.name}: {r.max_abs_diff:.3e} >= {r.tolerance:.0e}"
            for r in suite_results
            if not r.passed
        ]
        assert not failed, "\n".join(failed)

    def test_acceptance_bound_is_strict(self, suite_results):
        # The ISSUE acceptance criterion: max-abs-diff < 1e-6 everywhere.
        assert all(r.max_abs_diff < 1e-6 for r in suite_results)
        assert all(r.tolerance == DEFAULT_TOLERANCE for r in suite_results)

    def test_covers_all_families(self, suite_results):
        components = {r.component for r in suite_results}
        assert components == {"sampling", "metrics", "model", "serving"}

    def test_walker_equivalence_oracles_are_exact(self, suite_results):
        by_name = {r.name: r for r in suite_results}
        for name in [
            "uniform_walk_equivalence",
            "metapath_walk_equivalence",
            "exploration_walk_equivalence",
            "context_pairs_equivalence",
        ]:
            # Draw-for-draw identical walks: diff is exactly zero, not just small.
            assert by_name[name].max_abs_diff == 0.0, name

    def test_results_serialise(self, suite_results):
        payload = suite_results[0].to_dict()
        assert set(payload) == {
            "name", "component", "max_abs_diff", "tolerance", "passed", "detail"
        }

    def test_table_format(self, suite_results):
        table = format_oracle_table(suite_results)
        assert f"{len(suite_results)}/{len(suite_results)} oracles passed" in table
        assert "FAIL" not in table


class TestFamilies:
    def test_sampling_family_runs_on_any_dataset(self, taobao_dataset):
        results = sampling_oracles(dataset=taobao_dataset, seed=11)
        assert all(r.passed for r in results)
        assert {r.component for r in results} == {"sampling"}

    def test_metric_family_is_seeded(self):
        a = metric_oracles(seed=5)
        b = metric_oracles(seed=5)
        assert [r.max_abs_diff for r in a] == [r.max_abs_diff for r in b]
        assert all(r.passed for r in a)

    def test_model_family_passes_across_seeds(self):
        for seed in (0, 1, 2):
            results = model_oracles(seed=seed)
            assert all(r.passed for r in results), seed

    def test_serving_family_is_order_exact(self, taobao_dataset):
        for seed in (0, 1, 2):
            results = serving_oracles(dataset=taobao_dataset, seed=seed)
            assert all(r.passed for r in results), seed
            assert {r.component for r in results} == {"serving"}
            by_name = {r.name: r for r in results}
            # Full-ranking equivalence is list-order exact, not just close.
            assert by_name["ranking_order_equivalence"].max_abs_diff == 0.0

    def test_metric_oracles_cover_every_public_metric(self):
        names = {r.name for r in metric_oracles(seed=0)}
        assert names >= {
            "roc_auc", "pr_auc", "best_f1", "f1_at_threshold",
            "precision_at_k", "recall_at_k", "ndcg_at_k",
            "reciprocal_rank", "average_precision_at_k",
        }


class TestOracleSensitivity:
    """The oracles must be able to *fail* — exactness is load-bearing."""

    def test_brute_roc_auc_catches_perturbation(self):
        from repro.eval.metrics import roc_auc
        from repro.verify.oracles import _brute_roc_auc

        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=60)
        labels[:2] = [0, 1]
        scores = np.round(rng.random(60), 2)
        exact = _brute_roc_auc(labels, scores)
        assert abs(roc_auc(labels, scores) - exact) < 1e-12
        # A shifted score list is a different instance: the oracle notices.
        assert abs(roc_auc(labels, np.roll(scores, 1)) - exact) > 1e-4
