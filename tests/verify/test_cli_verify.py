"""The ``python -m repro verify`` entry point."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_verify_flags():
    args = build_parser().parse_args(
        ["verify", "--suite", "oracles", "--seed", "3", "--report", "r.json"]
    )
    assert args.suite == "oracles"
    assert args.seed == 3
    assert args.report == "r.json"


def test_gradcheck_suite_via_cli(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    exit_code = main(["verify", "--suite", "gradcheck", "--report", str(report_path)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "cases passed" in out and "0 uncovered targets" in out
    payload = json.loads(report_path.read_text())
    assert payload["passed"] is True
    assert payload["suites"]["gradcheck"]["uncovered_targets"] == []
    assert all(c["passed"] for c in payload["suites"]["gradcheck"]["cases"])


def test_golden_subset_via_cli(capsys):
    exit_code = main(
        ["verify", "--suite", "golden", "--datasets", "amazon", "--models", "DeepWalk"]
    )
    assert exit_code == 0
    assert "1/1 golden entries ok" in capsys.readouterr().out


def test_concurrency_suite_via_cli(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    exit_code = main(
        ["verify", "--suite", "concurrency", "--report", str(report_path)]
    )
    assert exit_code == 0
    assert "5/5 oracles passed" in capsys.readouterr().out
    payload = json.loads(report_path.read_text())
    assert payload["passed"] is True
    names = {c["name"] for c in payload["suites"]["concurrency"]}
    assert names == {
        "lock_order_selftest",
        "write_tracker_selftest",
        "service_storm_zero_findings",
        "sanitizer_bitidentity_service",
        "sanitizer_bitidentity_training",
    }
    assert all(c["passed"] for c in payload["suites"]["concurrency"])


def test_failure_exits_nonzero(tmp_path, monkeypatch):
    # Point the corpus at an empty directory: every entry is missing.
    monkeypatch.setenv("REPRO_GOLDEN_DIR", str(tmp_path))
    exit_code = main(
        ["verify", "--suite", "golden", "--datasets", "amazon", "--models", "DeepWalk"]
    )
    assert exit_code == 1
