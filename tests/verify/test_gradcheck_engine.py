"""The rewritten gradcheck engine: relative steps, sampling, registry sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.verify.gradcheck import (
    check_gradients,
    check_gradients_report,
    covered_targets,
    gradcheck_cases,
    numeric_gradient,
    registry_coverage,
    required_targets,
    run_gradcheck_suite,
    uncovered_targets,
)


class TestNumericGradient:
    def test_matches_analytic_on_quadratic(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        numeric = numeric_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_allclose(numeric, 2.0 * x.data, rtol=1e-6, atol=1e-8)

    def test_relative_step_survives_large_magnitudes(self, rng):
        # The historical absolute eps=1e-6 underflows against 1e6-scale
        # entries (x + eps == x in float64 spacing terms), producing garbage
        # central differences; the relative step keeps full accuracy.
        x = Tensor(rng.standard_normal((2, 3)) * 1e6, requires_grad=True)
        numeric = numeric_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_allclose(numeric, 2.0 * x.data, rtol=1e-6)

    def test_indices_restrict_evaluation(self, rng):
        x = Tensor(rng.standard_normal(10), requires_grad=True)
        calls = 0

        def func():
            nonlocal calls
            calls += 1
            return (x * x).sum()

        indices = np.asarray([1, 4, 7])
        numeric = numeric_gradient(func, x, indices=indices)
        assert calls == 2 * len(indices)
        checked = np.zeros(10, dtype=bool)
        checked[indices] = True
        np.testing.assert_allclose(numeric[checked], 2.0 * x.data[checked], rtol=1e-6)
        assert np.all(numeric[~checked] == 0.0)


class TestCheckGradientsReport:
    def test_passes_and_reports_structure(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        report = check_gradients_report(
            lambda: (a @ b).sum(), [a, b], names=["a", "b"], case="matmul"
        )
        assert report.passed
        assert report.case == "matmul"
        assert [t.name for t in report.tensors] == ["a", "b"]
        assert report.checked_elements == a.data.size + b.data.size
        assert report.max_abs_diff < 1e-6
        assert report.directional_passed

    def test_subset_sampling_bounds_evaluations(self, rng):
        x = Tensor(rng.standard_normal(100), requires_grad=True)
        report = check_gradients_report(
            lambda: (x * x).sum(), [x], max_elements=5, rng=0
        )
        assert report.passed
        assert report.tensors[0].checked == 5
        assert report.tensors[0].size == 100

    def test_detects_wrong_backward(self, rng):
        x = Tensor(rng.standard_normal(6), requires_grad=True)

        def buggy_double():
            def backward(grad):
                x._accumulate(grad * 3.0)  # wrong: forward is 2x

            return Tensor._make(x.data * 2.0, (x,), backward).sum()

        report = check_gradients_report(buggy_double, [x])
        assert not report.passed
        assert not report.tensors[0].passed
        assert report.tensors[0].max_abs_diff == pytest.approx(1.0, rel=1e-3)
        assert "FAIL" in report.summary()

    def test_flags_unreached_tensor(self, rng):
        used = Tensor(rng.standard_normal(4), requires_grad=True)
        unused = Tensor(rng.standard_normal(4), requires_grad=True)
        report = check_gradients_report(lambda: (used * used).sum(), [used, unused])
        assert not report.passed
        assert report.tensors[1].message == "no gradient reached this tensor"

    def test_assert_wrapper_raises_with_summary(self, rng):
        x = Tensor(rng.standard_normal(5), requires_grad=True)

        def buggy():
            def backward(grad):
                x._accumulate(-grad)

            return Tensor._make(x.data.copy(), (x,), backward).sum()

        with pytest.raises(AssertionError, match="gradcheck"):
            check_gradients(buggy, [x])

    def test_assert_wrapper_passes_clean_graph(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        check_gradients(lambda: x.exp().sum(), [x])


class TestRegistry:
    def test_every_public_target_is_covered(self):
        # Enumerated coverage: adding an op/module to repro.nn (or a core
        # target) without registering a gradcheck case fails this test.
        assert uncovered_targets() == []

    def test_required_targets_enumerate_public_surface(self):
        targets = set(required_targets())
        for expected in [
            "Tensor.matmul", "Tensor.softmax", "Tensor.getitem",
            "Linear", "Embedding", "Dropout", "LayerNorm", "SelfAttention",
            "MeanAggregator", "MaxPoolAggregator", "LSTMAggregator",
            "concat", "stack", "embedding_lookup", "sparse_matmul", "where",
            "core.skip_gram_loss", "core.HybridGNN",
        ]:
            assert expected in targets, expected
        assert set(covered_targets()) >= targets

    def test_coverage_map_names_cases(self):
        coverage = registry_coverage()
        assert coverage["Tensor.matmul"] == [
            "tensor.matmul", "tensor.matmul_batched", "tensor.matmul_vector"
        ]
        assert all(cases for cases in coverage.values())

    def test_case_names_unique_and_buildable(self):
        cases = gradcheck_cases()
        names = [case.name for case in cases]
        assert len(names) == len(set(names))
        func, tensors, tensor_names = cases[0].build(np.random.default_rng(0))
        assert len(tensors) == len(tensor_names)
        assert func().size == 1

    def test_unknown_case_name_rejected(self):
        with pytest.raises(KeyError, match="no-such-case"):
            run_gradcheck_suite(names=["no-such-case"])


class TestSuite:
    def test_full_sweep_passes(self):
        reports = run_gradcheck_suite(seed=0)
        assert len(reports) == len(gradcheck_cases())
        failed = [r.summary() for r in reports if not r.passed]
        assert not failed, "\n".join(failed)

    def test_sweep_is_seeded(self):
        first = run_gradcheck_suite(names=["tensor.matmul"], seed=3)[0]
        second = run_gradcheck_suite(names=["tensor.matmul"], seed=3)[0]
        assert first.max_abs_diff == second.max_abs_diff

    def test_hybridgnn_case_checks_model_parameters(self):
        report = run_gradcheck_suite(names=["core.hybridgnn_forward"])[0]
        assert report.passed, report.summary()
        assert len(report.tensors) >= 4  # spread over the parameter tree
        assert report.checked_elements > 0

    def test_report_serialises(self):
        report = run_gradcheck_suite(names=["tensor.add"])[0]
        payload = report.to_dict()
        assert payload["case"] == "tensor.add"
        assert payload["passed"] is True
        assert payload["tensors"][0]["checked"] > 0
