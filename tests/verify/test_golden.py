"""Golden regression corpus: committed snapshots stay honest.

Tier-1 checks the corpus is complete and well-formed and re-verifies one
cheap entry end-to-end; the full sweep over all five dataset-alikes x four
models runs under ``-m golden`` (marked slow) in the nightly job.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.verify.golden import (
    GOLDEN_MODELS,
    GoldenEntry,
    compute_entry,
    entry_path,
    format_golden_table,
    golden_dir,
    golden_targets,
    load_entry,
    verify_golden,
)

METRIC_KEYS = {"roc_auc", "pr_auc", "f1"}


class TestCorpusShape:
    def test_target_grid_covers_all_datasets_and_models(self):
        from repro.datasets import available_datasets
        from repro.verify.golden import SCALE_BENCH_DATASETS

        targets = golden_targets()
        golden_datasets = [
            d for d in available_datasets() if d not in SCALE_BENCH_DATASETS
        ]
        assert len(targets) == len(golden_datasets) * len(GOLDEN_MODELS)
        assert {d for d, _ in targets} == set(golden_datasets)
        assert {model for _, model in targets} == set(GOLDEN_MODELS)
        assert "HybridGNN" in GOLDEN_MODELS and len(GOLDEN_MODELS) >= 4

    def test_every_entry_is_committed_and_well_formed(self):
        missing, malformed = [], []
        for dataset, model in golden_targets():
            entry = load_entry(dataset, model)
            if entry is None:
                missing.append(f"{dataset}x{model}")
                continue
            overall = entry.metrics.get("overall", {})
            per_relation = entry.metrics.get("per_relation", {})
            ok = (
                entry.dataset == dataset
                and entry.model == model
                and entry.profile == "smoke"
                and entry.tolerance > 0
                and set(overall) == METRIC_KEYS
                and per_relation
                and all(set(m) == METRIC_KEYS for m in per_relation.values())
                and all(
                    np.isfinite(v) and 0.0 <= v <= 100.0
                    for m in [overall, *per_relation.values()]
                    for v in m.values()
                )
            )
            if not ok:
                malformed.append(f"{dataset}x{model}")
        assert not missing, f"missing golden entries: {missing} (run --refresh-golden)"
        assert not malformed, f"malformed golden entries: {malformed}"

    def test_entries_round_trip_through_json(self):
        dataset, model = golden_targets()[0]
        path = entry_path(dataset, model)
        entry = GoldenEntry.from_json(path.read_text())
        assert entry.to_json() == path.read_text()
        payload = json.loads(path.read_text())
        assert sorted(payload) == [
            "dataset", "metrics", "model", "profile", "scale", "seed", "tolerance"
        ]

    def test_missing_entry_reported_not_crashed(self, tmp_path):
        checks = verify_golden(
            datasets=["amazon"], models=["DeepWalk"], directory=tmp_path
        )
        assert len(checks) == 1
        assert checks[0].status == "missing"
        assert not checks[0].passed
        assert "missing" in format_golden_table(checks)


class TestReproducibility:
    def test_cheapest_entry_reproduces_in_tier1(self):
        # One end-to-end recompute (DeepWalk on amazon, a few seconds) keeps
        # the whole refresh/verify path exercised on every tier-1 run.
        checks = verify_golden(datasets=["amazon"], models=["DeepWalk"])
        assert checks[0].status == "ok", (
            f"{checks[0].detail}: drift {checks[0].max_abs_diff:.4f}pp "
            f"(tolerance {checks[0].tolerance}pp)"
        )

    def test_compute_entry_is_deterministic(self):
        a = compute_entry("amazon", "DeepWalk")
        b = compute_entry("amazon", "DeepWalk")
        assert a.metrics == b.metrics

    @pytest.mark.slow
    @pytest.mark.golden
    def test_full_corpus_passes_within_tolerance(self):
        checks = verify_golden()
        failed = [
            f"{c.dataset}x{c.model}: {c.status} ({c.max_abs_diff:.4f}pp)"
            for c in checks
            if not c.passed
        ]
        assert not failed, "\n".join(failed)


class TestRefresh:
    def test_refresh_writes_loadable_entries(self, tmp_path):
        from repro.verify.golden import refresh_golden

        entries = refresh_golden(
            datasets=["amazon"], models=["DeepWalk"], directory=tmp_path
        )
        assert len(entries) == 1
        reloaded = load_entry("amazon", "DeepWalk", directory=tmp_path)
        assert reloaded == entries[0]
        checks = verify_golden(
            datasets=["amazon"], models=["DeepWalk"], directory=tmp_path
        )
        assert checks[0].status == "ok"
        assert checks[0].max_abs_diff == 0.0
