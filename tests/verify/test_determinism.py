"""Seeded determinism: identical config + seed => bit-identical results.

Guards the frontier engine's RNG discipline (PR 1 vectorised the whole
sampling pipeline; any hidden nondeterminism — dict ordering, unseeded
generators, in-place aliasing — would break the golden corpus silently).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import HybridGNN, HybridGNNConfig, SkipGramTrainer, TrainerConfig
from repro.datasets import load_dataset, split_edges
from repro.eval import evaluate_link_prediction

SEED = 13

TRAINER_CONFIG = TrainerConfig(
    epochs=2, batch_size=128, num_walks=1, walk_length=6, window=2, patience=2,
    max_batches_per_epoch=8,
)
MODEL_CONFIG = HybridGNNConfig(
    base_dim=8, edge_dim=4, metapath_fanouts=(3, 2, 2, 2, 2, 2),
    exploration_fanout=3, exploration_depth=1, eval_samples=2,
)


@pytest.fixture(scope="module")
def amazon_setup():
    dataset = load_dataset("amazon", scale=0.1, seed=3)
    split = split_edges(dataset.graph, rng=SEED + 10_000)
    return dataset, split


def _train_once(dataset, split):
    schemes = dataset.all_schemes()
    model = HybridGNN(split.train_graph, schemes, MODEL_CONFIG, rng=SEED)
    trainer = SkipGramTrainer(
        model, schemes, split, config=TRAINER_CONFIG, rng=SEED + 1
    )
    history = trainer.fit()
    relation = split.train_graph.schema.relationships[0]
    nodes = np.arange(min(32, split.train_graph.num_nodes))
    embeddings = model.node_embeddings(nodes, relation)
    report = evaluate_link_prediction(model, split.test)
    return history, embeddings, report


def test_two_runs_are_bit_identical(amazon_setup):
    dataset, split = amazon_setup
    history_a, emb_a, report_a = _train_once(dataset, split)
    history_b, emb_b, report_b = _train_once(dataset, split)

    # Training trajectory: losses and validation scores match exactly.
    assert history_a.losses == history_b.losses
    assert history_a.val_scores == history_b.val_scores
    assert history_a.best_epoch == history_b.best_epoch

    # Embeddings: bit-identical, not merely close.
    assert emb_a.shape == emb_b.shape
    assert np.array_equal(emb_a, emb_b)

    # Metrics: every per-relation value identical.
    assert report_a.per_relation == report_b.per_relation


def test_different_seed_changes_the_run(amazon_setup):
    dataset, split = amazon_setup
    schemes = dataset.all_schemes()
    relation = split.train_graph.schema.relationships[0]
    nodes = np.arange(16)
    embeddings = []
    for seed in (SEED, SEED + 99):
        model = HybridGNN(split.train_graph, schemes, MODEL_CONFIG, rng=seed)
        embeddings.append(model.node_embeddings(nodes, relation))
    assert not np.array_equal(embeddings[0], embeddings[1])


def test_pair_generation_is_seeded(amazon_setup):
    dataset, split = amazon_setup
    schemes = dataset.all_schemes()

    def pairs_once():
        model = HybridGNN(split.train_graph, schemes, MODEL_CONFIG, rng=SEED)
        trainer = SkipGramTrainer(
            model, schemes, split, config=TRAINER_CONFIG, rng=SEED + 1
        )
        return trainer.generate_pairs()

    first, second = pairs_once(), pairs_once()
    assert set(first) == set(second)
    for relation in first:
        assert np.array_equal(first[relation], second[relation]), relation


def test_eval_sample_averaging_is_cached_and_deterministic(amazon_setup):
    dataset, split = amazon_setup
    schemes = dataset.all_schemes()
    model = HybridGNN(
        split.train_graph, schemes, replace(MODEL_CONFIG, eval_samples=3),
        rng=SEED,
    )
    relation = split.train_graph.schema.relationships[0]
    nodes = np.arange(8)
    first = model.node_embeddings(nodes, relation)
    # Cached: a second query returns the same array without resampling.
    second = model.node_embeddings(nodes, relation)
    assert np.array_equal(first, second)
