"""Shared fixtures: small deterministic graphs, datasets and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridGNNConfig, TrainerConfig
from repro.datasets import load_dataset, split_edges
from repro.graph import GraphBuilder, GraphSchema


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_schema():
    """Two node types, two relationships (a minimal G3 network)."""
    return GraphSchema(["user", "item"], ["view", "buy"])


@pytest.fixture
def small_graph(small_schema):
    """A tiny hand-built multiplex graph.

    Users 0-2, items 3-6.  ``view`` is denser than ``buy`` and they overlap
    on (0, 3) — multiplexity.
    """
    builder = GraphBuilder(small_schema)
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


@pytest.fixture(scope="session")
def taobao_dataset():
    """A small Taobao-alike shared across tests (session-scoped: read-only)."""
    return load_dataset("taobao", scale=0.25, seed=7)


@pytest.fixture(scope="session")
def taobao_split(taobao_dataset):
    return split_edges(taobao_dataset.graph, rng=8)


@pytest.fixture
def tiny_hybrid_config():
    return HybridGNNConfig(
        base_dim=8, edge_dim=4, metapath_fanouts=(3, 2, 2, 2, 2, 2),
        exploration_fanout=3, exploration_depth=1,
    )


@pytest.fixture
def tiny_trainer_config():
    return TrainerConfig(
        epochs=2, batch_size=128, num_walks=1, walk_length=6, window=2,
        patience=2,
    )
