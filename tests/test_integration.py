"""End-to-end integration tests: the whole pipeline on every dataset-alike.

These are the repository's "does it actually work" tests: generate a
dataset, split it, train HybridGNN, and check it learns (beats chance by a
clear margin), plus the full-table smoke of the experiment harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    SkipGramTrainer,
    TrainerConfig,
)
from repro.datasets import available_datasets, load_dataset, split_edges
from repro.eval import evaluate_link_prediction, evaluate_ranking

pytestmark = pytest.mark.integration

TRAIN_CONFIG = TrainerConfig(
    epochs=6, batch_size=256, num_walks=3, walk_length=10, window=3, patience=6,
    learning_rate=2e-2,
)
MODEL_CONFIG = HybridGNNConfig(
    base_dim=32, edge_dim=16, metapath_fanouts=(4, 3, 2, 2, 2, 2),
    exploration_fanout=4, exploration_depth=2,
)


# taobao-xl is a benchmark-scale alike (hundreds of thousands of nodes even
# at small scales); the sharded trainer covers it in tests/train/ and
# benchmarks/bench_training.py.
@pytest.mark.parametrize(
    "name", [d for d in available_datasets() if d != "taobao-xl"]
)
def test_hybridgnn_learns_on_every_dataset(name):
    dataset = load_dataset(name, scale=0.25, seed=11)
    split = split_edges(dataset.graph, rng=12)
    schemes = dataset.all_schemes()
    model = HybridGNN(split.train_graph, schemes, MODEL_CONFIG, rng=13)
    trainer = SkipGramTrainer(model, schemes, split, TRAIN_CONFIG, rng=14)
    history = trainer.fit()
    assert history.losses[-1] < history.losses[0]

    report = evaluate_link_prediction(model, split.test)
    assert report["roc_auc"] > 60.0, f"{name}: ROC-AUC {report['roc_auc']:.1f}"

    ranking = evaluate_ranking(
        model, split.train_graph, split.test, k=10, max_sources=20,
        rng=np.random.default_rng(15),
    )
    assert 0.0 <= ranking["pr_at_k"] <= 1.0
    assert 0.0 <= ranking["hr_at_k"] <= 1.0


def test_embeddings_are_deterministic_given_cache():
    dataset = load_dataset("amazon", scale=0.25, seed=0)
    split = split_edges(dataset.graph, rng=1)
    model = HybridGNN(split.train_graph, dataset.all_schemes(), MODEL_CONFIG, rng=2)
    first = model.node_embeddings(np.arange(10), "common_bought")
    second = model.node_embeddings(np.arange(10), "common_bought")
    np.testing.assert_array_equal(first, second)


def test_full_pipeline_reproducible_end_to_end():
    """Same seeds -> identical test metrics (bitwise)."""

    def run():
        dataset = load_dataset("amazon", scale=0.2, seed=5)
        split = split_edges(dataset.graph, rng=6)
        schemes = dataset.all_schemes()
        model = HybridGNN(split.train_graph, schemes, MODEL_CONFIG, rng=7)
        trainer = SkipGramTrainer(
            model, schemes, split,
            TrainerConfig(epochs=2, batch_size=128, num_walks=1, walk_length=6,
                          window=2, patience=2),
            rng=8,
        )
        trainer.fit()
        return evaluate_link_prediction(model, split.test)["roc_auc"]

    assert run() == pytest.approx(run(), abs=1e-9)
