"""End-to-end ``repro check-model`` CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestCheckModelCLI:
    def test_hybridgnn_strict_text(self, capsys):
        code = main([
            "check-model", "--dataset", "amazon", "--scale", "0.15",
            "--strict",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "HybridGNN" in out
        assert "PASS" in out

    def test_json_schema(self, capsys):
        from repro.check.report import CHECK_SCHEMA_VERSION

        code = main([
            "check-model", "--dataset", "amazon", "--scale", "0.15",
            "--strict", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == CHECK_SCHEMA_VERSION
        assert payload["strict"] is True
        assert payload["passed"] is True
        (report,) = payload["reports"]
        assert report["model"] == "HybridGNN"
        assert report["dataset"] == "amazon"
        assert report["graph"]["num_ops"] > 0

    def test_baseline_model(self, capsys):
        code = main([
            "check-model", "--dataset", "amazon", "--scale", "0.15",
            "--model", "GCN", "--strict",
        ])
        assert code == 0
        assert "GCN" in capsys.readouterr().out

    def test_self_test_flag(self, capsys):
        code = main(["check-model", "--self-test"])
        assert code == 0
        captured = capsys.readouterr()
        assert "self-test: ok" in captured.out + captured.err
        # Both the clean stock report and the flagged mis-wired one render.
        assert "MiswiredHybridGNN" in captured.out

    def test_verify_transfer_suite(self, capsys):
        code = main(["verify", "--suite", "transfer", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "transfer.coverage" in out
