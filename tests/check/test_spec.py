"""Unit tests for the shape/dtype spec lattice (repro.check.spec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.spec import (
    Dim,
    ShapeSpec,
    SpecError,
    TensorSpec,
    broadcast_specs,
    promote_dtypes,
)


class TestDim:
    def test_concrete_render(self):
        assert Dim(16).render() == "16"
        assert not Dim(16).is_symbolic

    def test_symbolic_render(self):
        dim = Dim(13, "B")
        assert dim.render() == "B"
        assert dim.is_symbolic


class TestShapeSpec:
    def test_concrete_roundtrip(self):
        spec = ShapeSpec.concrete((3, 4))
        assert spec.values() == (3, 4)
        assert spec.rank == 2
        assert spec.size() == 12
        assert spec.render() == "(3, 4)"

    def test_symbolized_tags_matching_values(self):
        spec = ShapeSpec.symbolized((13, 16, 13), {13: "B"})
        assert spec.render() == "(B, 16, B)"
        assert spec.values() == (13, 16, 13)
        assert spec.is_symbolic

    def test_scalar(self):
        spec = ShapeSpec.concrete(())
        assert spec.rank == 0
        assert spec.size() == 1
        assert not spec.is_symbolic


class TestTensorSpec:
    def test_render_and_nbytes(self):
        spec = TensorSpec(ShapeSpec.symbolized((13, 4), {13: "B"}), "float64")
        assert spec.render() == "(B, 4) float64"
        assert spec.nbytes() == 13 * 4 * 8


class TestBroadcastSpecs:
    def test_equal_shapes_no_events(self):
        shape, events = broadcast_specs(
            [ShapeSpec.concrete((3, 4)), ShapeSpec.concrete((3, 4))]
        )
        assert shape.values() == (3, 4)
        assert events == []

    def test_stretch_across_concrete_dim_is_benign(self):
        shape, events = broadcast_specs(
            [ShapeSpec.concrete((3, 4)), ShapeSpec.concrete((1, 4))]
        )
        assert shape.values() == (3, 4)
        (event,) = events
        assert event.kind == "stretch"
        assert not event.hazardous

    def test_stretch_across_symbolic_dim_is_hazardous(self):
        shape, events = broadcast_specs(
            [
                ShapeSpec.symbolized((13, 4), {13: "B"}),
                ShapeSpec.concrete((1, 4)),
            ]
        )
        assert shape.render() == "(B, 4)"
        stretches = [e for e in events if e.kind == "stretch"]
        assert stretches and all(e.hazardous for e in stretches)

    def test_rank_expand_of_concrete_bias_is_benign(self):
        shape, events = broadcast_specs(
            [
                ShapeSpec.symbolized((13, 4), {13: "B"}),
                ShapeSpec.concrete((4,)),
            ]
        )
        assert shape.render() == "(B, 4)"
        expands = [e for e in events if e.kind == "rank_expand"]
        assert expands and all(not e.hazardous for e in expands)

    def test_rank_expand_of_symbolic_operand_is_hazardous(self):
        shape, events = broadcast_specs(
            [
                ShapeSpec.concrete((5, 13, 4)),
                ShapeSpec.symbolized((13, 4), {13: "B"}),
            ]
        )
        assert shape.values() == (5, 13, 4)
        expands = [e for e in events if e.kind == "rank_expand"]
        assert expands and all(e.hazardous for e in expands)

    def test_incompatible_shapes_raise(self):
        with pytest.raises(SpecError):
            broadcast_specs(
                [ShapeSpec.concrete((3, 4)), ShapeSpec.concrete((5, 4))]
            )

    def test_matches_numpy_broadcasting(self, rng):
        checked = 0
        while checked < 25:
            shape_a = tuple(
                int(d) for d in rng.choice([1, 2, 3], size=rng.integers(0, 4))
            )
            shape_b = tuple(
                int(d) for d in rng.choice([1, 2, 3], size=rng.integers(0, 4))
            )
            try:
                expected = np.broadcast_shapes(shape_a, shape_b)
            except ValueError:
                with pytest.raises(SpecError):
                    broadcast_specs(
                        [ShapeSpec.concrete(shape_a), ShapeSpec.concrete(shape_b)]
                    )
                continue
            shape, _ = broadcast_specs(
                [ShapeSpec.concrete(shape_a), ShapeSpec.concrete(shape_b)]
            )
            assert shape.values() == expected
            checked += 1


class TestPromoteDtypes:
    def test_same_dtype(self):
        assert promote_dtypes(["float64", "float64"]) == "float64"

    def test_promotion_follows_numpy(self):
        assert promote_dtypes(["float32", "float64"]) == str(
            np.result_type(np.float32, np.float64)
        )
