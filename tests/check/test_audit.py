"""Graph auditor tests: the mis-wired HybridGNN variant must be flagged
with the offending parameter names; the stock model must audit clean."""

from __future__ import annotations

import pytest

from repro.check import (
    build_miswired_report,
    build_stock_report,
    run_self_test,
)


@pytest.fixture(scope="module")
def reports():
    ok, messages, reports = run_self_test(seed=0)
    assert ok, messages
    return reports


class TestStockModel:
    def test_strict_clean(self, reports):
        stock = reports["stock"]
        assert stock.passed(strict=True)
        assert stock.errors() == []
        assert stock.warnings() == []

    def test_exempted_params_downgraded_to_info(self, reports):
        # self_projection is unreachable by design (fallback path); the
        # exemption must keep it visible as info, not silently drop it.
        infos = [
            f for f in reports["stock"].findings
            if f.code == "C005" and f.severity == "info"
        ]
        assert any(f.param.startswith("self_projection.") for f in infos)

    def test_graph_summary_populated(self, reports):
        stock = reports["stock"]
        assert stock.num_ops > 0
        assert stock.num_parameters > 0
        assert stock.parameter_bytes > 0
        assert stock.activation_bytes > 0
        assert stock.top_activations


class TestMiswiredModel:
    def test_orphan_parameter_named(self, reports):
        unreachable = {
            f.param
            for f in reports["miswired"].findings
            if f.code == "C005" and f.severity == "warning"
        }
        assert "orphan_bias" in unreachable

    def test_detached_relations_parameters_named(self, reports):
        unreachable = {
            f.param
            for f in reports["miswired"].findings
            if f.code == "C005" and f.severity == "warning"
        }
        assert any(name.startswith("flows.") for name in unreachable)
        assert any(
            name.startswith("metapath_attention.") for name in unreachable
        )

    def test_batch_stretch_broadcast_flagged(self, reports):
        broadcasts = [
            f for f in reports["miswired"].findings if f.code == "C003"
        ]
        assert broadcasts
        assert any("B" in f.message for f in broadcasts)

    def test_dead_subgraph_flagged(self, reports):
        dead = [f for f in reports["miswired"].findings if f.code == "C006"]
        assert dead

    def test_no_shape_errors(self, reports):
        # The seeded defects are wiring-level; shapes still check, so the
        # report must fail strict on warnings alone, without C001/C002.
        miswired = reports["miswired"]
        assert miswired.errors() == []
        assert miswired.passed(strict=False)
        assert not miswired.passed(strict=True)


class TestReportSerialization:
    def test_to_dict_schema(self):
        from repro.check.report import CHECK_SCHEMA_VERSION

        report = build_stock_report(seed=0)
        payload = report.to_dict()
        assert payload["schema_version"] == CHECK_SCHEMA_VERSION
        assert payload["model"] == "HybridGNN"
        for key in ("graph", "memory", "findings"):
            assert key in payload

    def test_findings_sorted_severity_first(self):
        report = build_miswired_report(seed=0)
        ordered = report.sorted_findings()
        ranks = {"error": 0, "warning": 1, "info": 2}
        observed = [ranks[f.severity] for f in ordered]
        assert observed == sorted(observed)

    def test_format_text_has_verdict(self):
        from repro.check.report import format_text

        stock = build_stock_report(seed=0)
        text = format_text(stock, strict=True)
        assert "PASS" in text
        miswired = build_miswired_report(seed=0)
        text = format_text(miswired, strict=True)
        assert "FAIL" in text
