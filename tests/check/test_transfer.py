"""Transfer-rule coverage and abstract-vs-concrete agreement tests.

The coverage test mirrors ``uncovered_targets()`` in the gradcheck
registry: adding a differentiable op without a transfer rule fails here
(and in lint rule R006's graph-level analogue, check finding C001).  The
hypothesis tests assert the abstract interpreter's contract — for random
concrete inputs, propagating specs through a traced program reproduces
exactly the shape and dtype the concrete forward produced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.trace import trace
from repro.check.transfer import (
    FUNCTIONAL_OPS,
    OpContext,
    propagate,
    required_transfer_ops,
    transfer_rules,
    uncovered_transfer_rules,
)
from repro.nn import Tensor, concat, stack, where
from repro.verify.gradcheck import gradcheck_cases, tensor_ops


class TestCoverage:
    def test_every_required_op_has_a_transfer_rule(self):
        """Mirror of ``uncovered_targets()``: a new differentiable op must
        ship a transfer rule or this fails before C001 ever fires."""
        assert uncovered_transfer_rules() == []

    def test_required_set_spans_registry_and_functionals(self):
        required = required_transfer_ops()
        for op in tensor_ops():
            assert op in required
        for op in FUNCTIONAL_OPS:
            assert op in required

    def test_composed_ops_still_required(self):
        # sub and mean lower to add/neg and sum/mul in the tracer, but the
        # transfer table must keep rules for them: coverage is defined by
        # the public op surface, not by what today's lowering emits.
        required = required_transfer_ops()
        assert "sub" in required and "mean" in required
        rules = transfer_rules()
        assert "sub" in rules and "mean" in rules


def _assert_trace_propagates_exactly(tracer, symbols=None):
    result = propagate(tracer.nodes, symbols)
    assert result.problems == [], [p.message for p in result.problems]
    for node in tracer.nodes:
        spec = result.spec_of(node.index)
        assert spec.shape.values() == node.shape, node.label()
        assert np.dtype(spec.dtype) == np.dtype(node.dtype), node.label()


class TestPropagationMatchesConcrete:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_gradcheck_registry_programs(self, seed):
        """Every registered gradcheck case, rebuilt with random inputs,
        propagates abstractly to the observed shapes and dtypes."""
        for case in gradcheck_cases():
            rng = np.random.default_rng(seed)
            func, _tensors, _names = case.build(rng)
            with trace() as tracer:
                func()
            _assert_trace_propagates_exactly(tracer)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 6),
        st.booleans(),
        st.sampled_from([None, 0, 1, -1]),
        st.integers(0, 2**31 - 1),
    )
    def test_random_elementwise_reduce_program(self, rows, cols, keepdims,
                                               axis, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)
        b = Tensor(rng.standard_normal((1, cols)), requires_grad=True)
        bias = Tensor(rng.standard_normal(cols), requires_grad=True)
        with trace() as tracer:
            out = ((a * b + bias).tanh() / 2.0).sum(axis=axis, keepdims=keepdims)
            if out.data.ndim:
                out = out.sum()
        _assert_trace_propagates_exactly(tracer, symbols={rows: "B"})

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    def test_random_matmul_program(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
        w = Tensor(rng.standard_normal((k, n)), requires_grad=True)
        with trace() as tracer:
            ((a @ w).relu().softmax(axis=-1)).sum()
        _assert_trace_propagates_exactly(tracer, symbols={m: "B"})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 3), st.integers(2, 5), st.integers(0, 2**31 - 1))
    def test_random_functional_program(self, parts, dim, seed):
        rng = np.random.default_rng(seed)
        pieces = [
            Tensor(rng.standard_normal((2, dim)), requires_grad=True)
            for _ in range(parts)
        ]
        gate = Tensor(rng.standard_normal((2 * parts, dim)))
        with trace() as tracer:
            joined = concat(pieces, axis=0)
            stacked = stack(pieces, axis=0)
            picked = where(gate.data > 0, joined, -joined)
            (picked.sum() + stacked.sum()).sum()
        _assert_trace_propagates_exactly(tracer)


def _run_rule(op, inputs, attrs=None, observed_shape=(), observed_dtype="float64"):
    ctx = OpContext(
        op=op,
        inputs=list(inputs),
        attrs=dict(attrs or {}),
        observed_shape=tuple(observed_shape),
        observed_dtype=observed_dtype,
        symbols={},
    )
    return transfer_rules()[op](ctx), ctx


class TestComposedOpRules:
    """sub/mean never appear in traces (they lower to other ops), so their
    rules are exercised directly against numpy ground truth."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_sub_matches_numpy(self, rows, cols, seed):
        from repro.check.spec import ShapeSpec, TensorSpec

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, cols))
        b = rng.standard_normal((cols,))
        spec, _ = _run_rule(
            "sub",
            [
                TensorSpec(ShapeSpec.concrete(a.shape), str(a.dtype)),
                TensorSpec(ShapeSpec.concrete(b.shape), str(b.dtype)),
            ],
        )
        out = a - b
        assert spec.shape.values() == out.shape
        assert np.dtype(spec.dtype) == out.dtype

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.sampled_from([None, 0, 1, -1, (0, 1)]),
        st.booleans(),
        st.integers(0, 2**31 - 1),
    )
    def test_mean_matches_numpy(self, rows, cols, axis, keepdims, seed):
        from repro.check.spec import ShapeSpec, TensorSpec

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, cols))
        spec, _ = _run_rule(
            "mean",
            [TensorSpec(ShapeSpec.concrete(x.shape), str(x.dtype))],
            attrs={"axis": axis, "keepdims": keepdims},
        )
        out = np.mean(x, axis=axis, keepdims=keepdims)
        assert spec.shape.values() == out.shape
        assert np.dtype(spec.dtype) == out.dtype


class TestPropagationDiagnostics:
    def test_unknown_op_reports_missing_rule(self):
        from repro.check.trace import Tracer

        tracer = Tracer()
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        tracer.index_of(x)
        tracer.handle(Tensor(np.ones((2, 2))), (x,), "frobnicate", None)
        result = propagate(tracer.nodes)
        assert [p.kind for p in result.problems] == ["missing_rule"]
        assert "frobnicate" in result.problems[0].message

    def test_shape_lie_reports_mismatch(self):
        from repro.check.trace import Tracer

        tracer = Tracer()
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        tracer.index_of(x)
        # Claim a relu changed the shape: the rule says (2, 3), the
        # "observed" output says (2, 4) -> mismatch.
        tracer.handle(Tensor(np.ones((2, 4))), (x,), "relu", None)
        result = propagate(tracer.nodes)
        assert [p.kind for p in result.problems] == ["mismatch"]

    def test_mismatch_falls_back_to_observed_for_downstream(self):
        from repro.check.trace import Tracer

        tracer = Tracer()
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        tracer.index_of(x)
        bad = Tensor(np.ones((2, 4)))
        tracer.handle(bad, (x,), "relu", None)
        good = Tensor(np.ones((2, 4)))
        tracer.handle(good, (bad,), "tanh", None)
        result = propagate(tracer.nodes)
        # Only the lying node is reported; downstream continues from the
        # observed spec instead of cascading.
        assert len(result.problems) == 1
        assert result.spec_of(tracer.index_of(good)).shape.values() == (2, 4)


class TestVerifySuite:
    def test_transfer_suite_passes(self):
        from repro.check.crosscheck import run_transfer_suite

        checks = run_transfer_suite(seed=0)
        assert checks[0].name == "transfer.coverage"
        failed = [c for c in checks if not c.passed]
        assert failed == [], [
            (c.name, c.messages) for c in failed
        ]
        # Every gradcheck case plus the coverage pseudo-check.
        assert len(checks) == len(gradcheck_cases()) + 1
