"""C007 state validation: checkpoints and serving tables fail loudly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.state import (
    state_dict_findings,
    table_findings,
    verify_state_dict,
    verify_table,
)
from repro.errors import CheckError
from repro.nn import Linear


@pytest.fixture
def model(rng):
    return Linear(4, 3, rng=rng)


@pytest.fixture
def good_state(model):
    return {name: np.asarray(p.data) for name, p in model.named_parameters()}


class TestStateDictFindings:
    def test_clean_state_has_no_findings(self, model, good_state):
        assert state_dict_findings(model, good_state) == []
        verify_state_dict(model, good_state)  # must not raise

    def test_missing_parameter(self, model, good_state):
        del good_state["weight"]
        (finding,) = state_dict_findings(model, good_state)
        assert finding.code == "C007"
        assert finding.param == "weight"
        assert "missing" in finding.message
        assert "(4, 3) float64" in finding.message  # expected spec rendered

    def test_unexpected_entry(self, model, good_state):
        good_state["extra"] = np.zeros(2)
        (finding,) = state_dict_findings(model, good_state)
        assert finding.param == "extra"
        assert "unexpected" in finding.message

    def test_shape_mismatch_renders_both_specs(self, model, good_state):
        good_state["weight"] = np.zeros((5, 3))
        (finding,) = state_dict_findings(model, good_state)
        assert finding.param == "weight"
        assert "(4, 3) float64" in finding.message
        assert "(5, 3) float64" in finding.message

    def test_non_floating_dtype(self, model, good_state):
        good_state["bias"] = np.zeros(3, dtype=np.int64)
        (finding,) = state_dict_findings(model, good_state)
        assert finding.param == "bias"
        assert "not floating point" in finding.message

    def test_non_finite_values(self, model, good_state):
        bad = good_state["bias"].copy()
        bad[0] = np.nan
        good_state["bias"] = bad
        (finding,) = state_dict_findings(model, good_state)
        assert finding.param == "bias"
        assert "non-finite" in finding.message

    def test_verify_raises_with_named_param(self, model, good_state):
        good_state["weight"] = np.zeros((5, 3))
        with pytest.raises(CheckError, match="weight"):
            verify_state_dict(model, good_state, source="test.npz")


class TestCheckpointLoadIntegration:
    def test_malformed_checkpoint_rejected_by_name(self, rng, tmp_path):
        from repro.core.persistence import load_checkpoint_into, save_checkpoint

        saved = Linear(4, 3, rng=rng)
        path = save_checkpoint(saved, tmp_path / "ckpt")
        target = Linear(5, 3, rng=rng)  # different architecture
        with pytest.raises(CheckError) as excinfo:
            load_checkpoint_into(target, path)
        assert "weight" in str(excinfo.value)
        assert "C007" in str(excinfo.value)

    def test_well_formed_checkpoint_still_loads(self, rng, tmp_path):
        from repro.core.persistence import load_checkpoint_into, save_checkpoint

        saved = Linear(4, 3, rng=rng)
        path = save_checkpoint(saved, tmp_path / "ckpt")
        target = Linear(4, 3, rng=rng)
        load_checkpoint_into(target, path)
        np.testing.assert_array_equal(
            np.asarray(target.weight.data), np.asarray(saved.weight.data)
        )


class TestTableFindings:
    def test_clean_table(self):
        table = np.zeros((7, 4))
        assert table_findings(table, 7, "view") == []
        verify_table(table, 7, "view")  # must not raise

    def test_wrong_rank(self):
        (finding,) = table_findings(np.zeros(7), 7, "view")
        assert finding.code == "C007"
        assert "view" in finding.message

    def test_wrong_row_count(self):
        (finding,) = table_findings(np.zeros((5, 4)), 7, "view")
        assert "5 rows for 7 nodes" in finding.message

    def test_non_floating(self):
        (finding,) = table_findings(np.zeros((7, 4), dtype=np.int32), 7, "view")
        assert "not floating point" in finding.message

    def test_verify_raises(self):
        with pytest.raises(CheckError, match="view"):
            verify_table(np.zeros((5, 4)), 7, "view")


class TestServingIntegration:
    def test_cache_rejects_malformed_table(self, small_graph):
        from repro.serving.engine import RelationEmbeddingCache

        class BrokenEmbedder:
            relations = ["view"]

            def node_embeddings(self, nodes, relation):
                return np.zeros((3, 4))  # wrong row count for the graph

        cache = RelationEmbeddingCache(
            BrokenEmbedder(), num_nodes=small_graph.num_nodes
        )
        with pytest.raises(CheckError, match="view"):
            cache.table("view")
