"""Optimiser behaviour: SGD and Adam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    """(p - 3)^2 summed — unique minimum at p = 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(param)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.zeros(1))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(param)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return abs(float(param.data[0]) - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.full(3, 10.0))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        # Zero loss gradient: decay alone should shrink the parameter.
        param.grad = np.zeros(3)
        opt.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.ones(2))
        opt = SGD([param], lr=0.1)
        opt.step()  # no grad: no change, no crash
        np.testing.assert_array_equal(param.data, np.ones(2))

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            loss = quadratic_loss(param)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        """After one step from zero moments, the update is ~lr-sized."""
        param = Parameter(np.asarray([0.0]))
        opt = Adam([param], lr=0.5)
        param.grad = np.asarray([1.0])
        opt.step()
        assert float(param.data[0]) == pytest.approx(-0.5, rel=1e-4)

    def test_zero_grad(self):
        param = Parameter(np.zeros(2))
        opt = Adam([param])
        param.grad = np.ones(2)
        opt.zero_grad()
        assert param.grad is None

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=-1.0)
