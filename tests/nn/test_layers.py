"""Layer behaviour: Linear, Embedding, Dropout, LayerNorm, attention, Sequential."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    SelfAttention,
    Sequential,
    Tensor,
)
from repro.nn.gradcheck import check_gradients


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_batched_input(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((2, 5, 4))))
        assert out.shape == (2, 5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradients(self):
        layer = Linear(3, 2, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: layer(x).sum(), [x, layer.weight, layer.bias])


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 6, rng=0)
        out = table(np.asarray([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_lookup_matches_weight_rows(self):
        table = Embedding(10, 6, rng=0)
        out = table(np.asarray([3]))
        np.testing.assert_array_equal(out.data[0], table.weight.data[3])

    def test_gradient_reaches_only_used_rows(self):
        table = Embedding(5, 2, rng=0)
        table(np.asarray([1, 3])).sum().backward()
        grad = table.weight.grad
        assert np.all(grad[[0, 2, 4]] == 0)
        assert np.all(grad[[1, 3]] == 1)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        assert set(np.unique(out)).issubset({0.0, 2.0})
        # Roughly half survive.
        assert 0.4 < (out > 0).mean() < 0.6

    def test_zero_probability_is_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        layer = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(2.0, 3.0, size=(4, 8)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gradients(self):
        layer = LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.gamma, layer.beta])


class TestSelfAttention:
    def test_output_shape(self):
        attn = SelfAttention(6, 4, rng=0)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 4)

    def test_attention_weights_are_distributions(self):
        attn = SelfAttention(6, 4, rng=0)
        attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 6))))
        weights = attn.last_attention_weights
        assert weights.shape == (2, 5, 5)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0)
        assert np.all(weights >= 0)

    def test_gradients(self):
        attn = SelfAttention(3, 2, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 3)), requires_grad=True)
        check_gradients(lambda: attn(x).sum(), [x, attn.query.weight, attn.value.weight])

    def test_permutation_equivariance(self):
        """Self-attention commutes with permutations of the sequence."""
        attn = SelfAttention(5, 4, rng=0)
        x = np.random.default_rng(2).normal(size=(1, 4, 5))
        out = attn(Tensor(x)).data
        perm = np.asarray([2, 0, 3, 1])
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(3, 5, rng=0), ReLU(), Linear(5, 2, rng=1))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
