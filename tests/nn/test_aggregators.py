"""The three neighborhood aggregators of Sect. III-C."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LSTMAggregator,
    MaxPoolAggregator,
    MeanAggregator,
    Tensor,
    make_aggregator,
)
from repro.nn.gradcheck import check_gradients

KINDS = ["mean", "pool", "lstm"]


@pytest.mark.parametrize("kind", KINDS)
class TestAllAggregators:
    def test_output_shape(self, kind):
        agg = make_aggregator(kind, 4, 6, rng=0)
        out = agg(Tensor(np.ones((3, 4))), Tensor(np.ones((3, 5, 4))))
        assert out.shape == (3, 6)

    def test_gradients_flow_to_both_inputs(self, kind):
        agg = make_aggregator(kind, 3, 8, rng=0)
        rng = np.random.default_rng(1)
        # A large batch guarantees some ReLU units fire.
        self_feats = Tensor(rng.normal(size=(16, 3)), requires_grad=True)
        neigh = Tensor(rng.normal(size=(16, 4, 3)), requires_grad=True)
        agg(self_feats, neigh).sum().backward()
        assert self_feats.grad is not None and np.any(self_feats.grad != 0)
        assert neigh.grad is not None and np.any(neigh.grad != 0)

    def test_output_nonnegative(self, kind):
        """All aggregators end in ReLU."""
        agg = make_aggregator(kind, 3, 5, rng=0)
        rng = np.random.default_rng(2)
        out = agg(Tensor(rng.normal(size=(4, 3))), Tensor(rng.normal(size=(4, 6, 3))))
        assert np.all(out.data >= 0)


class TestMeanAggregator:
    def test_neighbor_permutation_invariance(self):
        agg = MeanAggregator(3, 4, rng=0)
        rng = np.random.default_rng(1)
        self_feats = Tensor(rng.normal(size=(2, 3)))
        neigh = rng.normal(size=(2, 5, 3))
        out1 = agg(self_feats, Tensor(neigh)).data
        out2 = agg(self_feats, Tensor(neigh[:, ::-1].copy())).data
        np.testing.assert_allclose(out1, out2)

    def test_gradcheck(self):
        agg = MeanAggregator(2, 2, rng=0)
        rng = np.random.default_rng(3)
        s = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        n = Tensor(rng.normal(size=(2, 3, 2)), requires_grad=True)
        check_gradients(lambda: agg(s, n).sum(), [s, n])


class TestMaxPoolAggregator:
    def test_neighbor_permutation_invariance(self):
        agg = MaxPoolAggregator(3, 4, rng=0)
        rng = np.random.default_rng(1)
        self_feats = Tensor(rng.normal(size=(2, 3)))
        neigh = rng.normal(size=(2, 5, 3))
        out1 = agg(self_feats, Tensor(neigh)).data
        out2 = agg(self_feats, Tensor(neigh[:, ::-1].copy())).data
        np.testing.assert_allclose(out1, out2)


class TestLSTMAggregator:
    def test_order_sensitivity(self):
        """Unlike mean/pool, the LSTM aggregator is order-sensitive."""
        agg = LSTMAggregator(3, 4, rng=0)
        rng = np.random.default_rng(1)
        self_feats = Tensor(rng.normal(size=(1, 3)))
        neigh = rng.normal(size=(1, 5, 3))
        out1 = agg(self_feats, Tensor(neigh)).data
        out2 = agg(self_feats, Tensor(neigh[:, ::-1].copy())).data
        assert not np.allclose(out1, out2)

    def test_gradcheck(self):
        agg = LSTMAggregator(2, 2, rng=0)
        rng = np.random.default_rng(3)
        s = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        n = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
        check_gradients(lambda: agg(s, n).sum(), [s, n], atol=1e-3, rtol=1e-3)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        make_aggregator("median", 2, 2)
