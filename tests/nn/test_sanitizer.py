"""Runtime autograd sanitizer: version counter, mutation tracking, anomalies.

Covers the contract documented in DESIGN.md ("Tensor version-counter
contract"): the sanctioned write path bumps ``Tensor.version``; with the
sanitizer enabled, mutating a tensor saved by a forward pass makes the
subsequent ``backward()`` raise :class:`~repro.errors.SanitizerError`
naming the op, instead of silently mis-computing gradients through stale
``_backward`` closures.  ``detect_anomaly()`` pins NaN/Inf to the creating
op.  Both are off by default and must add no per-op state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnomalyError, ReproError, SanitizerError
from repro.nn import (
    Tensor,
    anomaly_enabled,
    detect_anomaly,
    sanitize,
    sanitizer_enabled,
    set_detect_anomaly,
    set_sanitizer,
)


@pytest.fixture(autouse=True)
def _sanitizers_off_after():
    yield
    set_sanitizer(False)
    set_detect_anomaly(False)


class TestVersionCounter:
    def test_fresh_tensor_starts_at_zero(self):
        assert Tensor([1.0, 2.0]).version == 0

    def test_data_assignment_bumps_version(self):
        t = Tensor([1.0, 2.0])
        t.data = np.array([3.0, 4.0])
        assert t.version == 1
        t.data = t.data * 2
        assert t.version == 2

    def test_augmented_assignment_bumps_version(self):
        """``param.data -= update`` (the optimizer idiom) re-assigns the
        attribute, so it goes through the version-counted write path."""
        t = Tensor([1.0, 2.0])
        t.data -= 0.5
        assert t.version == 1
        np.testing.assert_allclose(t.data, [0.5, 1.5])

    def test_op_outputs_record_creating_op(self):
        x = Tensor([1.0], requires_grad=True)
        assert (x.exp()).op == "exp"
        assert (x + x).op == "add"
        assert x.op is None


class TestOffByDefault:
    def test_flags_default_off(self):
        assert not sanitizer_enabled()
        assert not anomaly_enabled()

    def test_no_per_op_state_when_disabled(self):
        """Zero-overhead claim: disabled runs save no version tuples."""
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x.exp() * x).sum()
        assert y._saved_versions is None
        assert all(p._saved_versions is None for p in y._parents)

    def test_mutation_goes_unnoticed_when_disabled(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.exp().sum()
        x.data = np.array([5.0, 6.0])
        y.backward()  # no raise: tracking is opt-in
        assert x.grad is not None

    def test_nan_goes_unnoticed_when_disabled(self):
        with np.errstate(divide="ignore"):
            out = Tensor([1.0], requires_grad=True) / Tensor([0.0])
        assert np.isinf(out.data).all()


class TestMutationTracking:
    def test_mutated_input_raises_naming_op_and_input(self):
        """Satellite regression: mutating an input between forward and
        backward raises instead of silently mis-computing gradients."""
        with sanitize():
            x = Tensor([1.0, 2.0], requires_grad=True, name="x")
            y = x.exp()
            loss = y.sum()
            x.data = np.array([9.0, 9.0])
            with pytest.raises(SanitizerError, match=r"op 'exp'") as excinfo:
                loss.backward()
        message = str(excinfo.value)
        assert "input 0" in message
        assert "'x'" in message
        assert "version 1, expected 0" in message

    def test_mutated_nongrad_operand_is_caught_too(self):
        """Operands with requires_grad=False still feed backward closures
        (e.g. ``mul`` reads ``other.data`` lazily)."""
        with sanitize():
            w = Tensor([2.0, 3.0], requires_grad=True)
            c = Tensor([4.0, 5.0], name="const")
            loss = (w * c).sum()
            c.data = np.array([0.0, 0.0])
            with pytest.raises(SanitizerError, match=r"op 'mul'"):
                loss.backward()

    def test_mutated_intermediate_is_caught_at_its_consumer(self):
        """The first op whose saved tensors drifted reports it: ``sum``
        consumed ``y``, so mutating ``y`` is caught as sum's input 0."""
        with sanitize():
            x = Tensor([1.0, 2.0], requires_grad=True)
            y = x.exp()  # exp's backward uses the saved output
            loss = y.sum()
            y.data = np.array([0.0, 0.0])
            with pytest.raises(SanitizerError, match=r"op 'sum'") as excinfo:
                loss.backward()
        assert "input 0" in str(excinfo.value)

    def test_mutated_final_output_is_caught_as_output(self):
        with sanitize():
            x = Tensor([1.0, 2.0], requires_grad=True)
            loss = x.exp().sum()
            loss.data = np.array(0.0)
            with pytest.raises(SanitizerError, match=r"output"):
                loss.backward()

    def test_sanitizer_error_is_a_repro_error(self):
        assert issubclass(SanitizerError, ReproError)
        assert issubclass(AnomalyError, SanitizerError)

    def test_clean_graph_passes_and_matches_untracked_gradients(self):
        """The sanitizer never alters numerics: gradients are bit-identical
        with tracking on and off."""
        def run():
            x = Tensor([[1.0, -2.0], [0.5, 3.0]], requires_grad=True)
            w = Tensor([[0.1, 0.2], [0.3, 0.4]], requires_grad=True)
            loss = ((x @ w).tanh() * x).sum()
            loss.backward()
            return x.grad.copy(), w.grad.copy()

        gx_off, gw_off = run()
        with sanitize():
            gx_on, gw_on = run()
        assert np.array_equal(gx_off, gx_on)
        assert np.array_equal(gw_off, gw_on)

    def test_mutation_after_backward_is_fine(self):
        with sanitize():
            x = Tensor([1.0, 2.0], requires_grad=True)
            loss = x.exp().sum()
            loss.backward()
            x.data = np.array([7.0, 8.0])  # graph already consumed
        assert x.version == 1

    def test_context_manager_restores_previous_state(self):
        assert not sanitizer_enabled()
        with sanitize():
            assert sanitizer_enabled()
            with sanitize():
                assert sanitizer_enabled()
            assert sanitizer_enabled()
        assert not sanitizer_enabled()
        previous = set_sanitizer(True)
        assert previous is False
        assert set_sanitizer(False) is True


class TestDetectAnomaly:
    def test_forward_nan_names_creating_op_and_parent_shapes(self):
        with detect_anomaly():
            a = Tensor([1.0, 2.0], requires_grad=True)
            b = Tensor([0.0, 1.0])
            with np.errstate(divide="ignore"):
                with pytest.raises(AnomalyError) as excinfo:
                    _ = a / b
        message = str(excinfo.value)
        assert "op 'truediv'" in message
        assert "1 non-finite value(s)" in message
        assert "parent shapes: (2,), (2,)" in message

    def test_backward_nonfinite_gradient_names_op_and_input(self):
        x = Tensor([0.0, 4.0], requires_grad=True, name="x")
        loss = (x ** 0.5).sum()  # d/dx sqrt at 0 is +inf
        with detect_anomaly():
            with np.errstate(divide="ignore"):
                with pytest.raises(AnomalyError) as excinfo:
                    loss.backward()
        message = str(excinfo.value)
        assert "backward of op 'pow'" in message
        assert "input 0 'x'" in message
        assert "(2,)" in message

    def test_nonfinite_seed_gradient_is_rejected(self):
        y = Tensor([1.0, 2.0], requires_grad=True).exp()
        with detect_anomaly():
            with pytest.raises(AnomalyError, match="seeded"):
                y.backward(np.array([np.nan, 1.0]))

    def test_finite_computation_is_untouched(self):
        with detect_anomaly():
            x = Tensor([1.0, 2.0], requires_grad=True)
            loss = (x.sigmoid() * 3.0).sum()
            loss.backward()
        np.testing.assert_allclose(
            x.grad, 3.0 * (1.0 / (1.0 + np.exp(-x.data)))
            * (1.0 - 1.0 / (1.0 + np.exp(-x.data)))
        )

    def test_context_manager_restores_previous_state(self):
        assert not anomaly_enabled()
        with detect_anomaly():
            assert anomaly_enabled()
        assert not anomaly_enabled()
