"""Module/Parameter container behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleDict, ModuleList, Parameter, Tensor


class Block(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 2, rng=0)
        self.layer_list = ModuleList([Linear(2, 2, rng=1), Linear(2, 2, rng=2)])
        self.layer_dict = ModuleDict({"a": Linear(2, 2, rng=3)})
        self.raw_list = [Parameter(np.zeros(3))]
        self.raw_dict = {"p": Parameter(np.zeros(4))}

    def forward(self, x):
        return self.child(x)


class TestParameterDiscovery:
    def test_finds_all_parameters(self):
        block = Block()
        names = {name for name, _ in block.named_parameters()}
        assert "weight" in names
        assert "child.weight" in names and "child.bias" in names
        assert "layer_list.items.0.weight" in names
        assert "layer_dict.items.a.weight" in names
        assert "raw_list.0" in names
        assert "raw_dict.p" in names

    def test_num_parameters(self):
        block = Block()
        expected = sum(p.size for p in block.parameters())
        assert block.num_parameters() == expected

    def test_zero_grad_clears_all(self):
        block = Block()
        x = Tensor(np.ones((1, 2)))
        block(x).sum().backward()
        assert any(p.grad is not None for p in block.parameters())
        block.zero_grad()
        assert all(p.grad is None for p in block.parameters())


class TestTrainEval:
    def test_train_flag_propagates(self):
        block = Block()
        block.eval()
        assert not block.training
        assert not block.child.training
        assert not block.layer_list[0].training
        assert not block.layer_dict["a"].training
        block.train()
        assert block.child.training


class TestStateDict:
    def test_roundtrip(self):
        block = Block()
        state = block.state_dict()
        for param in block.parameters():
            param.data += 1.0
        block.load_state_dict(state)
        for name, param in block.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])

    def test_state_dict_is_a_copy(self):
        block = Block()
        state = block.state_dict()
        block.weight.data += 5.0
        assert not np.allclose(state["weight"], block.weight.data)

    def test_missing_key_rejected(self):
        block = Block()
        state = block.state_dict()
        state.pop("weight")
        with pytest.raises(KeyError):
            block.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        block = Block()
        state = block.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            block.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        block = Block()
        state = block.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            block.load_state_dict(state)


class TestContainers:
    def test_module_list_append_and_iter(self):
        ml = ModuleList()
        ml.append(Linear(2, 2, rng=0))
        assert len(ml) == 1
        assert list(ml)[0] is ml[0]

    def test_containers_are_not_callable(self):
        with pytest.raises(NotImplementedError):
            ModuleList()()
        with pytest.raises(NotImplementedError):
            ModuleDict()()
