"""Property-based tests of the autograd engine (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn.gradcheck import numeric_gradient

SHAPES = st.tuples(st.integers(1, 4), st.integers(1, 4))


def arrays(shape):
    return hnp.arrays(
        dtype=np.float64,
        shape=shape,
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(lambda s: st.tuples(arrays(s), arrays(s))))
def test_addition_gradient_is_ones(data):
    a_data, b_data = data
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(a_data))
    np.testing.assert_allclose(b.grad, np.ones_like(b_data))


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(lambda s: st.tuples(arrays(s), arrays(s))))
def test_product_rule(data):
    a_data, b_data = data
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b_data)
    np.testing.assert_allclose(b.grad, a_data)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 3), st.integers(1, 4), st.integers(1, 3),
    st.data(),
)
def test_matmul_matches_numeric_gradient(m, k, n, data):
    a_data = data.draw(arrays((m, k)))
    b_data = data.draw(arrays((k, n)))
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).sum().backward()
    expected_a = numeric_gradient(lambda: (a @ b).sum(), a)
    np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(arrays))
def test_softmax_gradient_rows_sum_to_zero(a_data):
    """d/dx of any function of a softmax has zero row-sum gradient component
    for uniform upstream gradients (softmax is shift-invariant)."""
    a = Tensor(a_data, requires_grad=True)
    a.softmax(axis=-1).sum().backward()
    np.testing.assert_allclose(a.grad.sum(axis=-1), 0.0, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(arrays))
def test_sigmoid_bounded(a_data):
    out = Tensor(a_data).sigmoid().data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(arrays))
def test_exp_log_roundtrip(a_data):
    a = Tensor(a_data)
    np.testing.assert_allclose(a.exp().log().data, a_data, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(SHAPES.flatmap(arrays), st.integers(0, 1))
def test_sum_then_backward_counts_elements(a_data, axis):
    a = Tensor(a_data, requires_grad=True)
    a.sum(axis=axis).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(a_data))
