"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init


class TestXavier:
    def test_uniform_bounds(self):
        weights = init.xavier_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert weights.min() >= -limit and weights.max() <= limit
        assert weights.shape == (100, 50)

    def test_normal_std(self):
        weights = init.xavier_normal((200, 100), rng=0)
        expected_std = np.sqrt(2.0 / 300)
        assert abs(weights.std() - expected_std) < 0.2 * expected_std

    def test_gain_scales(self):
        base = init.xavier_uniform((50, 50), gain=1.0, rng=0)
        scaled = init.xavier_uniform((50, 50), gain=2.0, rng=0)
        np.testing.assert_allclose(scaled, 2.0 * base)

    def test_1d_shape(self):
        weights = init.xavier_uniform((10,), rng=0)
        assert weights.shape == (10,)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())


class TestSimpleInits:
    def test_normal(self):
        weights = init.normal((1000,), std=0.5, rng=0)
        assert abs(weights.std() - 0.5) < 0.05

    def test_uniform(self):
        weights = init.uniform((1000,), limit=0.3, rng=0)
        assert weights.min() >= -0.3 and weights.max() <= 0.3

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 4)), np.zeros((3, 4)))

    def test_deterministic_with_seed(self):
        a = init.normal((20,), rng=7)
        b = init.normal((20,), rng=7)
        np.testing.assert_array_equal(a, b)
