"""Numerical-stability behaviour of the autograd ops under extreme inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.loss import softplus
from repro.nn import Tensor


class TestSoftmaxStability:
    def test_large_logits(self):
        x = Tensor(np.asarray([[1000.0, 1000.0, -1000.0]]))
        out = x.softmax(axis=-1).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)
        np.testing.assert_allclose(out[0, :2], 0.5, atol=1e-9)

    def test_log_softmax_large_logits(self):
        x = Tensor(np.asarray([[800.0, 0.0]]))
        out = x.log_softmax(axis=-1).data
        assert np.all(np.isfinite(out))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_softmax_gradient_finite_at_extremes(self):
        x = Tensor(np.asarray([[500.0, -500.0]]), requires_grad=True)
        x.softmax(axis=-1).sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestSigmoidTanhStability:
    def test_sigmoid_extremes(self):
        x = Tensor(np.asarray([-1e6, 1e6]))
        out = x.sigmoid().data
        assert np.all(np.isfinite(out))

    def test_sigmoid_gradient_vanishes_not_explodes(self):
        x = Tensor(np.asarray([1e4]), requires_grad=True)
        x.sigmoid().sum().backward()
        assert np.isfinite(x.grad[0])
        assert abs(x.grad[0]) < 1e-12


class TestSoftplusStability:
    def test_extreme_negative(self):
        out = softplus(Tensor(np.asarray([-1e5]))).data
        assert out[0] == pytest.approx(0.0, abs=1e-12)

    def test_extreme_positive_is_linear(self):
        out = softplus(Tensor(np.asarray([1e5]))).data
        assert out[0] == pytest.approx(1e5)

    def test_gradient_finite_everywhere(self):
        x = Tensor(np.asarray([-1e5, -1.0, 0.0, 1.0, 1e5]), requires_grad=True)
        softplus(x).sum().backward()
        assert np.all(np.isfinite(x.grad))
        # d/dx softplus = sigmoid(x): bounded in [0, 1].
        assert np.all(x.grad >= 0) and np.all(x.grad <= 1)


class TestAdamStability:
    def test_survives_huge_gradients(self):
        from repro.nn import Adam, Parameter

        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        param.grad = np.full(3, 1e12)
        opt.step()
        assert np.all(np.isfinite(param.data))
        # Adam's update magnitude is bounded by ~lr regardless of grad scale.
        assert np.all(np.abs(param.data) < 1.0)
