"""Gradient checks for every autograd operation against central differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AutogradError, ShapeError
from repro.nn import Tensor, concat, embedding_lookup, sparse_matmul, stack, where
from repro.nn.gradcheck import check_gradients


def make(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestElementwise:
    def test_add(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = make((3, 4), 1), make((4,), 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub(self):
        a, b = make((2, 3), 1), make((2, 3), 2)
        check_gradients(lambda: (a - b).sum(), [a, b])

    def test_mul(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar(self):
        a = make((3, 4), 1)
        check_gradients(lambda: (a * 2.5).sum(), [a])

    def test_div(self):
        a, b = make((3, 3), 1), make((3, 3), 2)
        b.data += 3.0  # keep the denominator away from zero
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_neg(self):
        a = make((5,), 1)
        check_gradients(lambda: (-a).sum(), [a])

    def test_pow(self):
        a = make((4,), 1)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: (a**3).sum(), [a])

    def test_pow_requires_scalar_exponent(self):
        a = make((4,), 1)
        with pytest.raises(ShapeError):
            a ** np.ones(4)


class TestMatmul:
    def test_2d(self):
        a, b = make((3, 4), 1), make((4, 5), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched(self):
        a, b = make((2, 3, 4), 1), make((2, 4, 5), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched_broadcast(self):
        a, b = make((2, 3, 4), 1), make((4, 5), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_matrix(self):
        a, b = make((4,), 1), make((4, 5), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matrix_vector(self):
        a, b = make((3, 4), 1), make((4,), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_vector(self):
        a, b = make((4,), 1), make((4,), 2)
        check_gradients(lambda: a @ b, [a, b])

    def test_batched_matrix_vector(self):
        a, b = make((2, 3, 4), 1), make((4,), 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestReductions:
    def test_sum_all(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.sum(axis=1).sum(), [a])

    def test_sum_keepdims(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.sum(axis=0, keepdims=True).sum(), [a])

    def test_mean_all(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis(self):
        a = make((3, 4, 2), 1)
        check_gradients(lambda: a.mean(axis=1).sum(), [a])

    def test_max(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_max_splits_ties(self):
        a = Tensor(np.asarray([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu"])
    def test_unary(self, op):
        a = make((3, 4), 1)
        a.data += 0.1  # avoid the relu kink at exactly zero
        check_gradients(lambda: getattr(a, op)().sum(), [a])

    def test_log(self):
        a = make((3, 4), 1)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: a.log().sum(), [a])

    def test_leaky_relu(self):
        a = make((3, 4), 1)
        a.data += 0.05
        check_gradients(lambda: a.leaky_relu(0.2).sum(), [a])

    def test_softmax(self):
        a = make((3, 4), 1)
        weights = Tensor(np.random.default_rng(9).normal(size=(3, 4)))
        check_gradients(lambda: (a.softmax(axis=-1) * weights).sum(), [a])

    def test_softmax_rows_sum_to_one(self):
        a = make((5, 7), 1)
        out = a.softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5))

    def test_log_softmax(self):
        a = make((3, 4), 1)
        weights = Tensor(np.random.default_rng(9).normal(size=(3, 4)))
        check_gradients(lambda: (a.log_softmax(axis=-1) * weights).sum(), [a])

    def test_sigmoid_stable_at_extremes(self):
        a = Tensor(np.asarray([-1000.0, 1000.0]))
        out = a.sigmoid().data
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


class TestShapeOps:
    def test_reshape(self):
        a = make((3, 4), 1)
        check_gradients(lambda: a.reshape(2, 6).sum(axis=0).sum(), [a])

    def test_transpose(self):
        a = make((3, 4), 1)
        weights = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        check_gradients(lambda: (a.transpose(-2, -1) * weights).sum(), [a])

    def test_getitem_slice(self):
        a = make((5, 4), 1)
        check_gradients(lambda: a[1:3].sum(), [a])

    def test_getitem_fancy(self):
        a = make((5, 4), 1)
        idx = np.asarray([0, 2, 2, 4])
        check_gradients(lambda: a[idx].sum(), [a])

    def test_squeeze_unsqueeze(self):
        a = make((3, 1, 4), 1)
        check_gradients(lambda: a.squeeze(1).unsqueeze(0).sum(), [a])

    def test_broadcast_to(self):
        a = make((1, 4), 1)
        check_gradients(lambda: a.broadcast_to((3, 4)).sum(), [a])

    def test_concat(self):
        a, b = make((2, 3), 1), make((4, 3), 2)
        check_gradients(lambda: concat([a, b], axis=0).sum(), [a, b])

    def test_concat_axis1(self):
        a, b = make((2, 3), 1), make((2, 5), 2)
        check_gradients(lambda: concat([a, b], axis=1).sum(), [a, b])

    def test_concat_empty_raises(self):
        with pytest.raises(ShapeError):
            concat([])

    def test_stack(self):
        a, b = make((2, 3), 1), make((2, 3), 2)
        check_gradients(lambda: stack([a, b], axis=1).sum(), [a, b])


class TestSpecialOps:
    def test_embedding_lookup(self):
        weight = make((6, 4), 1)
        idx = np.asarray([[0, 1], [1, 5]])
        check_gradients(lambda: embedding_lookup(weight, idx).sum(), [weight])

    def test_embedding_repeated_indices_accumulate(self):
        weight = make((3, 2), 1)
        idx = np.asarray([1, 1, 1])
        embedding_lookup(weight, idx).sum().backward()
        np.testing.assert_allclose(weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0])

    def test_embedding_rejects_float_indices(self):
        weight = make((3, 2), 1)
        with pytest.raises(ShapeError):
            embedding_lookup(weight, np.asarray([0.5]))

    def test_where(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        cond = np.random.default_rng(3).random((3, 4)) > 0.5
        check_gradients(lambda: where(cond, a, b).sum(), [a, b])

    def test_sparse_matmul(self):
        from scipy import sparse

        matrix = sparse.random(5, 4, density=0.5, random_state=0, format="csr")
        x = make((4, 3), 1)
        check_gradients(lambda: sparse_matmul(matrix, x).sum(), [x])


class TestBackwardSemantics:
    def test_requires_scalar_output(self):
        a = make((3,), 1)
        with pytest.raises(AutogradError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor(self):
        a = Tensor(np.ones(3))
        with pytest.raises(AutogradError):
            a.backward()

    def test_gradient_accumulates_across_backward_calls(self):
        a = make((3,), 1)
        (a.sum()).backward()
        (a.sum()).backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones(3))

    def test_diamond_graph(self):
        a = make((3,), 1)
        b = a * 2
        c = a * 3
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, 5 * np.ones(3))

    def test_reused_tensor(self):
        a = make((3,), 1)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_detach_blocks_gradient(self):
        a = make((3,), 1)
        (a.detach() * 2.0).sum()
        assert a.grad is None

    def test_grad_shape_mismatch_rejected(self):
        a = make((3,), 1)
        out = a.sum()
        with pytest.raises(ShapeError):
            out.backward(np.ones(2))
