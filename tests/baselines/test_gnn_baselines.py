"""GNN baselines: GCN, GraphSage, R-GCN and their building blocks."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.baselines import (
    GCN,
    RGCN,
    GraphSage,
    normalized_adjacency,
    row_normalized_adjacency,
)
from repro.eval import evaluate_link_prediction


class TestNormalizedAdjacency:
    def test_symmetric(self):
        src = np.asarray([0, 1])
        dst = np.asarray([1, 2])
        adj = normalized_adjacency(src, dst, 3).toarray()
        np.testing.assert_allclose(adj, adj.T)

    def test_self_loops_included(self):
        adj = normalized_adjacency(np.asarray([0]), np.asarray([1]), 3).toarray()
        assert adj[2, 2] > 0  # isolated node keeps its self loop

    def test_spectral_radius_bounded(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 20, size=50)
        dst = (src + 1 + rng.integers(0, 18, size=50)) % 20
        adj = normalized_adjacency(src, dst, 20)
        eigenvalues = np.linalg.eigvalsh(adj.toarray())
        assert eigenvalues.max() <= 1.0 + 1e-9

    def test_row_normalized_rows_sum_to_one(self):
        src = np.asarray([0, 0, 1])
        dst = np.asarray([1, 2, 2])
        adj = row_normalized_adjacency(src, dst, 4).toarray()
        sums = adj.sum(axis=1)
        np.testing.assert_allclose(sums[:3], 1.0)
        assert sums[3] == 0.0  # isolated node has an all-zero row


class TestGCN:
    def test_fit_and_embed(self, taobao_dataset, taobao_split):
        model = GCN(dim=16, epochs=10, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(6), "page_view")
        assert emb.shape == (6, 16)
        assert np.all(np.isfinite(emb))

    def test_beats_random(self, taobao_dataset, taobao_split):
        model = GCN(dim=16, epochs=40, rng=0)
        model.fit(taobao_dataset, taobao_split)
        report = evaluate_link_prediction(model, taobao_split.test)
        assert report["roc_auc"] > 60.0


class TestGraphSage:
    def test_fit_and_embed(self, taobao_dataset, taobao_split):
        model = GraphSage(dim=16, epochs=1, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(6), "purchase")
        assert emb.shape == (6, 16)

    def test_beats_random(self, taobao_dataset, taobao_split):
        model = GraphSage(dim=16, epochs=3, rng=0)
        model.fit(taobao_dataset, taobao_split)
        report = evaluate_link_prediction(model, taobao_split.test)
        assert report["roc_auc"] > 55.0


class TestRGCN:
    def test_fit_and_embed(self, taobao_dataset, taobao_split):
        model = RGCN(dim=16, epochs=10, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(6), "page_view")
        assert emb.shape == (6, 16)

    def test_relation_specific_embeddings(self, taobao_dataset, taobao_split):
        model = RGCN(dim=16, epochs=5, rng=0)
        model.fit(taobao_dataset, taobao_split)
        a = model.node_embeddings(np.arange(6), "page_view")
        b = model.node_embeddings(np.arange(6), "purchase")
        assert not np.allclose(a, b)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            RGCN(rng=0).node_embeddings(np.arange(2), "page_view")

    def test_beats_random(self, taobao_dataset, taobao_split):
        model = RGCN(dim=16, epochs=40, rng=0)
        model.fit(taobao_dataset, taobao_split)
        report = evaluate_link_prediction(model, taobao_split.test)
        assert report["roc_auc"] > 60.0
