"""Shallow embedding baselines: skip-gram machinery, DeepWalk, node2vec, LINE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import LINE, DeepWalk, Node2Vec, SkipGramEmbeddings
from repro.errors import TrainingError
from repro.eval import evaluate_link_prediction
from repro.sampling import UnigramNegativeSampler


class TestSkipGramEmbeddings:
    def test_invalid_construction(self):
        with pytest.raises(TrainingError):
            SkipGramEmbeddings(0, 8)
        with pytest.raises(TrainingError):
            SkipGramEmbeddings(10, 0)

    def test_training_reduces_loss(self, taobao_dataset):
        graph = taobao_dataset.graph
        rng = np.random.default_rng(0)
        # Pairs drawn from actual edges: learnable signal.
        src, dst = graph.merged_homogeneous_view()
        pairs = np.stack([src, dst], axis=1)
        sampler = UnigramNegativeSampler(graph, rng=1)
        model = SkipGramEmbeddings(graph.num_nodes, 16, rng=2)
        losses = model.train(pairs, sampler, epochs=5)
        assert losses[-1] < losses[0]

    def test_empty_pairs_rejected(self, taobao_dataset):
        sampler = UnigramNegativeSampler(taobao_dataset.graph, rng=0)
        model = SkipGramEmbeddings(10, 4, rng=0)
        with pytest.raises(TrainingError):
            model.train(np.empty((0, 2), dtype=np.int64), sampler)

    def test_connected_pairs_score_higher_after_training(self, taobao_dataset):
        graph = taobao_dataset.graph
        src, dst = graph.merged_homogeneous_view()
        # Both directions, as real walk-context extraction produces.
        pairs = np.stack(
            [np.concatenate([src, dst]), np.concatenate([dst, src])], axis=1
        )
        sampler = UnigramNegativeSampler(graph, rng=1)
        model = SkipGramEmbeddings(graph.num_nodes, 16, rng=2)
        model.train(pairs, sampler, epochs=8)
        rng = np.random.default_rng(3)
        pos = np.einsum("ij,ij->i", model.w_in[src], model.w_out[dst]).mean()
        rand_dst = rng.integers(0, graph.num_nodes, size=len(src))
        neg = np.einsum("ij,ij->i", model.w_in[src], model.w_out[rand_dst]).mean()
        assert pos > neg


@pytest.mark.parametrize("model_cls", [DeepWalk, Node2Vec])
class TestWalkBaselines:
    def test_fit_and_embed(self, model_cls, taobao_dataset, taobao_split):
        model = model_cls(dim=16, num_walks=2, walk_length=8, epochs=2, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, 16)
        assert np.all(np.isfinite(emb))

    def test_relation_agnostic(self, model_cls, taobao_dataset, taobao_split):
        model = model_cls(dim=8, num_walks=1, walk_length=6, epochs=1, rng=0)
        model.fit(taobao_dataset, taobao_split)
        a = model.node_embeddings(np.arange(5), "page_view")
        b = model.node_embeddings(np.arange(5), "purchase")
        np.testing.assert_array_equal(a, b)

    def test_unfitted_rejected(self, model_cls):
        with pytest.raises(RuntimeError):
            model_cls(rng=0).node_embeddings(np.arange(2), "page_view")

    def test_beats_random_on_link_prediction(self, model_cls, taobao_dataset,
                                             taobao_split):
        model = model_cls(dim=16, num_walks=4, walk_length=10, epochs=3, rng=0)
        model.fit(taobao_dataset, taobao_split)
        report = evaluate_link_prediction(model, taobao_split.test)
        assert report["roc_auc"] > 55.0


class TestLINE:
    def test_odd_dim_rejected(self):
        with pytest.raises(TrainingError):
            LINE(dim=15)

    def test_fit_and_embed(self, taobao_dataset, taobao_split):
        model = LINE(dim=16, epochs=3, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(4), "page_view")
        assert emb.shape == (4, 16)

    def test_beats_random_on_link_prediction(self, taobao_dataset, taobao_split):
        model = LINE(dim=16, epochs=10, rng=0)
        model.fit(taobao_dataset, taobao_split)
        report = evaluate_link_prediction(model, taobao_split.test)
        assert report["roc_auc"] > 55.0
