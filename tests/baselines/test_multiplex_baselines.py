"""Multiplex/heterogeneous attention baselines: GATNE, HAN, MAGNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GATNE, HAN, MAGNN, GATNEModule, HANModule, MAGNNModule
from repro.baselines.han import MERGED_RELATION
from repro.core import TrainerConfig
from repro.eval import evaluate_link_prediction


@pytest.fixture
def fast_tc():
    return TrainerConfig(epochs=2, batch_size=256, num_walks=1, walk_length=6,
                         window=2, patience=2)


class TestGATNE:
    def test_fit_and_embed(self, taobao_dataset, taobao_split, fast_tc):
        model = GATNE(base_dim=8, edge_dim=4, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, 8)

    def test_relation_specific(self, taobao_dataset, taobao_split, fast_tc):
        model = GATNE(base_dim=8, edge_dim=4, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        a = model.node_embeddings(np.arange(5), "page_view")
        b = model.node_embeddings(np.arange(5), "purchase")
        assert not np.allclose(a, b)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            GATNE(rng=0).node_embeddings(np.arange(2), "page_view")

    def test_module_forward_shape(self, taobao_split):
        module = GATNEModule(taobao_split.train_graph, base_dim=8, edge_dim=4, rng=0)
        out = module(np.arange(6), "page_view")
        assert out.shape == (6, 8)

    def test_module_cache_roundtrip(self, taobao_split):
        module = GATNEModule(taobao_split.train_graph, base_dim=8, edge_dim=4, rng=0)
        first = module.node_embeddings(np.arange(4), "favorite")
        second = module.node_embeddings(np.arange(4), "favorite")
        np.testing.assert_array_equal(first, second)
        module.invalidate_cache()
        assert module._cache == {}


class TestHAN:
    def test_fit_and_embed(self, taobao_dataset, taobao_split, fast_tc):
        model = HAN(dim=8, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, 8)

    def test_relation_agnostic(self, taobao_dataset, taobao_split, fast_tc):
        """HAN is non-multiplex: one embedding regardless of relation."""
        model = HAN(dim=8, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        a = model.node_embeddings(np.arange(5), "page_view")
        b = model.node_embeddings(np.arange(5), "purchase")
        np.testing.assert_array_equal(a, b)

    def test_merged_schemes(self, taobao_dataset):
        schemes = HAN.merged_schemes(taobao_dataset)
        assert all(s.relations == (MERGED_RELATION,) * len(s) for s in schemes)

    def test_module_mixed_type_batch(self, taobao_dataset, taobao_split):
        merged = taobao_split.train_graph.merged_relation_graph()
        module = HANModule(
            merged, HAN.merged_schemes(taobao_dataset), dim=8, fanout=3, rng=0
        )
        out = module(np.asarray([0, 100, 1, 101]))
        assert out.shape == (4, 8)


class TestMAGNN:
    def test_fit_and_embed(self, taobao_dataset, taobao_split, fast_tc):
        model = MAGNN(dim=8, num_instances=3, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, 8)

    def test_module_forward_shape(self, taobao_dataset, taobao_split):
        merged = taobao_split.train_graph.merged_relation_graph()
        schemes = HAN.merged_schemes(taobao_dataset)
        module = MAGNNModule(merged, schemes, dim=8, num_instances=3, rng=0)
        out = module(np.arange(6))
        assert out.shape == (6, 8)

    def test_instance_sampler_paths_follow_scheme(self, taobao_dataset, taobao_split):
        from repro.baselines.magnn import _InstanceSampler
        from repro.sampling.adjacency import TypedAdjacencyCache

        merged = taobao_split.train_graph.merged_relation_graph()
        scheme = HAN.merged_schemes(taobao_dataset)[0]  # U-I-U on 'all'
        sampler = _InstanceSampler(
            merged, scheme, 4, np.random.default_rng(0), TypedAdjacencyCache(merged)
        )
        users = merged.nodes_of_type("user")[:3]
        paths = sampler.sample(users)
        assert paths.shape == (3, 4, 3)
        # Positions follow the scheme's types (allowing self-fallback).
        for b in range(3):
            for m in range(4):
                path = paths[b, m]
                assert merged.node_type(int(path[0])) == "user"
                assert merged.node_type(int(path[1])) in {"item", "user"}

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            MAGNN(rng=0).node_embeddings(np.arange(2), "x")
