"""MNE bonus baseline (the paper's Fig. 1(b) archetype)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MNE, MNEModule
from repro.core import TrainerConfig


@pytest.fixture
def fast_tc():
    return TrainerConfig(epochs=2, batch_size=256, num_walks=1, walk_length=6,
                         window=2, patience=2)


class TestMNEModule:
    def test_forward_shape(self, taobao_split):
        module = MNEModule(taobao_split.train_graph, base_dim=8, edge_dim=2, rng=0)
        assert module(np.arange(6), "page_view").shape == (6, 8)

    def test_relation_specific_correction(self, taobao_split):
        module = MNEModule(taobao_split.train_graph, base_dim=8, edge_dim=2, rng=0)
        a = module(np.arange(6), "page_view").data
        b = module(np.arange(6), "purchase").data
        assert not np.allclose(a, b)

    def test_shared_base_dominates_structure(self, taobao_split):
        """The difference between relations is only the low-dim correction."""
        module = MNEModule(taobao_split.train_graph, base_dim=8, edge_dim=2, rng=0)
        nodes = np.arange(10)
        a = module(nodes, "page_view").data
        base = module.base(nodes).data
        correction = a - base
        # The correction lives in a rank-<=2 subspace (edge_dim = 2).
        rank = np.linalg.matrix_rank(correction, tol=1e-8)
        assert rank <= 2

    def test_cache(self, taobao_split):
        module = MNEModule(taobao_split.train_graph, base_dim=8, edge_dim=2, rng=0)
        first = module.node_embeddings(np.arange(4), "favorite")
        second = module.node_embeddings(np.arange(4), "favorite")
        np.testing.assert_array_equal(first, second)


class TestMNEBaseline:
    def test_fit_and_embed(self, taobao_dataset, taobao_split, fast_tc):
        model = MNE(base_dim=8, edge_dim=2, trainer_config=fast_tc, rng=0)
        model.fit(taobao_dataset, taobao_split)
        emb = model.node_embeddings(np.arange(5), "page_view")
        assert emb.shape == (5, 8)
        assert np.all(np.isfinite(emb))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            MNE(rng=0).node_embeddings(np.arange(2), "x")

    def test_factory_integration(self):
        from repro.experiments import make_model
        from repro.experiments.profiles import SMOKE

        model = make_model("MNE", SMOKE, seed=0)
        assert model.name == "MNE"
