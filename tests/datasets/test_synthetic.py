"""Synthetic generator: schema fidelity, correlation and degree skew."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import RelationshipSpec, SyntheticConfig, generate_graph
from repro.errors import DatasetError


def simple_config(**overrides):
    defaults = dict(
        node_counts={"user": 60, "item": 50},
        relationships=(
            RelationshipSpec("view", "user", "item", 400),
            RelationshipSpec("buy", "user", "item", 150, overlap_with="view", overlap=0.5),
        ),
        num_communities=4,
    )
    defaults.update(overrides)
    return SyntheticConfig(**defaults)


class TestConfigValidation:
    def test_valid_config(self):
        simple_config()  # must not raise

    def test_empty_nodes_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(node_counts={}, relationships=())

    def test_nonpositive_count_rejected(self):
        with pytest.raises(DatasetError):
            simple_config(node_counts={"user": 0, "item": 10})

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(
                node_counts={"user": 10},
                relationships=(RelationshipSpec("view", "user", "video", 10),),
            )

    def test_duplicate_relationship_rejected(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(
                node_counts={"user": 10},
                relationships=(
                    RelationshipSpec("r", "user", "user", 10),
                    RelationshipSpec("r", "user", "user", 10),
                ),
            )

    def test_overlap_must_reference_earlier_relationship(self):
        with pytest.raises(DatasetError):
            SyntheticConfig(
                node_counts={"user": 10},
                relationships=(
                    RelationshipSpec("a", "user", "user", 10,
                                     overlap_with="b", overlap=0.5),
                    RelationshipSpec("b", "user", "user", 10),
                ),
            )

    def test_bad_noise_rejected(self):
        with pytest.raises(DatasetError):
            simple_config(
                relationships=(RelationshipSpec("view", "user", "item", 10, noise=1.5),)
            )


class TestGeneratedGraphs:
    def test_schema_matches_config(self):
        graph = generate_graph(simple_config(), rng=0)
        assert graph.schema.node_types == ("user", "item")
        assert graph.schema.relationships == ("view", "buy")
        assert len(graph.nodes_of_type("user")) == 60
        assert len(graph.nodes_of_type("item")) == 50

    def test_edge_counts_close_to_target(self):
        graph = generate_graph(simple_config(), rng=0)
        assert graph.num_edges_in("view") >= 200  # at least half the target
        assert graph.num_edges_in("buy") >= 75

    def test_endpoint_types_respected(self):
        graph = generate_graph(simple_config(), rng=0)
        src, dst = graph.edges("view")
        types = {graph.node_type(int(u)) for u in src} | {
            graph.node_type(int(v)) for v in dst
        }
        assert types == {"user", "item"}

    def test_deterministic_given_seed(self):
        g1 = generate_graph(simple_config(), rng=123)
        g2 = generate_graph(simple_config(), rng=123)
        for relation in g1.schema.relationships:
            np.testing.assert_array_equal(g1.edges(relation)[0], g2.edges(relation)[0])
            np.testing.assert_array_equal(g1.edges(relation)[1], g2.edges(relation)[1])

    def test_overlap_creates_multiplex_pairs(self):
        """buy copies half its edges from view: the pairs must overlap."""
        graph = generate_graph(simple_config(), rng=0)
        buy_src, buy_dst = graph.edges("buy")
        shared = sum(
            graph.has_edge(int(u), int(v), "view")
            for u, v in zip(buy_src, buy_dst)
        )
        assert shared / len(buy_src) > 0.3

    def test_overlap_knob_increases_shared_pairs(self):
        """overlap=0.5 must produce more shared pairs than overlap=0.

        (Community structure alone already correlates relationships on small
        graphs, so compare the two settings rather than an absolute level.)
        """

        def shared_fraction(overlap):
            config = simple_config(
                relationships=(
                    RelationshipSpec("view", "user", "item", 400),
                    RelationshipSpec(
                        "buy", "user", "item", 150,
                        overlap_with="view" if overlap else None,
                        overlap=overlap,
                    ),
                )
            )
            graph = generate_graph(config, rng=0)
            buy_src, buy_dst = graph.edges("buy")
            shared = sum(
                graph.has_edge(int(u), int(v), "view")
                for u, v in zip(buy_src, buy_dst)
            )
            return shared / len(buy_src)

        assert shared_fraction(0.8) > shared_fraction(0.0)

    def test_degree_skew(self):
        """Zipf popularity should produce a heavy-tailed degree distribution."""
        config = simple_config(popularity_skew=1.0)
        graph = generate_graph(config, rng=0)
        degrees = np.sort(graph.degrees())[::-1]
        top_share = degrees[: len(degrees) // 10].sum() / max(1, degrees.sum())
        assert top_share > 0.2  # top-10% of nodes hold >20% of the edges


class TestVectorizedEngine:
    def test_invalid_engine_rejected(self):
        with pytest.raises(DatasetError):
            simple_config(engine="gpu")

    def test_loop_default_unchanged(self):
        """engine='loop' is the default and must equal the implicit form —
        the golden corpus depends on this stream staying put."""
        implicit = generate_graph(simple_config(), rng=0)
        explicit = generate_graph(simple_config(engine="loop"), rng=0)
        for relation in implicit.schema.relationships:
            for a, b in zip(implicit.edges(relation), explicit.edges(relation)):
                np.testing.assert_array_equal(a, b)

    def test_vectorized_deterministic(self):
        first = generate_graph(simple_config(engine="vectorized"), rng=3)
        second = generate_graph(simple_config(engine="vectorized"), rng=3)
        for relation in first.schema.relationships:
            for a, b in zip(first.edges(relation), second.edges(relation)):
                np.testing.assert_array_equal(a, b)

    def test_vectorized_integrity(self):
        """Exact edge counts, valid endpoint types, no self loops, no
        duplicate undirected pairs — the loop engine's invariants."""
        config = simple_config(engine="vectorized")
        graph = generate_graph(config, rng=1)
        for spec in config.relationships:
            src, dst = graph.edges(spec.name)
            assert len(src) == spec.num_edges
            assert all(graph.node_type(int(u)) == spec.src_type for u in src[:50])
            assert all(graph.node_type(int(v)) == spec.dst_type for v in dst[:50])
            assert np.all(src != dst)
            low = np.minimum(src, dst)
            high = np.maximum(src, dst)
            keys = low * graph.num_nodes + high
            assert len(np.unique(keys)) == len(keys)

    def test_vectorized_overlap_creates_multiplex_pairs(self):
        config = simple_config(engine="vectorized")
        graph = generate_graph(config, rng=2)
        buy_src, buy_dst = graph.edges("buy")
        shared = sum(
            graph.has_edge(int(u), int(v), "view")
            for u, v in zip(buy_src, buy_dst)
        )
        assert shared / len(buy_src) > 0.3

    def test_vectorized_degree_skew(self):
        config = simple_config(engine="vectorized", popularity_skew=1.0)
        graph = generate_graph(config, rng=0)
        degrees = np.sort(graph.degrees())[::-1]
        top_share = degrees[: len(degrees) // 10].sum() / max(1, degrees.sum())
        assert top_share > 0.2

    def test_vectorized_scales_past_loop_regime(self):
        """A 100k-node graph generates in seconds — the regime where the
        per-edge loop engine becomes unusable."""
        config = SyntheticConfig(
            node_counts={"user": 60_000, "item": 40_000},
            relationships=(
                RelationshipSpec("view", "user", "item", 200_000, noise=0.1),
                RelationshipSpec(
                    "buy", "user", "item", 80_000,
                    overlap_with="view", overlap=0.4, community_shift=1,
                ),
            ),
            num_communities=16,
            engine="vectorized",
        )
        graph = generate_graph(config, rng=5)
        assert graph.num_nodes == 100_000
        assert graph.num_edges_in("view") == 200_000
        assert graph.num_edges_in("buy") == 80_000
