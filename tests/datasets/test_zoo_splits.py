"""The five dataset-alikes (Table II schemas) and the 85/5/10 edge split."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import available_datasets, load_dataset, split_edges
from repro.errors import DatasetError


class TestZooSchemas:
    """Each alike must match its Table II row's (|O|, |R|) and schemes."""

    @pytest.mark.parametrize(
        "name,num_types,num_relations,category",
        [
            ("amazon", 1, 2, "G1"),
            ("youtube", 1, 5, "G1"),
            ("imdb", 3, 1, "G2"),
            ("taobao", 2, 4, "G3"),
            ("kuaishou", 3, 4, "G3"),
        ],
    )
    def test_schema_shape(self, name, num_types, num_relations, category):
        ds = load_dataset(name, scale=0.2, seed=0)
        assert ds.graph.schema.num_node_types == num_types
        assert ds.graph.schema.num_relationships == num_relations
        assert ds.graph.schema.category() == category

    def test_amazon_scheme(self):
        ds = load_dataset("amazon", scale=0.2, seed=0)
        schemes = ds.schemes_for("common_bought")
        assert [s.describe() for s in schemes] == [
            "item -common_bought-> item -common_bought-> item"
        ]

    def test_imdb_has_six_schemes(self):
        ds = load_dataset("imdb", scale=0.2, seed=0)
        assert len(ds.metapath_patterns) == 6
        schemes = ds.schemes_for("credit")
        lengths = sorted(len(s) for s in schemes)
        assert lengths == [2, 2, 2, 2, 4, 4]  # four 2-hop + two 4-hop schemes

    def test_kuaishou_schemes_cover_types(self):
        ds = load_dataset("kuaishou", scale=0.2, seed=0)
        schemes = ds.schemes_for("click")
        starts = {s.start_type for s in schemes}
        assert starts == {"user", "author", "video"}

    def test_all_schemes_validate(self):
        for name in available_datasets():
            ds = load_dataset(name, scale=0.2, seed=0)
            for relation, schemes in ds.all_schemes().items():
                for scheme in schemes:
                    scheme.validate(ds.graph.schema)

    def test_scale_changes_size(self):
        small = load_dataset("amazon", scale=0.2, seed=0)
        large = load_dataset("amazon", scale=0.6, seed=0)
        assert large.graph.num_nodes > small.graph.num_nodes

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("netflix")

    def test_available_datasets(self):
        assert available_datasets() == [
            "amazon", "imdb", "kuaishou", "taobao", "taobao-xl", "youtube",
        ]


class TestEdgeSplit:
    def test_split_fractions(self, taobao_dataset, taobao_split):
        graph = taobao_dataset.graph
        for relation in graph.schema.relationships:
            total = graph.num_edges_in(relation)
            train = taobao_split.train_graph.num_edges_in(relation)
            assert train / total == pytest.approx(0.85, abs=0.05)

    def test_eval_sets_are_balanced(self, taobao_split):
        for edges in taobao_split.test.values():
            assert edges.labels.sum() * 2 == len(edges.labels)

    def test_positives_are_real_edges(self, taobao_dataset, taobao_split):
        graph = taobao_dataset.graph
        for relation, edges in taobao_split.test.items():
            src, dst = edges.positives
            for u, v in zip(src, dst):
                assert graph.has_edge(int(u), int(v), relation)

    def test_negatives_are_not_edges(self, taobao_dataset, taobao_split):
        graph = taobao_dataset.graph
        for relation, edges in taobao_split.test.items():
            mask = edges.labels == 0
            for u, v in zip(edges.src[mask], edges.dst[mask]):
                assert not graph.has_edge(int(u), int(v), relation)

    def test_negatives_preserve_destination_type(self, taobao_dataset, taobao_split):
        """A model must not be able to spot negatives by node type."""
        graph = taobao_dataset.graph
        for edges in taobao_split.test.values():
            n = len(edges.labels) // 2
            pos_types = [graph.node_type(int(v)) for v in edges.dst[:n]]
            neg_types = [graph.node_type(int(v)) for v in edges.dst[n:]]
            assert pos_types == neg_types

    def test_test_edges_not_in_train_graph(self, taobao_split):
        train = taobao_split.train_graph
        for relation, edges in taobao_split.test.items():
            src, dst = edges.positives
            for u, v in zip(src, dst):
                assert not train.has_edge(int(u), int(v), relation)

    def test_node_universe_preserved(self, taobao_dataset, taobao_split):
        assert taobao_split.train_graph.num_nodes == taobao_dataset.graph.num_nodes

    def test_deterministic(self, taobao_dataset):
        s1 = split_edges(taobao_dataset.graph, rng=99)
        s2 = split_edges(taobao_dataset.graph, rng=99)
        for relation in taobao_dataset.graph.schema.relationships:
            np.testing.assert_array_equal(
                s1.test[relation].src, s2.test[relation].src
            )

    def test_invalid_fractions_rejected(self, taobao_dataset):
        with pytest.raises(DatasetError):
            split_edges(taobao_dataset.graph, train_fraction=0.0)
        with pytest.raises(DatasetError):
            split_edges(taobao_dataset.graph, train_fraction=0.9, val_fraction=0.2)
