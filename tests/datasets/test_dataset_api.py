"""Dataset wrapper API and registry details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, load_dataset
from repro.graph import GraphBuilder, GraphSchema


class TestDatasetWrapper:
    def test_schemes_for_unknown_relation_still_parses(self, taobao_dataset):
        """schemes_for builds intra-relationship schemes for any relation
        string; validation against the schema happens at use time."""
        schemes = taobao_dataset.schemes_for("page_view")
        assert all(s.relations == ("page_view", "page_view") for s in schemes)

    def test_all_schemes_covers_all_relations(self, taobao_dataset):
        schemes = taobao_dataset.all_schemes()
        assert set(schemes) == set(taobao_dataset.graph.schema.relationships)

    def test_custom_dataset_roundtrip(self):
        schema = GraphSchema(["a", "b"], ["r"])
        builder = GraphBuilder(schema)
        builder.add_nodes("a", 3)
        builder.add_nodes("b", 3)
        builder.add_edge(0, 3, "r")
        graph = builder.build()
        dataset = Dataset("custom", graph, ("A-B-A",), {"A": "a", "B": "b"})
        schemes = dataset.schemes_for("r")
        assert schemes[0].describe() == "a -r-> b -r-> a"


class TestScaleInvariance:
    def test_same_seed_same_graph(self):
        a = load_dataset("kuaishou", scale=0.2, seed=5)
        b = load_dataset("kuaishou", scale=0.2, seed=5)
        assert a.graph.num_edges == b.graph.num_edges
        for relation in a.graph.schema.relationships:
            np.testing.assert_array_equal(
                a.graph.edges(relation)[0], b.graph.edges(relation)[0]
            )

    def test_different_seed_different_graph(self):
        a = load_dataset("amazon", scale=0.2, seed=1)
        b = load_dataset("amazon", scale=0.2, seed=2)
        same = all(
            len(a.graph.edges(r)[0]) == len(b.graph.edges(r)[0])
            and np.array_equal(a.graph.edges(r)[0], b.graph.edges(r)[0])
            for r in a.graph.schema.relationships
        )
        assert not same

    @pytest.mark.parametrize("name", ["amazon", "imdb", "kuaishou"])
    def test_min_node_floor(self, name):
        """Even at tiny scales every node type keeps at least a few nodes."""
        ds = load_dataset(name, scale=0.01, seed=0)
        for node_type in ds.graph.schema.node_types:
            assert len(ds.graph.nodes_of_type(node_type)) >= 8
