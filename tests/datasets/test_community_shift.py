"""Relationship-specific semantics via community shifts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import RelationshipSpec, SyntheticConfig, generate_graph
from repro.datasets.synthetic import SyntheticGenerator
from repro.errors import DatasetError


def test_negative_shift_rejected():
    with pytest.raises(DatasetError):
        SyntheticConfig(
            node_counts={"user": 10},
            relationships=(
                RelationshipSpec("r", "user", "user", 10, community_shift=-1),
            ),
        )


def test_shifted_relation_connects_different_pairs():
    """With zero noise and no overlap, shift-0 and shift-1 relations connect
    (almost) disjoint community pairs, so their edge sets barely overlap."""
    config = SyntheticConfig(
        node_counts={"user": 80, "item": 80},
        relationships=(
            RelationshipSpec("base", "user", "item", 300, noise=0.0),
            RelationshipSpec("shifted", "user", "item", 300, noise=0.0,
                             community_shift=1),
        ),
        num_communities=4,
    )
    graph = generate_graph(config, rng=0)
    src, dst = graph.edges("shifted")
    shared = sum(
        graph.has_edge(int(u), int(v), "base") for u, v in zip(src, dst)
    )
    assert shared / len(src) < 0.05


def test_shift_wraps_modulo_num_communities():
    """shift == num_communities behaves like shift 0."""
    def graph_with_shift(shift):
        config = SyntheticConfig(
            node_counts={"user": 60, "item": 60},
            relationships=(
                RelationshipSpec("r", "user", "item", 250, noise=0.0,
                                 community_shift=shift),
            ),
            num_communities=4,
        )
        return generate_graph(config, rng=7)

    g0 = graph_with_shift(0)
    g4 = graph_with_shift(4)
    np.testing.assert_array_equal(g0.edges("r")[0], g4.edges("r")[0])
    np.testing.assert_array_equal(g0.edges("r")[1], g4.edges("r")[1])


def test_zoo_alikes_have_shifted_relations():
    """Each multi-relationship alike carries at least one shifted relation,
    the property that separates multiplex-aware from relation-agnostic
    models in the benchmark tables."""
    from repro.datasets.zoo import amazon_like, kuaishou_like, taobao_like, youtube_like

    # Inspect the generator configs indirectly: shifted relations produce low
    # cross-relation pair sharing against the first (shift-0) relation.
    ds = taobao_like(scale=0.25, seed=0)
    graph = ds.graph
    cart_src, cart_dst = graph.edges("add_to_cart")
    shared = sum(
        graph.has_edge(int(u), int(v), "page_view")
        for u, v in zip(cart_src, cart_dst)
    )
    favorite_src, favorite_dst = graph.edges("favorite")
    shared_favorite = sum(
        graph.has_edge(int(u), int(v), "page_view")
        for u, v in zip(favorite_src, favorite_dst)
    )
    # favorite overlaps page_view by construction; add_to_cart is shifted.
    assert shared_favorite / len(favorite_src) > shared / len(cart_src)
