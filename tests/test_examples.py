"""Example scripts: syntax-check all, execute the fast ones end-to-end."""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.integration

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_custom_graph_example_runs():
    """The bring-your-own-graph example is small enough to run in CI."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "custom_graph.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "ROC-AUC" in result.stdout
    assert "author embedding matrix" in result.stdout
