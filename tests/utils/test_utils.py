"""Utilities: RNG plumbing, validation helpers, table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils import (
    as_rng,
    check_fraction,
    check_positive,
    check_probability_vector,
    format_table,
    spawn_rng,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_spawn_is_deterministic_function_of_parent(self):
        child_a = spawn_rng(np.random.default_rng(1))
        child_b = spawn_rng(np.random.default_rng(1))
        assert child_a.random() == child_b.random()

    def test_spawn_differs_from_parent(self):
        parent = np.random.default_rng(1)
        child = spawn_rng(parent)
        assert child.random() != np.random.default_rng(1).random()


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ReproError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ReproError):
            check_positive("x", -1, strict=False)

    def test_check_fraction(self):
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)
        with pytest.raises(ReproError):
            check_fraction("f", 1.5)

    def test_check_probability_vector(self):
        check_probability_vector("p", np.asarray([0.25, 0.75]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.asarray([0.5, 0.6]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.asarray([-0.1, 1.1]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.eye(2))


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "v"], [["a", 1.5], ["bbbb", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "1.5000" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in text

    def test_integers_not_float_formatted(self):
        text = format_table(["v"], [[7]])
        assert "7" in text and "7.0000" not in text
