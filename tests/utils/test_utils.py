"""Utilities: RNG plumbing, validation helpers, table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils import (
    as_rng,
    check_fraction,
    check_positive,
    check_probability_vector,
    format_table,
    spawn_rng,
    spawn_rngs,
)


class TestRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_spawn_is_deterministic_function_of_parent(self):
        child_a = spawn_rng(np.random.default_rng(1))
        child_b = spawn_rng(np.random.default_rng(1))
        assert child_a.random() == child_b.random()

    def test_spawn_differs_from_parent(self):
        parent = np.random.default_rng(1)
        child = spawn_rng(parent)
        assert child.random() != np.random.default_rng(1).random()

    def test_spawn_rng_bit_compatible(self):
        """The single-child spawn must reproduce its historical stream:
        one 63-bit integer draw from the parent used as the child seed."""
        parent = np.random.default_rng(9)
        expected_seed = int(np.random.default_rng(9).integers(0, 2**63 - 1))
        child = spawn_rng(parent)
        reference = np.random.default_rng(expected_seed)
        assert child.random() == reference.random()


class TestSpawnRngs:
    def test_deterministic_function_of_parent(self):
        first = spawn_rngs(np.random.default_rng(3), 8)
        second = spawn_rngs(np.random.default_rng(3), 8)
        for a, b in zip(first, second):
            assert a.random() == b.random()

    def test_streams_distinct_for_large_pool(self):
        """256 workers must all get distinct streams — the failure mode of
        repeated spawn_rng is two equal integer seeds sharing one stream."""
        children = spawn_rngs(np.random.default_rng(0), 256)
        assert len(children) == 256
        first_draws = {
            tuple(child.integers(0, 2**63 - 1, size=4).tolist())
            for child in children
        }
        assert len(first_draws) == 256

    def test_streams_pairwise_uncorrelated(self):
        """Spot-check independence: child streams should not correlate."""
        children = spawn_rngs(np.random.default_rng(7), 16)
        draws = np.stack([child.random(2_000) for child in children])
        corr = np.corrcoef(draws)
        off_diag = corr[~np.eye(len(children), dtype=bool)]
        assert np.abs(off_diag).max() < 0.1

    def test_parent_stream_advanced_once(self):
        """spawn_rngs consumes a fixed amount of parent entropy regardless
        of n, so downstream consumers of the parent stay reproducible."""
        parent_a = np.random.default_rng(5)
        parent_b = np.random.default_rng(5)
        spawn_rngs(parent_a, 1)
        spawn_rngs(parent_b, 200)
        assert parent_a.random() == parent_b.random()

    def test_zero_workers_allowed(self):
        assert spawn_rngs(np.random.default_rng(0), 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(np.random.default_rng(0), -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ReproError):
            check_positive("x", 0)
        check_positive("x", 0, strict=False)
        with pytest.raises(ReproError):
            check_positive("x", -1, strict=False)

    def test_check_fraction(self):
        check_fraction("f", 0.0)
        check_fraction("f", 1.0)
        with pytest.raises(ReproError):
            check_fraction("f", 1.5)

    def test_check_probability_vector(self):
        check_probability_vector("p", np.asarray([0.25, 0.75]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.asarray([0.5, 0.6]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.asarray([-0.1, 1.1]))
        with pytest.raises(ReproError):
            check_probability_vector("p", np.eye(2))


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "v"], [["a", 1.5], ["bbbb", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "1.5000" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in text

    def test_integers_not_float_formatted(self):
        text = format_table(["v"], [[7]])
        assert "7" in text and "7.0000" not in text
