"""Unit tests for the runtime lock-discipline sanitizer.

Covers the :mod:`repro.utils.concurrency` contract: off by default,
order-graph recording and cycle detection, reentrancy semantics,
condition ``wait`` bookkeeping, and the shared-region write tracker
(guarded / unguarded-concurrent / exempt / unregistered).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import LockOrderError
from repro.utils.concurrency import (
    CheckedCondition,
    CheckedLock,
    CheckedRLock,
    checked_condition,
    checked_lock,
    checked_rlock,
    concurrency_findings,
    held_locks,
    lock_order_edges,
    lock_sanitizer,
    lock_sanitizer_enabled,
    register_shared_region,
    reset_concurrency_state,
    set_lock_sanitizer,
    shared_write,
)


@pytest.fixture(autouse=True)
def _clean_state():
    reset_concurrency_state()
    yield
    set_lock_sanitizer(False)
    reset_concurrency_state()


def test_sanitizer_is_off_by_default_and_records_nothing():
    assert not lock_sanitizer_enabled()
    a, b = checked_lock("off.A"), checked_lock("off.B")
    with a:
        with b:
            assert held_locks() == ()
    with b:
        with a:  # inverted order: legal while the sanitizer is off
            pass
    assert lock_order_edges() == {}
    assert concurrency_findings() == []


def test_held_stack_and_order_edges_are_recorded():
    a, b = checked_lock("rec.A"), checked_rlock("rec.B")
    with lock_sanitizer():
        assert lock_sanitizer_enabled()
        with a:
            assert held_locks() == ("rec.A",)
            with b:
                assert held_locks() == ("rec.A", "rec.B")
        assert held_locks() == ()
    assert lock_order_edges()["rec.A"] == ("rec.B",)
    assert not lock_sanitizer_enabled()


def test_inversion_raises_and_names_the_cycle():
    a, b = checked_lock("inv.A"), checked_lock("inv.B")
    with lock_sanitizer():
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="inv.A -> inv.B -> inv.A"):
                with a:
                    pass  # pragma: no cover - the acquire raises


def test_three_lock_cycle_is_detected():
    a, b, c = (checked_lock(f"tri.{x}") for x in "ABC")
    with lock_sanitizer():
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(LockOrderError, match="lock-order inversion"):
                with a:
                    pass  # pragma: no cover - the acquire raises


def test_non_reentrant_self_acquire_raises_instead_of_deadlocking():
    a = checked_lock("self.A")
    with lock_sanitizer():
        with a:
            with pytest.raises(LockOrderError, match="self-deadlock"):
                a.acquire()


def test_rlock_reentry_is_legal_and_adds_no_self_edge():
    r = checked_rlock("re.R")
    with lock_sanitizer():
        with r:
            with r:
                # One stack entry per acquire keeps release bookkeeping
                # balanced across reentrant holds.
                assert held_locks() == ("re.R", "re.R")
            assert held_locks() == ("re.R",)
        assert held_locks() == ()
    assert "re.R" not in lock_order_edges().get("re.R", ())


def test_condition_wait_releases_the_held_name():
    cond = checked_condition("cv.C")
    observed = []

    def waiter():
        with lock_sanitizer():
            with cond:
                cond.wait(timeout=5.0)
                observed.append(held_locks())

    with lock_sanitizer():
        thread = threading.Thread(target=waiter)
        with cond:
            pass  # warm the wrapper on this thread
        thread.start()
        # Let the waiter park, then wake it; wait() must pop the name
        # while sleeping and push it back before returning.
        import time
        for _ in range(100):
            time.sleep(0.01)
            with cond:
                cond.notify_all()
            if observed:
                break
        thread.join(timeout=5.0)
    assert observed == [("cv.C",)]


def test_condition_is_reentrant_for_order_purposes():
    lock = threading.RLock()
    cond = CheckedCondition("cv.R", lock)
    with lock_sanitizer():
        with cond:
            with cond:
                assert held_locks() == ("cv.R", "cv.R")
            assert held_locks() == ("cv.R",)


def test_region_with_guard_flags_unheld_writes_only():
    guard = checked_lock("reg.guard")
    region = register_shared_region("reg.state", guard="reg.guard")
    with lock_sanitizer():
        with guard:
            with region:
                pass
        assert concurrency_findings() == []
        with region:
            pass
    findings = concurrency_findings()
    assert [(f.kind, f.region) for f in findings] == [
        ("unguarded-write", "reg.state")
    ]
    assert "reg.guard" in findings[0].detail


def test_unguarded_region_flags_concurrent_writers():
    region = register_shared_region("reg.racy")
    barrier = threading.Barrier(2, timeout=10.0)

    def writer():
        with region:
            barrier.wait()
            barrier.wait()

    with lock_sanitizer():
        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    kinds = {(f.kind, f.region) for f in concurrency_findings()}
    assert ("concurrent-write", "reg.racy") in kinds


def test_exempt_region_stays_silent_and_keeps_its_reason():
    region = register_shared_region(
        "reg.hogwild", exempt=True, reason="races by design"
    )
    barrier = threading.Barrier(2, timeout=10.0)

    def writer():
        with region:
            barrier.wait()
            barrier.wait()

    with lock_sanitizer():
        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert concurrency_findings() == []
    assert region.reason == "races by design"


def test_shared_write_on_unregistered_name_is_a_finding():
    with lock_sanitizer():
        with shared_write("reg.undeclared"):
            pass
    kinds = {(f.kind, f.region) for f in concurrency_findings()}
    assert ("unregistered-region", "reg.undeclared") in kinds


def test_findings_deduplicate_by_kind_and_region():
    region = register_shared_region("reg.dup", guard="reg.guard")
    with lock_sanitizer():
        for _ in range(3):
            with region:
                pass
    findings = concurrency_findings()
    assert len(findings) == 1
    assert findings[0].count == 3
    assert findings[0].to_dict()["count"] == 3


def test_register_shared_region_is_idempotent_until_contract_changes():
    first = register_shared_region("reg.same", guard="reg.guard")
    again = register_shared_region("reg.same", guard="reg.guard")
    assert again is first
    changed = register_shared_region("reg.same", exempt=True)
    assert changed is not first


def test_reset_clears_edges_and_findings_but_keeps_contracts():
    region = register_shared_region("reg.kept", guard="reg.guard")
    a, b = checked_lock("rst.A"), checked_lock("rst.B")
    with lock_sanitizer():
        with a:
            with b:
                pass
        with region:
            pass
    assert lock_order_edges() and concurrency_findings()
    reset_concurrency_state()
    assert lock_order_edges() == {}
    assert concurrency_findings() == []
    assert register_shared_region("reg.kept", guard="reg.guard") is region


def test_context_manager_restores_previous_setting():
    assert set_lock_sanitizer(True) is False
    with lock_sanitizer():
        assert lock_sanitizer_enabled()
    assert lock_sanitizer_enabled()  # was already on before the with
    assert set_lock_sanitizer(False) is True


def test_checked_wrappers_expose_names_and_types():
    assert isinstance(checked_lock("t.L"), CheckedLock)
    assert isinstance(checked_rlock("t.R"), CheckedRLock)
    assert checked_condition("t.C").name == "t.C"
