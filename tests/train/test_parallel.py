"""Sharded multi-worker trainer: shard plan, determinism, update modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persistence import EmbeddingStore
from repro.datasets import split_edges
from repro.errors import TrainingError
from repro.eval import evaluate_link_prediction
from repro.train import (
    ParallelSkipGramTrainer,
    ParallelTrainerConfig,
    shard_nodes,
)

SMOKE = dict(dim=16, epochs=2, batch_size=512, num_walks=1, walk_length=6,
             window=2)


@pytest.fixture
def make_trainer(taobao_dataset, taobao_split):
    def factory(rng=5, **overrides):
        merged = {**SMOKE, **overrides}
        config = ParallelTrainerConfig(**merged)
        return ParallelSkipGramTrainer(
            taobao_dataset.all_schemes(), taobao_split, config, rng=rng)
    return factory


class TestShardPlan:
    def test_disjoint_and_complete(self):
        for workers in (1, 2, 3, 7):
            shards = shard_nodes(101, workers)
            assert len(shards) == workers
            merged = np.sort(np.concatenate(shards))
            np.testing.assert_array_equal(merged, np.arange(101))

    def test_round_robin_ownership(self):
        shards = shard_nodes(10, 3)
        for worker, shard in enumerate(shards):
            assert np.all(shard % 3 == worker)

    def test_more_workers_than_nodes(self):
        shards = shard_nodes(2, 5)
        sizes = [len(s) for s in shards]
        assert sizes == [1, 1, 0, 0, 0]

    def test_invalid_workers(self):
        with pytest.raises(TrainingError):
            shard_nodes(10, 0)


class TestConfig:
    def test_defaults_valid(self):
        ParallelTrainerConfig()

    @pytest.mark.parametrize("overrides", [
        {"workers": 0},
        {"update_mode": "ring-allreduce"},
        {"dim": 0},
        {"num_negatives": 0},
        {"epochs": 0},
        {"batch_size": 0},
        {"learning_rate": 0.0},
        {"walk_length": 1},
        {"window": 0},
        {"patience": 0},
    ])
    def test_invalid_rejected(self, overrides):
        with pytest.raises(TrainingError):
            ParallelTrainerConfig(**overrides)


class TestDeterminism:
    def test_single_worker_bit_identical_across_runs(self, make_trainer):
        first = make_trainer(workers=1)
        second = make_trainer(workers=1)
        hist_a, hist_b = first.fit(), second.fit()
        assert hist_a.losses == hist_b.losses
        assert hist_a.val_scores == hist_b.val_scores
        state_a, state_b = first.state_dict(), second.state_dict()
        assert set(state_a) == set(state_b)
        for name, value in state_a.items():
            np.testing.assert_array_equal(value, state_b[name])

    def test_average_mode_deterministic_for_two_workers(self, make_trainer):
        first = make_trainer(workers=2, update_mode="average")
        second = make_trainer(workers=2, update_mode="average")
        hist_a, hist_b = first.fit(), second.fit()
        assert hist_a.losses == hist_b.losses
        for name, value in first.state_dict().items():
            np.testing.assert_array_equal(value, second.state_dict()[name])

    def test_single_worker_mode_ignores_update_mode(self, make_trainer):
        hogwild = make_trainer(workers=1, update_mode="hogwild")
        average = make_trainer(workers=1, update_mode="average")
        hist_a, hist_b = hogwild.fit(), average.fit()
        assert hist_a.losses == hist_b.losses
        for name, value in hogwild.state_dict().items():
            np.testing.assert_array_equal(value, average.state_dict()[name])


class TestTraining:
    def test_loss_decreases(self, make_trainer):
        trainer = make_trainer(workers=1, epochs=3)
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]

    def test_validation_tracked_and_best_restored(self, make_trainer):
        trainer = make_trainer(workers=1, epochs=3)
        snapshots = []
        original = trainer._validation_score

        def recording():
            score = original()
            snapshots.append(trainer.state_dict())
            return score

        trainer._validation_score = recording
        history = trainer.fit()
        assert len(history.val_scores) == len(history.losses)
        assert history.best_epoch >= 0
        best = snapshots[history.best_epoch]
        for name, value in trainer.state_dict().items():
            np.testing.assert_array_equal(value, best[name])

    def test_training_improves_over_init(self, make_trainer, taobao_split):
        trainer = make_trainer(workers=1, epochs=4)
        before = evaluate_link_prediction(
            trainer.embeddings(), taobao_split.test)["roc_auc"]
        trainer.fit()
        after = evaluate_link_prediction(
            trainer.embeddings(), taobao_split.test)["roc_auc"]
        assert after > before

    @pytest.mark.parametrize("mode", ["hogwild", "average"])
    def test_two_workers_reach_single_worker_quality(self, make_trainer, mode):
        baseline = make_trainer(workers=1)
        parallel = make_trainer(workers=2, update_mode=mode)
        hist_1 = baseline.fit()
        hist_k = parallel.fit()
        # AUC tolerance on the [0, 1] scale (metrics are reported in %).
        assert abs(hist_k.best_val_score - hist_1.best_val_score) / 100 < 0.05

    def test_no_validation_split(self, taobao_dataset):
        split = split_edges(taobao_dataset.graph, train_fraction=0.85,
                            val_fraction=0.0, rng=8)
        trainer = ParallelSkipGramTrainer(
            taobao_dataset.all_schemes(), split,
            ParallelTrainerConfig(**SMOKE), rng=5)
        history = trainer.fit()
        assert history.best_epoch == -1
        assert history.val_scores == []
        assert len(history.losses) == 2

    def test_sequential_fallback_without_fork(self, make_trainer, monkeypatch):
        trainer = make_trainer(workers=2, update_mode="hogwild", epochs=1)
        monkeypatch.setattr(
            ParallelSkipGramTrainer, "_fork_available",
            staticmethod(lambda: False))
        history = trainer.fit()
        assert len(history.losses) == 1
        assert np.isfinite(history.losses[0])


class TestEmbeddings:
    def test_store_covers_relations(self, make_trainer, taobao_split):
        trainer = make_trainer(workers=1, epochs=1)
        trainer.fit()
        store = trainer.embeddings()
        assert isinstance(store, EmbeddingStore)
        graph = taobao_split.train_graph
        assert set(store.relations) == set(graph.schema.relationships)
        vectors = store.node_embeddings(np.asarray([0, 1]),
                                        store.relations[0])
        assert vectors.shape == (2, SMOKE["dim"])

    def test_store_is_a_copy(self, make_trainer):
        trainer = make_trainer(workers=1, epochs=1)
        trainer.fit()
        store = trainer.embeddings()
        relation = store.relations[0]
        before = store.tables[relation].copy()
        trainer._tables[relation][:] += 1.0
        np.testing.assert_array_equal(store.tables[relation], before)

    def test_state_dict_round_trip(self, make_trainer):
        trainer = make_trainer(workers=1, epochs=1)
        trainer.fit()
        state = trainer.state_dict()
        for table in trainer._tables.values():
            table[:] = 0.0
        trainer.load_state_dict(state)
        for name, value in trainer.state_dict().items():
            np.testing.assert_array_equal(value, state[name])
