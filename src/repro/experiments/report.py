"""Markdown report generation: paper-reported vs measured, per experiment.

``build_report`` runs every table experiment under a profile and renders a
markdown document comparing each measured value with the paper's reported
one.  The checked-in ``EXPERIMENTS.md`` is a generated-then-annotated
instance of this report.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from repro.experiments import figures as figures_mod
from repro.experiments import paper_reference as ref
from repro.experiments import tables as tables_mod
from repro.experiments.profiles import ExperimentProfile, get_profile


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                    float_fmt: str = "{:.2f}") -> str:
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(out)


def link_prediction_section(measured: Dict[str, Dict[str, List[float]]],
                            title: str) -> str:
    """Paper-vs-measured ROC-AUC (the tables' headline metric)."""
    out = [f"### {title}", ""]
    for dataset, per_model in measured.items():
        rows = []
        reference = ref.LINK_PREDICTION.get(dataset, {})
        for model, values in per_model.items():
            paper = reference.get(model)
            rows.append([
                model,
                paper[0] if paper else float("nan"),
                values[0],
                paper[2] if paper else float("nan"),
                values[2],
            ])
        out.append(f"**{dataset}**")
        out.append("")
        out.append(_markdown_table(
            ["Model", "paper ROC-AUC", "measured ROC-AUC",
             "paper F1", "measured F1"],
            rows,
        ))
        out.append("")
    return "\n".join(out)


def table5_section(measured: Dict[str, Dict[int, tuple]]) -> str:
    out = ["### Table V — exploration depth", ""]
    rows = []
    for dataset, by_depth in measured.items():
        reference = ref.EXPLORATION_DEPTH.get(dataset, {})
        for depth, (roc, f1) in sorted(by_depth.items()):
            paper = reference.get(depth)
            rows.append([
                dataset, depth,
                paper[0] if paper else float("nan"), roc,
                paper[1] if paper else float("nan"), f1,
            ])
    out.append(_markdown_table(
        ["Dataset", "L", "paper ROC", "measured ROC", "paper F1", "measured F1"],
        rows,
    ))
    out.append("")
    return "\n".join(out)


def table6_section(measured: Dict[str, Dict[str, float]]) -> str:
    out = ["### Table VI — inter-relationship uplift (ROC-AUC on r0)", ""]
    models = list(next(iter(measured.values())))
    rows = []
    for label, metrics in measured.items():
        paper = ref.INTER_RELATIONSHIP_UPLIFT.get(label, {})
        row: List[object] = [label]
        for model in models:
            row.append(paper.get(model, float("nan")))
            row.append(metrics[model])
        rows.append(row)
    headers = ["Subgraph"]
    for model in models:
        headers += [f"paper {model}", f"measured {model}"]
    out.append(_markdown_table(headers, rows))
    out.append("")
    return "\n".join(out)


def table7_section(measured: Dict[str, Dict[str, float]]) -> str:
    out = ["### Table VII — ablation (F1)", ""]
    datasets = list(next(iter(measured.values())))
    rows = []
    for variant, per_dataset in measured.items():
        paper = ref.ABLATION_F1.get(variant, {})
        row: List[object] = [variant]
        for dataset in datasets:
            row.append(paper.get(dataset, float("nan")))
            row.append(per_dataset[dataset])
        rows.append(row)
    headers = ["Variant"]
    for dataset in datasets:
        headers += [f"paper {dataset}", f"measured {dataset}"]
    out.append(_markdown_table(headers, rows))
    out.append("")
    return "\n".join(out)


def table8_section(measured: Dict[str, List]) -> str:
    out = ["### Table VIII — PR@10 by degree cluster (IMDb)", ""]
    rows = []
    for idx, bucket in enumerate(measured["buckets"]):
        rows.append([
            bucket,
            ref.DEGREE_CLUSTERS_IMDB["GATNE"][idx]
            if idx < len(ref.DEGREE_CLUSTERS_IMDB["GATNE"]) else float("nan"),
            measured["GATNE"][idx],
            ref.DEGREE_CLUSTERS_IMDB["HybridGNN"][idx]
            if idx < len(ref.DEGREE_CLUSTERS_IMDB["HybridGNN"]) else float("nan"),
            measured["HybridGNN"][idx],
        ])
    out.append(_markdown_table(
        ["Bucket (measured edges)", "paper GATNE", "measured GATNE",
         "paper HybridGNN", "measured HybridGNN"],
        rows, float_fmt="{:.4f}",
    ))
    out.append("")
    return "\n".join(out)


def build_report(profile: Optional[ExperimentProfile] = None) -> str:
    """Run every table experiment and render the full markdown report.

    This is expensive (it trains dozens of models); the benches run the same
    experiments individually.
    """
    profile = profile or get_profile()
    out = io.StringIO()
    out.write(f"# Experiments report (profile: {profile.name})\n\n")
    out.write(link_prediction_section(tables_mod.table3(profile=profile),
                                      "Tables III — Amazon / YouTube / IMDb"))
    out.write("\n")
    out.write(link_prediction_section(tables_mod.table4(profile=profile),
                                      "Table IV — Taobao / Kuaishou"))
    out.write("\n")
    out.write(table5_section(tables_mod.table5(profile=profile)))
    out.write("\n")
    out.write(table6_section(tables_mod.table6(profile=profile)))
    out.write("\n")
    out.write(table7_section(tables_mod.table7(profile=profile)))
    out.write("\n")
    out.write(table8_section(tables_mod.table8(profile=profile)))
    return out.getvalue()
