"""Experiment harness: profiles, model factory, runner, tables and figures."""

from repro.experiments.profiles import PAPER, SMOKE, ExperimentProfile, get_profile
from repro.experiments.models import (
    ABLATION_VARIANTS,
    MODEL_NAMES,
    HybridGNNModel,
    make_model,
)
from repro.experiments.runner import (
    RunResult,
    mean_row,
    prepare_split,
    run_seeds,
    run_single,
)
from repro.experiments import figures, tables

__all__ = [
    "ExperimentProfile",
    "SMOKE",
    "PAPER",
    "get_profile",
    "MODEL_NAMES",
    "ABLATION_VARIANTS",
    "HybridGNNModel",
    "make_model",
    "RunResult",
    "run_single",
    "run_seeds",
    "mean_row",
    "prepare_split",
    "tables",
    "figures",
]
