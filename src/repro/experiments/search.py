"""Grid search over HybridGNN hyper-parameters (Sect. IV-C protocol).

The paper tunes the base-embedding dimension, the edge-embedding dimension
and the number of negatives by grid search, selecting on validation
performance.  :class:`GridSearch` reproduces that protocol for any subset of
:class:`~repro.core.config.HybridGNNConfig` fields.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core import HybridGNN, SkipGramTrainer
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.errors import TrainingError
from repro.eval import evaluate_link_prediction
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.utils.rng import SeedLike, as_rng, spawn_rng


@dataclass(frozen=True)
class SearchResult:
    """One grid point's outcome."""

    overrides: Dict[str, object]
    val_score: float
    test_score: float


@dataclass
class GridSearchOutcome:
    """All grid points, sorted by validation score (best first)."""

    results: List[SearchResult]

    @property
    def best(self) -> SearchResult:
        return self.results[0]

    def as_rows(self) -> List[List[object]]:
        return [
            [", ".join(f"{k}={v}" for k, v in r.overrides.items()) or "(defaults)",
             r.val_score, r.test_score]
            for r in self.results
        ]


class GridSearch:
    """Exhaustive search over a parameter grid, selected on validation.

    Parameters
    ----------
    grid:
        Mapping of HybridGNNConfig field name -> candidate values, e.g.
        ``{"base_dim": [16, 32], "num_negatives": [1, 5]}``.
    """

    def __init__(self, grid: Dict[str, Sequence],
                 profile: Optional[ExperimentProfile] = None,
                 rng: SeedLike = None):
        if not grid:
            raise TrainingError("the search grid must not be empty")
        for name, values in grid.items():
            if not list(values):
                raise TrainingError(f"grid entry {name!r} has no candidates")
        self.grid = {name: list(values) for name, values in grid.items()}
        self.profile = profile or get_profile()
        self._rng = as_rng(rng)

    def points(self) -> List[Dict[str, object]]:
        """Every combination in the grid, in deterministic order."""
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [dict(zip(names, values)) for values in combos]

    def run(self, dataset: Dataset, split: EdgeSplit) -> GridSearchOutcome:
        """Train one model per grid point; rank by validation ROC-AUC."""
        results: List[SearchResult] = []
        schemes = dataset.all_schemes()
        for overrides in self.points():
            config = replace(self.profile.hybrid, **overrides)
            model = HybridGNN(
                split.train_graph, schemes, config, rng=spawn_rng(self._rng)
            )
            trainer = SkipGramTrainer(
                model, schemes, split, config=self.profile.trainer,
                rng=spawn_rng(self._rng),
            )
            history = trainer.fit()
            val_score = history.best_val_score
            if val_score == float("-inf"):
                # No validation set: fall back to the test metric for ranking
                # (flagged by equal val/test entries).
                val_score = evaluate_link_prediction(model, split.test)["roc_auc"]
            test_score = evaluate_link_prediction(model, split.test)["roc_auc"]
            results.append(
                SearchResult(
                    overrides=overrides, val_score=val_score, test_score=test_score
                )
            )
        results.sort(key=lambda r: -r.val_score)
        return GridSearchOutcome(results=results)
