"""Reproduction of every table in the paper's evaluation (Sect. IV).

Each ``tableN`` function runs the experiment behind the corresponding paper
table, returns its data as nested dicts, and can render the same rows the
paper prints via :func:`repro.utils.tables.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.eval import (
    degree_bucketed_ranking,
    evaluate_link_prediction,
    paired_t_test,
)
from repro.experiments.models import ABLATION_VARIANTS, MODEL_NAMES, make_model
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.runner import mean_row, prepare_split, run_seeds, run_single
from repro.utils.tables import format_table

METRIC_COLUMNS = ["ROC-AUC", "PR-AUC", "F1", "PR@10", "HR@10"]


# ----------------------------------------------------------------------
# Tables III & IV: the main link-prediction comparison
# ----------------------------------------------------------------------
def link_prediction_table(
    datasets: Sequence[str],
    models: Sequence[str] = tuple(MODEL_NAMES),
    profile: Optional[ExperimentProfile] = None,
) -> Dict[str, Dict[str, List[float]]]:
    """{dataset: {model: [roc, pr, f1, pr@10, hr@10]}} averaged over seeds."""
    profile = profile or get_profile()
    results: Dict[str, Dict[str, List[float]]] = {}
    for dataset_name in datasets:
        results[dataset_name] = {}
        for model_name in models:
            runs = run_seeds(model_name, dataset_name, profile=profile)
            results[dataset_name][model_name] = mean_row(runs)
    return results


def table3(profile: Optional[ExperimentProfile] = None,
           models: Sequence[str] = tuple(MODEL_NAMES)) -> Dict:
    """Table III: Amazon (G1), YouTube (G1) and IMDb (G2)."""
    return link_prediction_table(("amazon", "youtube", "imdb"), models, profile)


def table4(profile: Optional[ExperimentProfile] = None,
           models: Sequence[str] = tuple(MODEL_NAMES)) -> Dict:
    """Table IV: Taobao and Kuaishou (both G3)."""
    return link_prediction_table(("taobao", "kuaishou"), models, profile)


def render_link_prediction(results: Dict[str, Dict[str, List[float]]],
                           title: str) -> str:
    """Render a Tables III/IV-shaped result as aligned text tables."""
    blocks = []
    for dataset_name, per_model in results.items():
        rows = [[model] + values for model, values in per_model.items()]
        blocks.append(
            format_table(["Model"] + METRIC_COLUMNS, rows,
                         title=f"{title} — {dataset_name}")
        )
    return "\n\n".join(blocks)


def significance_report(
    dataset_name: str,
    baseline: str = "GATNE",
    metric_index: int = 0,
    profile: Optional[ExperimentProfile] = None,
) -> Dict[str, float]:
    """p-values of HybridGNN vs a baseline across seeds (the paper's t-test)."""
    profile = profile or get_profile()
    ours = [r.row()[metric_index] for r in run_seeds("HybridGNN", dataset_name, profile=profile)]
    theirs = [r.row()[metric_index] for r in run_seeds(baseline, dataset_name, profile=profile)]
    outcome = paired_t_test(ours, theirs)
    return {
        "mean_difference": outcome.mean_difference,
        "p_value": outcome.p_value,
    }


# ----------------------------------------------------------------------
# Table V: randomized-exploration depth
# ----------------------------------------------------------------------
def table5(
    datasets: Sequence[str] = ("amazon", "youtube", "imdb", "taobao"),
    depths: Sequence[int] = (1, 2, 3),
    profile: Optional[ExperimentProfile] = None,
) -> Dict[str, Dict[int, Tuple[float, float]]]:
    """{dataset: {L: (roc_auc, f1)}} for HybridGNN at each exploration depth."""
    profile = profile or get_profile()
    results: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for dataset_name in datasets:
        results[dataset_name] = {}
        for depth in depths:
            runs = run_seeds(
                "HybridGNN", dataset_name, profile=profile,
                hybrid_overrides={"exploration_depth": depth},
            )
            row = mean_row(runs)
            results[dataset_name][depth] = (row[0], row[2])
    return results


def render_table5(results: Dict[str, Dict[int, Tuple[float, float]]]) -> str:
    datasets = list(results)
    depths = sorted(next(iter(results.values())))
    headers = ["Depth"] + [f"{d} ROC/F1" for d in datasets]
    rows = []
    for depth in depths:
        row = [f"HybridGNN (L={depth})"]
        for dataset_name in datasets:
            roc, f1 = results[dataset_name][depth]
            row.append(f"{roc:.2f}/{f1:.2f}")
        rows.append(row)
    return format_table(headers, rows, title="Table V — randomized exploration depth")


# ----------------------------------------------------------------------
# Table VI: uplift from inter-relationship information
# ----------------------------------------------------------------------
def table6(
    dataset_name: str = "youtube",
    models: Sequence[str] = ("GCN", "GATNE", "HybridGNN"),
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """ROC-AUC on relationship r0 as the training graph grows g_{r0} -> G.

    Returns {subset_label: {model: roc_auc}}.  GCN (homogeneous) is trained
    on g_{r0} only — per the paper its row is constant — while the multiplex
    models see the growing relationship set.
    """
    profile = profile or get_profile()
    dataset, split = prepare_split(dataset_name, profile, seed)
    relations = list(dataset.graph.schema.relationships)
    target = relations[0]
    results: Dict[str, Dict[str, float]] = {}

    # GCN's constant row: trained once on the target-relationship subgraph.
    gcn_split = EdgeSplit(
        train_graph=split.train_graph.relationship_subgraph([target]),
        val={target: split.val[target]} if target in split.val else {},
        test={target: split.test[target]},
    )
    gcn_dataset = Dataset(
        dataset.name, gcn_split.train_graph, dataset.metapath_patterns,
        dataset.abbreviations,
    )
    gcn_score = None
    if "GCN" in models:
        gcn = make_model("GCN", profile, seed)
        gcn.fit(gcn_dataset, gcn_split)
        gcn_score = evaluate_link_prediction(gcn, gcn_split.test)["roc_auc"]

    for upto in range(1, len(relations) + 1):
        subset = relations[:upto]
        label = "g_{" + ",".join(f"r{i}" for i in range(upto)) + "}"
        sub_train = split.train_graph.relationship_subgraph(subset)
        sub_split = EdgeSplit(
            train_graph=sub_train,
            val={target: split.val[target]} if target in split.val else {},
            test={target: split.test[target]},
        )
        sub_dataset = Dataset(
            dataset.name, sub_train, dataset.metapath_patterns, dataset.abbreviations
        )
        results[label] = {}
        for model_name in models:
            if model_name == "GCN":
                results[label][model_name] = gcn_score
                continue
            model = make_model(model_name, profile, seed)
            model.fit(sub_dataset, sub_split)
            results[label][model_name] = evaluate_link_prediction(
                model, sub_split.test
            )["roc_auc"]
    return results


def render_table6(results: Dict[str, Dict[str, float]]) -> str:
    models = list(next(iter(results.values())))
    rows = [[label] + [metrics[m] for m in models] for label, metrics in results.items()]
    return format_table(
        ["Subgraph"] + list(models), rows,
        title="Table VI — uplift from inter-relationship (ROC-AUC on r0)",
        float_fmt="{:.2f}",
    )


# ----------------------------------------------------------------------
# Table VII: ablation study
# ----------------------------------------------------------------------
def table7(
    datasets: Sequence[str] = ("amazon", "youtube", "imdb", "taobao"),
    profile: Optional[ExperimentProfile] = None,
) -> Dict[str, Dict[str, float]]:
    """{variant: {dataset: F1}} for the four Table VII ablations + full model."""
    profile = profile or get_profile()
    results: Dict[str, Dict[str, float]] = {}
    for variant, overrides in ABLATION_VARIANTS.items():
        results[variant] = {}
        for dataset_name in datasets:
            runs = run_seeds(
                "HybridGNN", dataset_name, profile=profile,
                hybrid_overrides=overrides,
            )
            results[variant][dataset_name] = mean_row(runs)[2]
    return results


def render_table7(results: Dict[str, Dict[str, float]]) -> str:
    datasets = list(next(iter(results.values())))
    rows = [
        [variant] + [per_dataset[d] for d in datasets]
        for variant, per_dataset in results.items()
    ]
    return format_table(
        ["Model"] + list(datasets), rows,
        title="Table VII — ablation study (F1)", float_fmt="{:.2f}",
    )


# ----------------------------------------------------------------------
# Table VIII: degree-cluster comparison with GATNE on IMDb
# ----------------------------------------------------------------------
def table8(
    dataset_name: str = "imdb",
    num_buckets: int = 4,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
) -> Dict[str, List]:
    """PR@10 per degree cluster for GATNE vs HybridGNN.

    Returns {"buckets": labels, "GATNE": [...], "HybridGNN": [...],
    "improvement_pct": [...]}.
    """
    profile = profile or get_profile()
    dataset, split = prepare_split(dataset_name, profile, seed)
    per_model: Dict[str, List[float]] = {}
    labels: List[str] = []
    for model_name in ("GATNE", "HybridGNN"):
        result = run_single(
            model_name, dataset_name, seed=seed, profile=profile,
            keep_per_node=True, dataset=dataset, split=split,
        )
        buckets = degree_bucketed_ranking(
            result.ranking, split.train_graph, num_buckets=num_buckets
        )
        labels = [b.label for b in buckets]
        per_model[model_name] = [b.pr_at_k for b in buckets]
    improvement = [
        (100.0 * (ours - theirs) / theirs) if theirs > 0 else float("nan")
        for ours, theirs in zip(per_model["HybridGNN"], per_model["GATNE"])
    ]
    return {
        "buckets": labels,
        "GATNE": per_model["GATNE"],
        "HybridGNN": per_model["HybridGNN"],
        "improvement_pct": improvement,
    }


def render_table8(results: Dict[str, List]) -> str:
    rows = [
        ["GATNE"] + results["GATNE"],
        ["HybridGNN"] + results["HybridGNN"],
        ["Improvement %"] + results["improvement_pct"],
    ]
    return format_table(
        ["Model"] + list(results["buckets"]), rows,
        title="Table VIII — PR@10 by degree cluster (IMDb)",
    )
