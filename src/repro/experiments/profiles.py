"""Execution profiles for the experiment harness.

Every bench target runs under a profile controlling dataset scale and
training budget:

- ``ci``: smallest complete configuration — every bench finishes in a
  combined ~15-20 CPU-minutes; select with ``REPRO_PROFILE=ci``.
- ``smoke`` (default for ``pytest benchmarks/``): small graphs, a modest
  training budget; minutes per bench on a laptop CPU.
- ``paper``: larger graphs and budgets, closer to the paper's settings;
  select it with ``REPRO_PROFILE=paper``.

Absolute metric values differ between profiles (and from the paper's
testbed); the comparisons the paper makes — model ordering, ablation
deltas, depth peaks — are what the harness reproduces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.config import HybridGNNConfig, TrainerConfig


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale and budget knobs shared by all experiments."""

    name: str
    scale: float
    seeds: int
    trainer: TrainerConfig
    hybrid: HybridGNNConfig
    shallow_epochs: int       # DeepWalk / node2vec / LINE
    shallow_walks: int
    fullbatch_epochs: int     # GCN / R-GCN
    sage_epochs: int
    ranking_max_sources: int  # cap on ranked source nodes per relation


SMOKE = ExperimentProfile(
    name="smoke",
    scale=0.25,
    seeds=1,
    trainer=TrainerConfig(
        epochs=8, batch_size=512, num_walks=2, walk_length=8, window=3,
        patience=4, learning_rate=2e-2, max_batches_per_epoch=60,
    ),
    hybrid=HybridGNNConfig(
        base_dim=32, edge_dim=16, metapath_fanouts=(5, 3, 2, 2, 2, 2),
        exploration_fanout=5, exploration_depth=2,
    ),
    shallow_epochs=4,
    shallow_walks=4,
    fullbatch_epochs=80,
    sage_epochs=6,
    ranking_max_sources=25,
)

PAPER = ExperimentProfile(
    name="paper",
    scale=1.0,
    seeds=3,
    trainer=TrainerConfig(
        epochs=15, batch_size=512, num_walks=4, walk_length=10, window=5,
        patience=5, learning_rate=1e-2,
    ),
    hybrid=HybridGNNConfig(
        base_dim=32, edge_dim=16, metapath_fanouts=(5, 4, 3, 2, 2, 2),
        exploration_fanout=5, exploration_depth=2,
    ),
    shallow_epochs=6,
    shallow_walks=8,
    fullbatch_epochs=200,
    sage_epochs=8,
    ranking_max_sources=80,
)

CI = ExperimentProfile(
    name="ci",
    scale=0.2,
    seeds=1,
    trainer=TrainerConfig(
        epochs=5, batch_size=512, num_walks=2, walk_length=8, window=3,
        patience=3, learning_rate=2e-2, max_batches_per_epoch=30,
    ),
    hybrid=HybridGNNConfig(
        base_dim=24, edge_dim=12, metapath_fanouts=(4, 3, 2, 2, 2, 2),
        exploration_fanout=4, exploration_depth=2, eval_samples=2,
    ),
    shallow_epochs=3,
    shallow_walks=3,
    fullbatch_epochs=60,
    sage_epochs=4,
    ranking_max_sources=20,
)

_PROFILES = {"smoke": SMOKE, "paper": PAPER, "ci": CI}


def get_profile(name: str = "") -> ExperimentProfile:
    """Resolve a profile by name, falling back to ``$REPRO_PROFILE``/smoke."""
    name = name or os.environ.get("REPRO_PROFILE", "smoke")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
