"""The paper's reported numbers, as data.

Transcribed from the ICDE 2022 paper's evaluation section so the report
generator can print paper-vs-measured side by side.  Link-prediction values
are percentages; PR@10/HR@10 are fractions, as printed in Tables III/IV.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# Tables III & IV: [ROC-AUC, PR-AUC, F1, PR@10, HR@10] per model per dataset.
LINK_PREDICTION: Dict[str, Dict[str, List[float]]] = {
    "amazon": {
        "DeepWalk":  [95.89, 95.42, 90.54, 0.0096, 0.0436],
        "node2vec":  [95.16, 94.13, 89.34, 0.0094, 0.0423],
        "LINE":      [91.71, 91.82, 92.01, 0.0096, 0.0407],
        "GCN":       [95.43, 94.19, 90.15, 0.0003, 0.0014],
        "GraphSage": [96.71, 96.05, 91.58, 0.0044, 0.0201],
        "HAN":       [96.78, 96.62, 92.04, 0.0171, 0.0561],
        "MAGNN":     [96.99, 96.48, 91.94, 0.0118, 0.0357],
        "R-GCN":     [97.26, 96.07, 93.12, 0.0318, 0.1137],
        "GATNE":     [97.44, 97.05, 92.87, 0.0392, 0.1440],
        "HybridGNN": [97.79, 97.47, 93.51, 0.0430, 0.1613],
    },
    "youtube": {
        "DeepWalk":  [74.33, 68.94, 68.10, 0.0348, 0.0118],
        "node2vec":  [77.14, 72.13, 70.75, 0.0404, 0.0159],
        "LINE":      [76.91, 71.17, 70.22, 0.0403, 0.0150],
        "GCN":       [78.01, 76.86, 71.26, 0.0061, 0.0015],
        "GraphSage": [76.20, 70.24, 69.74, 0.0155, 0.0052],
        "HAN":       [78.36, 72.74, 71.26, 0.0154, 0.0027],
        "MAGNN":     [79.75, 75.03, 72.53, 0.0369, 0.0028],
        "R-GCN":     [80.60, 75.31, 72.98, 0.0367, 0.0133],
        "GATNE":     [84.61, 81.93, 76.83, 0.0435, 0.0258],
        "HybridGNN": [86.22, 85.16, 79.07, 0.0461, 0.0264],
    },
    "imdb": {
        "DeepWalk":  [86.47, 87.10, 79.54, 0.0018, 0.0125],
        "node2vec":  [87.53, 90.21, 78.18, 0.0017, 0.0114],
        "LINE":      [85.29, 84.79, 78.32, 0.0020, 0.0135],
        "GCN":       [87.05, 90.54, 79.62, 0.0004, 0.0034],
        "GraphSage": [88.07, 91.32, 81.27, 0.0021, 0.0198],
        "HAN":       [89.44, 92.01, 82.75, 0.0248, 0.2221],
        "MAGNN":     [88.87, 91.75, 81.46, 0.0638, 0.5125],
        "R-GCN":     [87.46, 88.89, 82.59, 0.0468, 0.3932],
        "GATNE":     [89.22, 93.02, 83.12, 0.0820, 0.6192],
        "HybridGNN": [90.94, 93.44, 84.26, 0.1074, 0.7684],
    },
    "taobao": {
        "DeepWalk":  [88.21, 87.98, 80.39, 0.0102, 0.0944],
        "node2vec":  [88.02, 87.60, 80.24, 0.0091, 0.0841],
        "LINE":      [87.68, 90.39, 79.59, 0.0099, 0.0928],
        "GCN":       [91.12, 92.38, 83.07, 0.0002, 0.0019],
        "GraphSage": [92.90, 93.12, 84.99, 0.0009, 0.0036],
        "HAN":       [93.00, 93.13, 84.89, 0.0025, 0.0200],
        "MAGNN":     [95.26, 95.61, 88.52, 0.0130, 0.0857],
        "R-GCN":     [96.59, 95.29, 91.34, 0.0123, 0.1148],
        "GATNE":     [97.19, 97.82, 92.53, 0.0214, 0.1175],
        "HybridGNN": [98.45, 98.77, 95.61, 0.0217, 0.1281],
    },
    "kuaishou": {
        "DeepWalk":  [86.93, 83.53, 73.24, 0.0043, 0.0420],
        "node2vec":  [85.93, 82.49, 70.82, 0.0035, 0.0345],
        "LINE":      [86.99, 83.59, 73.40, 0.0048, 0.0445],
        "GCN":       [87.66, 84.68, 74.38, 0.0018, 0.0131],
        "GraphSage": [87.02, 83.70, 72.02, 0.0104, 0.0889],
        "HAN":       [88.46, 86.35, 76.31, 0.0077, 0.0730],
        "MAGNN":     [89.11, 87.15, 77.43, 0.0234, 0.2067],
        "R-GCN":     [86.75, 87.09, 78.44, 0.0212, 0.1803],
        "GATNE":     [91.83, 91.32, 82.72, 0.0393, 0.3344],
        "HybridGNN": [92.11, 92.50, 86.02, 0.0430, 0.3911],
    },
}

# Table V: (ROC-AUC, F1) per exploration depth per dataset.
EXPLORATION_DEPTH: Dict[str, Dict[int, Tuple[float, float]]] = {
    "amazon":  {1: (97.72, 93.36), 2: (97.67, 93.33), 3: (97.65, 93.32)},
    "youtube": {1: (85.26, 78.13), 2: (85.67, 78.64), 3: (85.64, 78.70)},
    "imdb":    {1: (89.54, 83.39), 2: (89.78, 83.60), 3: (89.72, 83.49)},
    "taobao":  {1: (98.24, 94.85), 2: (98.64, 95.81), 3: (98.01, 94.39)},
}

# Table VI: ROC-AUC on r0 as the YouTube subgraph grows.
INTER_RELATIONSHIP_UPLIFT: Dict[str, Dict[str, float]] = {
    "g_{r0}":             {"GCN": 80.63, "GATNE": 82.92, "HybridGNN": 82.97},
    "g_{r0,r1}":          {"GCN": 80.63, "GATNE": 84.17, "HybridGNN": 86.60},
    "g_{r0,r1,r2}":       {"GCN": 80.63, "GATNE": 84.37, "HybridGNN": 87.05},
    "g_{r0,r1,r2,r3}":    {"GCN": 80.63, "GATNE": 87.01, "HybridGNN": 87.82},
    "g_{r0,r1,r2,r3,r4}": {"GCN": 80.63, "GATNE": 88.04, "HybridGNN": 88.73},
}

# Table VII: F1 per ablation variant per dataset.
ABLATION_F1: Dict[str, Dict[str, float]] = {
    "HybridGNN": {
        "amazon": 93.51, "youtube": 79.07, "imdb": 84.26, "taobao": 95.61,
    },
    "w/o metapath-level attention": {
        "amazon": 93.29, "youtube": 78.14, "imdb": 83.37, "taobao": 93.25,
    },
    "w/o relationship-level attention": {
        "amazon": 93.40, "youtube": 78.62, "imdb": 83.55, "taobao": 91.64,
    },
    "w/o randomized exploration": {
        "amazon": 93.45, "youtube": 77.92, "imdb": 83.43, "taobao": 89.45,
    },
    "w/o hybrid aggregation flow": {
        "amazon": 93.41, "youtube": 76.42, "imdb": 83.12, "taobao": 89.02,
    },
}

# Table VIII: PR@10 per degree cluster on IMDb.
DEGREE_CLUSTERS_IMDB: Dict[str, List[float]] = {
    "buckets": ["1<=d<20", "20<=d<39", "39<=d<58", "58<=d<76"],
    "GATNE": [0.1044, 0.1699, 0.2095, 0.1000],
    "HybridGNN": [0.1054, 0.1880, 0.2714, 0.1500],
    "improvement_pct": [0.96, 10.84, 29.55, 50.00],
}
