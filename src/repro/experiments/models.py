"""Model factory: build any of the ten compared models from a profile.

Also adapts :class:`~repro.core.model.HybridGNN` (a bare module) to the
:class:`~repro.baselines.base.BaselineModel` fit/embed interface so the
runner treats all ten models uniformly, including the four Table VII
ablation variants.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import (
    GATNE,
    GCN,
    HAN,
    LINE,
    MAGNN,
    MNE,
    RGCN,
    BaselineModel,
    DeepWalk,
    GraphSage,
    Node2Vec,
)
from repro.core import (
    HybridGNN,
    HybridGNNConfig,
    SkipGramTrainer,
    TrainerConfig,
    TrainingHistory,
)
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.experiments.profiles import ExperimentProfile
from repro.utils.rng import SeedLike, spawn_rng


class HybridGNNModel(BaselineModel):
    """BaselineModel adapter around HybridGNN + its trainer."""

    name = "HybridGNN"

    def __init__(self, config: HybridGNNConfig = HybridGNNConfig(),
                 trainer_config: TrainerConfig = TrainerConfig(),
                 rng: SeedLike = None, name: Optional[str] = None):
        super().__init__(rng)
        self.config = config
        self.trainer_config = trainer_config
        self.module: Optional[HybridGNN] = None
        self.history: Optional[TrainingHistory] = None
        if name is not None:
            self.name = name

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        schemes = dataset.all_schemes()
        self.module = HybridGNN(
            split.train_graph, schemes, self.config, rng=spawn_rng(self._rng)
        )
        trainer = SkipGramTrainer(
            self.module, schemes, split, config=self.trainer_config,
            rng=spawn_rng(self._rng),
        )
        self.history = trainer.fit()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self.module is None:
            raise RuntimeError("HybridGNN has not been fitted")
        return self.module.node_embeddings(nodes, relation)


#: Canonical model order used in Tables III/IV.
MODEL_NAMES: List[str] = [
    "DeepWalk",
    "node2vec",
    "LINE",
    "GCN",
    "GraphSage",
    "HAN",
    "MAGNN",
    "R-GCN",
    "GATNE",
    "HybridGNN",
]

#: Table VII ablation variants (flag overrides on HybridGNNConfig).
ABLATION_VARIANTS: Dict[str, Dict[str, bool]] = {
    "HybridGNN": {},
    "w/o metapath-level attention": {"use_metapath_attention": False},
    "w/o relationship-level attention": {"use_relationship_attention": False},
    "w/o randomized exploration": {"use_randomized_exploration": False},
    "w/o hybrid aggregation flow": {"use_hybrid_flows": False},
}


def make_model(name: str, profile: ExperimentProfile, seed: int,
               hybrid_overrides: Optional[Dict] = None) -> BaselineModel:
    """Instantiate model ``name`` with profile-appropriate budgets."""
    dim = profile.hybrid.base_dim
    tc = profile.trainer
    if name == "DeepWalk":
        return DeepWalk(dim=dim, num_walks=profile.shallow_walks,
                        walk_length=tc.walk_length, window=tc.window,
                        epochs=profile.shallow_epochs, rng=seed)
    if name == "node2vec":
        return Node2Vec(dim=dim, num_walks=profile.shallow_walks,
                        walk_length=tc.walk_length, window=tc.window,
                        epochs=profile.shallow_epochs, rng=seed)
    if name == "LINE":
        return LINE(dim=dim, epochs=4 * profile.shallow_epochs, rng=seed)
    if name == "GCN":
        return GCN(dim=dim, epochs=profile.fullbatch_epochs, rng=seed)
    if name == "GraphSage":
        return GraphSage(dim=dim, epochs=profile.sage_epochs, rng=seed)
    if name == "HAN":
        return HAN(dim=dim, trainer_config=tc, rng=seed)
    if name == "MAGNN":
        return MAGNN(dim=dim, trainer_config=tc, rng=seed)
    if name == "R-GCN":
        return RGCN(dim=dim, epochs=profile.fullbatch_epochs, rng=seed)
    if name == "GATNE":
        return GATNE(base_dim=dim, edge_dim=profile.hybrid.edge_dim,
                     trainer_config=tc, rng=seed)
    if name == "MNE":
        # Bonus baseline (the paper's Fig. 1(b) archetype), not in MODEL_NAMES.
        return MNE(base_dim=dim, edge_dim=max(2, profile.hybrid.edge_dim // 4),
                   trainer_config=tc, rng=seed)
    if name == "HybridGNN":
        config = profile.hybrid
        if hybrid_overrides:
            config = replace(config, **hybrid_overrides)
        return HybridGNNModel(config=config, trainer_config=tc, rng=seed)
    raise ValueError(f"unknown model {name!r}; available: {MODEL_NAMES}")
