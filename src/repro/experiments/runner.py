"""End-to-end experiment execution: dataset -> split -> model -> metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datasets import Dataset, EdgeSplit, load_dataset, split_edges
from repro.eval import (
    LinkPredictionReport,
    RankingReport,
    evaluate_link_prediction,
    evaluate_ranking,
)
from repro.experiments.models import make_model
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.utils.rng import as_rng


@dataclass
class RunResult:
    """All metrics from one (model, dataset, seed) run."""

    model: str
    dataset: str
    seed: int
    link: LinkPredictionReport
    ranking: RankingReport

    def row(self) -> List[float]:
        """The five Table III/IV columns: ROC-AUC, PR-AUC, F1, PR@10, HR@10."""
        return [
            self.link["roc_auc"],
            self.link["pr_auc"],
            self.link["f1"],
            self.ranking["pr_at_k"],
            self.ranking["hr_at_k"],
        ]


def prepare_split(dataset_name: str, profile: ExperimentProfile,
                  seed: int) -> tuple:
    """Deterministically generate a dataset-alike and its edge split."""
    dataset = load_dataset(dataset_name, scale=profile.scale, seed=seed)
    split = split_edges(dataset.graph, rng=seed + 10_000)
    return dataset, split


def run_single(
    model_name: str,
    dataset_name: str,
    seed: int = 0,
    profile: Optional[ExperimentProfile] = None,
    hybrid_overrides: Optional[Dict] = None,
    keep_per_node: bool = False,
    dataset: Optional[Dataset] = None,
    split: Optional[EdgeSplit] = None,
) -> RunResult:
    """Train ``model_name`` on ``dataset_name`` and evaluate on the test set.

    Passing a pre-built ``dataset``/``split`` pair lets callers evaluate many
    models on identical data (how every table in the paper is produced).
    """
    profile = profile or get_profile()
    if dataset is None or split is None:
        dataset, split = prepare_split(dataset_name, profile, seed)
    model = make_model(model_name, profile, seed, hybrid_overrides=hybrid_overrides)
    model.fit(dataset, split)
    link = evaluate_link_prediction(model, split.test)
    ranking = evaluate_ranking(
        model,
        split.train_graph,
        split.test,
        k=10,
        keep_per_node=keep_per_node,
        max_sources=profile.ranking_max_sources,
        rng=as_rng(seed + 20_000),
    )
    return RunResult(
        model=model_name, dataset=dataset_name, seed=seed, link=link, ranking=ranking
    )


def run_seeds(
    model_name: str,
    dataset_name: str,
    profile: Optional[ExperimentProfile] = None,
    hybrid_overrides: Optional[Dict] = None,
) -> List[RunResult]:
    """One run per profile seed (used for mean reporting and t-tests)."""
    profile = profile or get_profile()
    return [
        run_single(
            model_name, dataset_name, seed=seed, profile=profile,
            hybrid_overrides=hybrid_overrides,
        )
        for seed in range(profile.seeds)
    ]


def mean_row(results: List[RunResult]) -> List[float]:
    """Seed-averaged metric row."""
    rows = np.asarray([r.row() for r in results], dtype=np.float64)
    return rows.mean(axis=0).tolist()
