"""Reproduction of the paper's evaluation figures (Sect. IV).

- Fig. 4: hyper-parameter sensitivity (d_m, d_e, number of negatives);
- Fig. 5: metapath attention scores per relationship (Taobao, Kuaishou);
- Fig. 6: PR@10 by degree cluster per relationship (Taobao).

Each function returns the figure's data series; benches print them as text.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval import degree_bucketed_ranking
from repro.experiments.models import make_model
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.experiments.runner import prepare_split, run_single
from repro.utils.rng import as_rng
from repro.utils.tables import format_table


# ----------------------------------------------------------------------
# Fig. 4: parameter sensitivity
# ----------------------------------------------------------------------
def figure4(
    datasets: Sequence[str] = ("amazon", "taobao"),
    base_dims: Sequence[int] = (8, 16, 32, 64),
    edge_dims: Sequence[int] = (2, 4, 8, 16),
    negatives: Sequence[int] = (1, 3, 5, 7),
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """ROC-AUC as each hyper-parameter sweeps (others at profile defaults).

    Returns {dataset: {"d_m": {value: roc}, "d_e": ..., "n": ...}}.  The
    sweep values are scaled-down analogues of the paper's grids (d_m in
    {64..512}, d_e in {2..128}, n in {1..7}) matching the alikes' size.
    """
    profile = profile or get_profile()
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    sweeps = {
        "d_m": ("base_dim", base_dims),
        "d_e": ("edge_dim", edge_dims),
        "n": ("num_negatives", negatives),
    }
    for dataset_name in datasets:
        dataset, split = prepare_split(dataset_name, profile, seed)
        results[dataset_name] = {}
        for label, (field, values) in sweeps.items():
            series: Dict[int, float] = {}
            for value in values:
                run = run_single(
                    "HybridGNN", dataset_name, seed=seed, profile=profile,
                    hybrid_overrides={field: value}, dataset=dataset, split=split,
                )
                series[value] = run.link["roc_auc"]
            results[dataset_name][label] = series
    return results


def render_figure4(results: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    blocks = []
    for dataset_name, sweeps in results.items():
        for label, series in sweeps.items():
            rows = [[value, roc] for value, roc in series.items()]
            blocks.append(
                format_table(
                    [label, "ROC-AUC"], rows,
                    title=f"Fig. 4 — impact of {label} on {dataset_name}",
                    float_fmt="{:.2f}",
                )
            )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Fig. 5: attention score case study
# ----------------------------------------------------------------------
def figure5(
    datasets: Sequence[str] = ("taobao", "kuaishou"),
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Metapath-level attention mass per flow, per relationship.

    Returns {dataset: {relation: {flow_label: score}}}.  Flow labels are the
    Table II pattern abbreviations plus ``random`` for the exploration flow;
    scores within a (relation, start-type) group sum to 1 and groups of
    different start types are averaged where they share the ``random`` flow.
    """
    profile = profile or get_profile()
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset_name in datasets:
        dataset, split = prepare_split(dataset_name, profile, seed)
        run_model = make_model("HybridGNN", profile, seed)
        run_model.fit(dataset, split)
        module = run_model.module
        results[dataset_name] = {}
        rng = as_rng(seed + 1)
        for relation in split.train_graph.schema.relationships:
            merged: Dict[str, List[float]] = {}
            for node_type in split.train_graph.schema.node_types:
                if len(split.train_graph.nodes_of_type(node_type)) == 0:
                    continue
                scores = module.metapath_attention_scores(
                    relation, node_type, rng=rng
                )
                for label, score in scores.items():
                    merged.setdefault(label, []).append(score)
            results[dataset_name][relation] = {
                label: float(np.mean(values)) for label, values in merged.items()
            }
    return results


def render_figure5(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    blocks = []
    for dataset_name, per_relation in results.items():
        labels = sorted({l for scores in per_relation.values() for l in scores})
        rows = []
        for relation, scores in per_relation.items():
            rows.append([relation] + [scores.get(l, float("nan")) for l in labels])
        blocks.append(
            format_table(
                ["Relation"] + labels, rows,
                title=f"Fig. 5 — metapath attention scores on {dataset_name}",
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Fig. 6: degree-cluster performance per relationship
# ----------------------------------------------------------------------
def figure6(
    dataset_name: str = "taobao",
    num_buckets: int = 4,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
) -> Dict[str, List]:
    """PR@10 per degree bucket, per relationship, for HybridGNN.

    Returns {"buckets": labels, relation: [pr@10 per bucket], ...}.
    """
    profile = profile or get_profile()
    dataset, split = prepare_split(dataset_name, profile, seed)
    result = run_single(
        "HybridGNN", dataset_name, seed=seed, profile=profile,
        keep_per_node=True, dataset=dataset, split=split,
    )
    output: Dict[str, List] = {}
    labels: List[str] = []
    for relation in result.ranking.per_node:
        buckets = degree_bucketed_ranking(
            result.ranking, split.train_graph, num_buckets=num_buckets,
            relation=relation,
        )
        labels = [b.label for b in buckets] or labels
        output[relation] = [b.pr_at_k for b in buckets]
    output["buckets"] = labels
    return output


def render_figure6(results: Dict[str, List]) -> str:
    labels = results["buckets"]
    rows = [
        [relation] + values
        for relation, values in results.items()
        if relation != "buckets"
    ]
    return format_table(
        ["Relation"] + list(labels), rows,
        title="Fig. 6 — PR@10 by degree cluster (Taobao)",
    )
