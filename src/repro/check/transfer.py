"""Per-op shape/dtype transfer rules and the abstract propagation engine.

Every differentiable ``Tensor`` op — discovered through the gradcheck
registry's :func:`repro.verify.gradcheck.tensor_ops`, exactly the surface
lint rule R006 polices — plus the module-level functionals (``concat``,
``stack``, ``embedding_lookup``, ``sparse_matmul``, ``where``) must have
a transfer rule registered here.  :func:`uncovered_transfer_rules`
mirrors the registry's ``uncovered_targets()``: a new differentiable op
without a transfer rule is a test failure, not a silent gap.

A transfer rule maps input :class:`~repro.check.spec.TensorSpec` values
(plus the op's recorded static attrs) to the output spec *without
numerics*.  The propagation engine then checks each abstract result
against the shape/dtype observed in the recording trace — a mismatch
means the rule (or the op) is wrong and is reported as an error.

Two ops are *trace-exact*: ``getitem`` (the key is arbitrary Python
indexing) and ``reshape`` (``-1`` inference), whose output shape is taken
from the trace and re-symbolised, with element-count conservation checked
abstractly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.check.spec import (
    BroadcastEvent,
    Dim,
    ShapeSpec,
    SpecError,
    TensorSpec,
    broadcast_specs,
    promote_dtypes,
)
from repro.check.trace import TraceNode

__all__ = [
    "OpContext",
    "PropagationProblem",
    "PropagationResult",
    "propagate",
    "required_transfer_ops",
    "transfer_rule",
    "transfer_rules",
    "uncovered_transfer_rules",
]

#: Module-level functionals traced by ``Tensor._make`` but not discovered
#: by ``tensor_ops()`` (they are free functions, not ``Tensor`` methods).
FUNCTIONAL_OPS: Tuple[str, ...] = (
    "concat",
    "stack",
    "embedding_lookup",
    "sparse_matmul",
    "where",
)


@dataclass
class OpContext:
    """Everything a transfer rule may consult for one traced op."""

    op: str
    inputs: List[TensorSpec]
    attrs: Dict[str, Any]
    observed_shape: Tuple[int, ...]
    observed_dtype: str
    symbols: Mapping[int, str]
    events: List[BroadcastEvent] = field(default_factory=list)

    def resymbolize(self, shape: Sequence[int]) -> ShapeSpec:
        """Tag a trace-observed concrete shape with the active symbols."""
        return ShapeSpec.symbolized(shape, self.symbols)

    def promoted_dtype(self, extra: Sequence[str] = ()) -> str:
        return promote_dtypes([s.dtype for s in self.inputs] + list(extra))

    def record(self, events: Sequence[BroadcastEvent]) -> None:
        self.events.extend(events)


TransferRule = Callable[[OpContext], TensorSpec]

_TRANSFER: Dict[str, TransferRule] = {}


def transfer_rule(*ops: str) -> Callable[[TransferRule], TransferRule]:
    """Register a transfer rule for one or more op names."""

    def register(fn: TransferRule) -> TransferRule:
        for op in ops:
            if op in _TRANSFER:
                raise ValueError(f"duplicate transfer rule for op {op!r}")
            _TRANSFER[op] = fn
        return fn

    return register


def transfer_rules() -> Dict[str, TransferRule]:
    return dict(_TRANSFER)


def required_transfer_ops() -> List[str]:
    """Ops that must have a transfer rule (mirrors ``required_targets``)."""
    from repro.verify.gradcheck import tensor_ops

    return sorted(set(tensor_ops()) | set(FUNCTIONAL_OPS))


def uncovered_transfer_rules() -> List[str]:
    """Required ops with no transfer rule (must be empty)."""
    return sorted(set(required_transfer_ops()) - set(_TRANSFER))


def _normalize_axis(axis: int, rank: int, extra: int = 0) -> int:
    span = rank + extra
    if axis < -span or axis >= span:
        raise SpecError(f"axis {axis} out of range for rank {rank}")
    return axis + span if axis < 0 else axis


# ---------------------------------------------------------------------------
# Elementwise and activation ops
# ---------------------------------------------------------------------------


@transfer_rule("add", "sub", "mul", "truediv")
def _binary_elementwise(ctx: OpContext) -> TensorSpec:
    if len(ctx.inputs) != 2:
        raise SpecError(f"{ctx.op} expects 2 operands, traced {len(ctx.inputs)}")
    shape, events = broadcast_specs([s.shape for s in ctx.inputs])
    ctx.record(events)
    return TensorSpec(shape, ctx.promoted_dtype())


@transfer_rule("neg", "pow", "exp", "log", "sigmoid", "tanh", "relu", "leaky_relu")
def _unary_elementwise(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    return TensorSpec(x.shape, x.dtype)


@transfer_rule("softmax", "log_softmax")
def _softmax(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    _normalize_axis(int(ctx.attrs.get("axis", -1)), x.shape.rank)
    return TensorSpec(x.shape, x.dtype)


# ---------------------------------------------------------------------------
# Contractions
# ---------------------------------------------------------------------------


@transfer_rule("matmul")
def _matmul(ctx: OpContext) -> TensorSpec:
    a, b = ctx.inputs
    dtype = ctx.promoted_dtype()
    if a.shape.rank == 0 or b.shape.rank == 0:
        raise SpecError("matmul operands must have rank >= 1")
    if a.shape.rank == 1 and b.shape.rank == 1:
        if a.shape.dims[0].value != b.shape.dims[0].value:
            raise SpecError(
                f"matmul inner dims differ: {a.shape.render()} @ {b.shape.render()}"
            )
        return TensorSpec(ShapeSpec(()), dtype)
    if a.shape.rank == 1:
        # (k,) @ (..., k, n) -> (..., n)
        if a.shape.dims[0].value != b.shape.dims[-2].value:
            raise SpecError(
                f"matmul inner dims differ: {a.shape.render()} @ {b.shape.render()}"
            )
        return TensorSpec(ShapeSpec(b.shape.dims[:-2] + (b.shape.dims[-1],)), dtype)
    if b.shape.rank == 1:
        # (..., m, k) @ (k,) -> (..., m)
        if a.shape.dims[-1].value != b.shape.dims[0].value:
            raise SpecError(
                f"matmul inner dims differ: {a.shape.render()} @ {b.shape.render()}"
            )
        return TensorSpec(ShapeSpec(a.shape.dims[:-1]), dtype)
    if a.shape.dims[-1].value != b.shape.dims[-2].value:
        raise SpecError(
            f"matmul inner dims differ: {a.shape.render()} @ {b.shape.render()}"
        )
    batch, events = broadcast_specs(
        [ShapeSpec(a.shape.dims[:-2]), ShapeSpec(b.shape.dims[:-2])]
    )
    ctx.record(events)
    return TensorSpec(
        ShapeSpec(batch.dims + (a.shape.dims[-2], b.shape.dims[-1])), dtype
    )


@transfer_rule("sparse_matmul")
def _sparse_matmul(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    matrix = ctx.resymbolize(ctx.attrs["matrix_shape"])
    if matrix.rank != 2 or x.shape.rank != 2:
        raise SpecError(
            f"sparse_matmul expects 2-D operands, got {matrix.render()} @ {x.shape.render()}"
        )
    if matrix.dims[1].value != x.shape.dims[0].value:
        raise SpecError(
            f"sparse_matmul inner dims differ: {matrix.render()} @ {x.shape.render()}"
        )
    dtype = promote_dtypes([str(ctx.attrs.get("matrix_dtype", x.dtype)), x.dtype])
    return TensorSpec(ShapeSpec((matrix.dims[0], x.shape.dims[1])), dtype)


@transfer_rule("embedding_lookup")
def _embedding_lookup(ctx: OpContext) -> TensorSpec:
    (weight,) = ctx.inputs
    if weight.shape.rank != 2:
        raise SpecError(
            f"embedding_lookup weight must be 2-D, got {weight.shape.render()}"
        )
    indices = ctx.resymbolize(ctx.attrs["indices_shape"])
    return TensorSpec(ShapeSpec(indices.dims + (weight.shape.dims[1],)), weight.dtype)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _reduced_shape(shape: ShapeSpec, axis: Any, keepdims: bool) -> ShapeSpec:
    if axis is None:
        axes = tuple(range(shape.rank))
    elif isinstance(axis, (tuple, list)):
        axes = tuple(_normalize_axis(int(a), shape.rank) for a in axis)
    else:
        axes = (_normalize_axis(int(axis), shape.rank),)
    dims: List[Dim] = []
    for i, dim in enumerate(shape.dims):
        if i in axes:
            if keepdims:
                dims.append(Dim(1))
        else:
            dims.append(dim)
    return ShapeSpec(dims)


@transfer_rule("sum", "mean")
def _reduce(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    shape = _reduced_shape(
        x.shape, ctx.attrs.get("axis"), bool(ctx.attrs.get("keepdims", False))
    )
    return TensorSpec(shape, x.dtype)


@transfer_rule("max")
def _max(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    if "axis" not in ctx.attrs or ctx.attrs["axis"] is None:
        raise SpecError("max requires an integer axis")
    shape = _reduced_shape(
        x.shape, int(ctx.attrs["axis"]), bool(ctx.attrs.get("keepdims", False))
    )
    return TensorSpec(shape, x.dtype)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


@transfer_rule("reshape")
def _reshape(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    # Trace-exact (``-1`` inference), but element count must be conserved.
    out = ctx.resymbolize(ctx.observed_shape)
    if out.size() != x.shape.size():
        raise SpecError(
            f"reshape changes element count: {x.shape.render()} "
            f"({x.shape.size()} elems) -> {out.render()} ({out.size()} elems)"
        )
    requested = tuple(ctx.attrs.get("shape", ()))
    if -1 not in requested and requested and tuple(requested) != ctx.observed_shape:
        raise SpecError(
            f"reshape target {requested} disagrees with observed {ctx.observed_shape}"
        )
    return TensorSpec(out, x.dtype)


@transfer_rule("getitem")
def _getitem(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    # Trace-exact: arbitrary Python indexing; adopt the observed shape.
    return TensorSpec(ctx.resymbolize(ctx.observed_shape), x.dtype)


@transfer_rule("transpose")
def _transpose(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    axis1 = _normalize_axis(int(ctx.attrs.get("axis1", -2)), x.shape.rank)
    axis2 = _normalize_axis(int(ctx.attrs.get("axis2", -1)), x.shape.rank)
    dims = list(x.shape.dims)
    dims[axis1], dims[axis2] = dims[axis2], dims[axis1]
    return TensorSpec(ShapeSpec(dims), x.dtype)


@transfer_rule("squeeze")
def _squeeze(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    axis = _normalize_axis(int(ctx.attrs["axis"]), x.shape.rank)
    if x.shape.dims[axis].value != 1:
        raise SpecError(
            f"squeeze axis {axis} has extent {x.shape.dims[axis].render()}, not 1"
        )
    dims = list(x.shape.dims)
    del dims[axis]
    return TensorSpec(ShapeSpec(dims), x.dtype)


@transfer_rule("unsqueeze")
def _unsqueeze(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    axis = _normalize_axis(int(ctx.attrs["axis"]), x.shape.rank, extra=1)
    dims = list(x.shape.dims)
    dims.insert(axis, Dim(1))
    return TensorSpec(ShapeSpec(dims), x.dtype)


@transfer_rule("broadcast_to")
def _broadcast_to(ctx: OpContext) -> TensorSpec:
    (x,) = ctx.inputs
    target = ctx.resymbolize(ctx.attrs["shape"])
    shape, events = broadcast_specs([x.shape, target])
    if shape.values() != target.values():
        raise SpecError(
            f"cannot broadcast {x.shape.render()} to {target.render()}"
        )
    # Only the real operand's alignment is meaningful.
    ctx.record([e for e in events if e.operand == 0])
    return TensorSpec(shape, x.dtype)


# ---------------------------------------------------------------------------
# Functionals
# ---------------------------------------------------------------------------


@transfer_rule("concat")
def _concat(ctx: OpContext) -> TensorSpec:
    if not ctx.inputs:
        raise SpecError("concat of zero tensors")
    rank = ctx.inputs[0].shape.rank
    axis = _normalize_axis(int(ctx.attrs.get("axis", 0)), rank)
    total = 0
    dims: List[Optional[Dim]] = [None] * rank
    for spec in ctx.inputs:
        if spec.shape.rank != rank:
            raise SpecError(
                f"concat rank mismatch: {spec.shape.render()} vs rank {rank}"
            )
        total += spec.shape.dims[axis].value
        for i, dim in enumerate(spec.shape.dims):
            if i == axis:
                continue
            if dims[i] is None:
                dims[i] = dim
            elif dims[i].value != dim.value:  # type: ignore[union-attr]
                raise SpecError(
                    f"concat non-axis extents differ on axis {i}: "
                    f"{dims[i].render()} vs {dim.render()}"  # type: ignore[union-attr]
                )
            elif not dims[i].symbol:  # type: ignore[union-attr]
                dims[i] = dim
    dims[axis] = Dim(total, ctx.symbols.get(total, ""))
    return TensorSpec(ShapeSpec([d for d in dims if d is not None]), ctx.promoted_dtype())


@transfer_rule("stack")
def _stack(ctx: OpContext) -> TensorSpec:
    if not ctx.inputs:
        raise SpecError("stack of zero tensors")
    first = ctx.inputs[0].shape
    for spec in ctx.inputs[1:]:
        if spec.shape.values() != first.values():
            raise SpecError(
                f"stack shape mismatch: {spec.shape.render()} vs {first.render()}"
            )
    axis = _normalize_axis(int(ctx.attrs.get("axis", 0)), first.rank, extra=1)
    dims = list(first.dims)
    dims.insert(axis, Dim(len(ctx.inputs)))
    return TensorSpec(ShapeSpec(dims), ctx.promoted_dtype())


@transfer_rule("where")
def _where(ctx: OpContext) -> TensorSpec:
    a, b = ctx.inputs
    shape, events = broadcast_specs([a.shape, b.shape])
    ctx.record(events)
    condition = ctx.resymbolize(ctx.attrs["condition_shape"])
    # The (non-differentiable) condition also participates in broadcasting.
    shape, _ = broadcast_specs([shape, condition])
    return TensorSpec(shape, ctx.promoted_dtype())


# ---------------------------------------------------------------------------
# Propagation engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PropagationProblem:
    """Raw defect discovered while propagating specs over a trace."""

    kind: str  # "missing_rule" | "mismatch"
    node: int
    op: str
    message: str


@dataclass
class PropagationResult:
    """Abstract spec per node plus all defects and broadcast events."""

    specs: Dict[int, TensorSpec]
    problems: List[PropagationProblem]
    events: List[Tuple[int, BroadcastEvent]]

    def spec_of(self, index: int) -> TensorSpec:
        return self.specs[index]


def propagate(
    nodes: Sequence[TraceNode], symbols: Optional[Mapping[int, str]] = None
) -> PropagationResult:
    """Abstractly re-execute a recorded trace through the transfer rules.

    Leaves are symbolised from their observed shapes; each op node runs
    its transfer rule on the parents' specs and is validated against the
    observed shape/dtype.  Missing rules and mismatches become
    :class:`PropagationProblem` entries; on either, the node falls back to
    its (re-symbolised) observed spec so downstream propagation continues.
    """
    symbols = dict(symbols or {})
    specs: Dict[int, TensorSpec] = {}
    problems: List[PropagationProblem] = []
    events: List[Tuple[int, BroadcastEvent]] = []
    for node in nodes:
        observed = TensorSpec(ShapeSpec.symbolized(node.shape, symbols), node.dtype)
        if node.op is None:
            specs[node.index] = observed
            continue
        rule = _TRANSFER.get(node.op)
        if rule is None:
            problems.append(
                PropagationProblem(
                    kind="missing_rule",
                    node=node.index,
                    op=node.op,
                    message=(
                        f"op {node.op!r} (node {node.index}) has no shape/dtype "
                        "transfer rule registered in repro.check.transfer"
                    ),
                )
            )
            specs[node.index] = observed
            continue
        ctx = OpContext(
            op=node.op,
            inputs=[specs[p] for p in node.parents],
            attrs=node.attrs,
            observed_shape=node.shape,
            observed_dtype=node.dtype,
            symbols=symbols,
        )
        try:
            spec = rule(ctx)
        except (SpecError, KeyError, IndexError, TypeError, ValueError) as exc:
            problems.append(
                PropagationProblem(
                    kind="mismatch",
                    node=node.index,
                    op=node.op,
                    message=f"transfer rule for {node.op!r} failed: {exc}",
                )
            )
            specs[node.index] = observed
            continue
        if spec.shape.values() != node.shape or np.dtype(spec.dtype) != np.dtype(node.dtype):
            problems.append(
                PropagationProblem(
                    kind="mismatch",
                    node=node.index,
                    op=node.op,
                    message=(
                        f"abstract result {spec.render()} disagrees with observed "
                        f"{ShapeSpec.concrete(node.shape).render()} {node.dtype} "
                        f"at op {node.op!r} (node {node.index})"
                    ),
                )
            )
            specs[node.index] = observed
            continue
        specs[node.index] = spec
        events.extend((node.index, event) for event in ctx.events)
    return PropagationResult(specs=specs, problems=problems, events=events)
