"""Graph auditor: defect detection over a recorded op DAG.

Runs abstract propagation (:mod:`repro.check.transfer`) over the trace
and then walks the DAG itself:

* **Gradient reachability** — a parameter participates in training iff it
  is an ancestor of the loss through parent edges.  ``detach()`` breaks
  the chain naturally (the detached tensor appears as a fresh leaf), so a
  detached attention head shows up as its parameters being unreachable.
* **Dead subgraphs** — op results computed but never consumed on any path
  to the loss; reported at their sink nodes.
* **Broadcast hazards** — stretch/rank-expansion events flagged by the
  spec lattice (only those involving a symbolic dim are hazardous).
* **Dtype promotions** — an op whose output dtype differs from one of its
  tensor inputs.
* **Memory estimates** — parameter bytes and per-op activation bytes from
  the abstract specs.

Models may declare *structural* exemptions (parameters that are unused by
design for a given configuration) via an ``audit_exemptions()`` method
returning ``{glob_pattern: reason}``; matching unreachable parameters are
downgraded to ``info``.
"""

from __future__ import annotations

from collections import deque
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.check.report import CheckFinding, CheckReport
from repro.check.trace import TraceNode, Tracer
from repro.check.transfer import propagate

__all__ = ["audit_graph"]

_TOP_K = 8


def _ancestors_of(nodes: Sequence[TraceNode], root: int) -> Set[int]:
    seen = {root}
    queue = deque([root])
    while queue:
        for parent in nodes[queue.popleft()].parents:
            if parent not in seen:
                seen.add(parent)
                queue.append(parent)
    return seen


def _exemption_for(name: str, exemptions: Mapping[str, str]) -> Optional[str]:
    for pattern, reason in exemptions.items():
        if fnmatchcase(name, pattern):
            return reason
    return None


def audit_graph(
    tracer: Tracer,
    root: int,
    symbols: Optional[Mapping[int, str]] = None,
    exemptions: Optional[Mapping[str, str]] = None,
    model: str = "",
    dataset: str = "",
) -> CheckReport:
    """Audit a recorded trace rooted at the loss node ``root``."""
    nodes = tracer.nodes
    exemptions = dict(exemptions or {})
    symbols = dict(symbols or {})
    prop = propagate(nodes, symbols)
    findings: List[CheckFinding] = []

    for problem in prop.problems:
        findings.append(
            CheckFinding(
                code="C001" if problem.kind == "missing_rule" else "C002",
                severity="error",
                message=problem.message,
                op=problem.op,
                node=problem.node,
            )
        )

    for index, event in prop.events:
        if not event.hazardous:
            continue
        node = nodes[index]
        findings.append(
            CheckFinding(
                code="C003",
                severity="warning",
                message=(
                    f"suspicious broadcast at op {node.op!r} (node {index}): "
                    f"{event.detail}; result {prop.spec_of(index).render()}"
                ),
                op=node.op or "",
                node=index,
            )
        )

    for node in nodes:
        if node.op is None or not node.parents:
            continue
        out_dtype = prop.spec_of(node.index).dtype
        in_dtypes = {prop.spec_of(p).dtype for p in node.parents}
        if in_dtypes and out_dtype not in in_dtypes:
            findings.append(
                CheckFinding(
                    code="C004",
                    severity="warning",
                    message=(
                        f"dtype promotion at op {node.op!r} (node {node.index}): "
                        f"inputs {sorted(in_dtypes)} -> output {out_dtype}"
                    ),
                    op=node.op,
                    node=node.index,
                )
            )

    ancestors = _ancestors_of(nodes, root)

    params = tracer.parameter_nodes()
    for param in params:
        if param.index in ancestors:
            continue
        reason = _exemption_for(param.name, exemptions)
        spec = prop.spec_of(param.index)
        if reason is not None:
            findings.append(
                CheckFinding(
                    code="C005",
                    severity="info",
                    message=(
                        f"parameter {param.name!r} {spec.render()} has no gradient "
                        f"path to the loss (exempt: {reason})"
                    ),
                    param=param.name,
                    node=param.index,
                )
            )
        else:
            findings.append(
                CheckFinding(
                    code="C005",
                    severity="warning",
                    message=(
                        f"parameter {param.name!r} {spec.render()} is unreachable "
                        "from the loss: no gradient path (detached or unused)"
                    ),
                    param=param.name,
                    node=param.index,
                )
            )

    # Dead subgraphs: op nodes off every path to the loss, reported at
    # their sinks (nodes with no consumers) to keep the report compact.
    consumers: Dict[int, int] = {}
    for node in nodes:
        if node.op is None:
            continue
        for parent in node.parents:
            consumers[parent] = consumers.get(parent, 0) + 1
    dead = [n for n in nodes if n.op is not None and n.index not in ancestors]
    dead_set = {n.index for n in dead}
    sinks = [n for n in dead if consumers.get(n.index, 0) == 0]
    if dead:
        # The sink's ancestry that is itself dead = the dead subgraph size.
        for sink in sinks:
            region = _ancestors_of(nodes, sink.index) & dead_set
            findings.append(
                CheckFinding(
                    code="C006",
                    severity="warning",
                    message=(
                        f"dead subgraph: {len(region)} op(s) ending at "
                        f"{sink.op!r} (node {sink.index}) "
                        f"{prop.spec_of(sink.index).render()} never reach the loss"
                    ),
                    op=sink.op or "",
                    node=sink.index,
                )
            )

    op_nodes = tracer.op_nodes()
    activation_bytes = sum(prop.spec_of(n.index).nbytes() for n in op_nodes)
    parameter_bytes = sum(prop.spec_of(p.index).nbytes() for p in params)
    parameter_scalars = sum(prop.spec_of(p.index).shape.size() for p in params)

    def _entry(node: TraceNode) -> Dict[str, object]:
        return {
            "label": node.label(),
            "spec": prop.spec_of(node.index).render(),
            "bytes": prop.spec_of(node.index).nbytes(),
        }

    top_activations = [
        _entry(n)
        for n in sorted(op_nodes, key=lambda n: -prop.spec_of(n.index).nbytes())[:_TOP_K]
    ]
    top_parameters = [
        _entry(p)
        for p in sorted(params, key=lambda p: -prop.spec_of(p.index).nbytes())[:_TOP_K]
    ]

    batch_symbol = node_symbol = None
    for value, name in symbols.items():
        if name == "B":
            batch_symbol = value
        elif name == "N":
            node_symbol = value

    return CheckReport(
        model=model,
        dataset=dataset,
        batch_symbol=batch_symbol,
        node_symbol=node_symbol,
        num_ops=len(op_nodes),
        num_tensors=len(nodes),
        num_parameters=len(params),
        parameter_scalars=parameter_scalars,
        parameter_bytes=parameter_bytes,
        activation_bytes=activation_bytes,
        top_activations=top_activations,
        top_parameters=top_parameters,
        findings=findings,
    )
