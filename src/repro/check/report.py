"""Finding/report model for ``repro check-model``.

Finding codes (stable, machine-readable — the graph-level analogue of the
linter's R-codes):

=====  ========  ==========================================================
Code   Severity  Meaning
=====  ========  ==========================================================
C001   error     differentiable op with no shape/dtype transfer rule
C002   error     abstract propagation disagrees with the observed trace
C003   warning   suspicious broadcast (stretch across a symbolic dim, or
                 rank expansion of a symbolic operand)
C004   warning   dtype promotion (op output dtype differs from an input)
C005   warning   parameter unreachable from the loss (no gradient path);
                 reported as info when exempted by the model
C006   warning   dead subgraph (op results that never reach the loss)
C007   error     state/checkpoint mismatch against the model's parameters
C008   error     streaming delta view's merged CSR drifted from a
                 from-scratch rebuild (bit-identity broken)
=====  ========  ==========================================================

``--strict`` escalates warnings to failures; ``info`` findings never
fail.  The JSON payload carries ``schema_version`` so CI artifact diffs
stay meaningful across releases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "CHECK_SCHEMA_VERSION",
    "CheckFinding",
    "CheckReport",
    "format_json",
    "format_text",
]

CHECK_SCHEMA_VERSION = 1

SEVERITIES = ("error", "warning", "info")

_SEVERITY_ORDER = {severity: i for i, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class CheckFinding:
    """One graph-level defect, anchored to an op node and/or parameter."""

    code: str
    severity: str
    message: str
    op: str = ""
    node: int = -1
    param: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.op:
            payload["op"] = self.op
        if self.node >= 0:
            payload["node"] = self.node
        if self.param:
            payload["param"] = self.param
        return payload

    def sort_key(self):
        return (_SEVERITY_ORDER.get(self.severity, len(SEVERITIES)), self.code, self.node, self.param, self.message)


@dataclass
class CheckReport:
    """Result of checking one (model, dataset-alike config) pair."""

    model: str
    dataset: str = ""
    batch_symbol: Optional[int] = None
    node_symbol: Optional[int] = None
    num_ops: int = 0
    num_tensors: int = 0
    num_parameters: int = 0
    parameter_scalars: int = 0
    parameter_bytes: int = 0
    activation_bytes: int = 0
    top_activations: List[Dict[str, Any]] = field(default_factory=list)
    top_parameters: List[Dict[str, Any]] = field(default_factory=list)
    findings: List[CheckFinding] = field(default_factory=list)

    def errors(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def warnings(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    def passed(self, strict: bool = False) -> bool:
        if self.errors():
            return False
        if strict and self.warnings():
            return False
        return True

    def sorted_findings(self) -> List[CheckFinding]:
        return sorted(self.findings, key=lambda f: f.sort_key())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CHECK_SCHEMA_VERSION,
            "model": self.model,
            "dataset": self.dataset,
            "symbols": {"B": self.batch_symbol, "N": self.node_symbol},
            "graph": {
                "num_ops": self.num_ops,
                "num_tensors": self.num_tensors,
                "num_parameters": self.num_parameters,
            },
            "memory": {
                "parameter_scalars": self.parameter_scalars,
                "parameter_bytes": self.parameter_bytes,
                "activation_bytes": self.activation_bytes,
                "top_activations": list(self.top_activations),
                "top_parameters": list(self.top_parameters),
            },
            "counts": {
                "error": len(self.errors()),
                "warning": len(self.warnings()),
                "info": len(self.findings) - len(self.errors()) - len(self.warnings()),
            },
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024.0 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024.0
    return f"{int(count)} B"


def format_text(report: CheckReport, strict: bool = False) -> str:
    """Human-readable rendering of one check report."""
    lines: List[str] = []
    title = report.model if not report.dataset else f"{report.model} on {report.dataset}"
    lines.append(f"check-model: {title}")
    lines.append(
        f"  graph: {report.num_ops} ops over {report.num_tensors} tensors, "
        f"{report.num_parameters} parameters"
        + (f" (B={report.batch_symbol}, N={report.node_symbol})" if report.batch_symbol else "")
    )
    lines.append(
        f"  memory: parameters {_human_bytes(report.parameter_bytes)} "
        f"({report.parameter_scalars} scalars), "
        f"activations {_human_bytes(report.activation_bytes)} per traced step"
    )
    for entry in report.top_activations[:5]:
        lines.append(
            f"    activation {entry['label']}: {entry['spec']} = {_human_bytes(entry['bytes'])}"
        )
    if not report.findings:
        lines.append("  findings: none")
    else:
        lines.append(f"  findings: {len(report.findings)}")
        for finding in report.sorted_findings():
            anchor = ""
            if finding.param:
                anchor = f" [{finding.param}]"
            elif finding.op:
                anchor = f" [{finding.op}#{finding.node}]"
            lines.append(f"    {finding.code} {finding.severity}{anchor}: {finding.message}")
    verdict = "PASS" if report.passed(strict=strict) else "FAIL"
    lines.append(f"  result: {verdict}" + (" (strict)" if strict else ""))
    return "\n".join(lines)


def format_json(reports: List[CheckReport], strict: bool = False) -> str:
    """Stable JSON envelope over one or more check reports."""
    payload = {
        "schema_version": CHECK_SCHEMA_VERSION,
        "strict": bool(strict),
        "passed": all(r.passed(strict=strict) for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
