"""Check-program builders: trace one training step per model and audit it.

For each supported model the runner constructs the module(s) exactly as
the training path does, records **one** forward + loss on a synthetic
batch, then audits the trace with the batch size symbolised as ``B`` and
the node-table extent as ``N``.  The traced program mirrors the real
objective — for HybridGNN the skip-gram loss is summed over *every*
relationship so the per-relationship output transforms and the shared
context table all participate, as they do across trainer steps.

The concrete batch size is chosen from a prime candidate list so it
collides with no architectural constant (dims, fanouts, negative counts,
relation counts, node counts); this makes value-based re-symbolisation
sound.  The batch always contains nodes of every type so every metapath
flow is exercised.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.check.audit import audit_graph
from repro.check.report import CheckReport
from repro.check.trace import Tracer, trace
from repro.errors import CheckError
from repro.utils.rng import SeedLike, as_rng, spawn_rng

__all__ = ["CHECKABLE_MODELS", "check_model", "pick_batch_size"]

#: Models ``repro check-model`` can trace (HybridGNN + the GNN baselines).
CHECKABLE_MODELS: Tuple[str, ...] = ("HybridGNN", "GCN", "GraphSage", "R-GCN")

_BATCH_CANDIDATES: Tuple[int, ...] = (
    13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127,
)


def pick_batch_size(
    avoid: Iterable[int], num_nodes: int, fanout_products: Iterable[int] = ()
) -> int:
    """A batch size colliding with no model/graph constant.

    ``avoid`` lists concrete extents that appear in the trace for other
    reasons; ``fanout_products`` lists multipliers ``k`` such that a dim
    of extent ``B * k`` occurs (those must not alias ``num_nodes``).
    """
    avoid_set: Set[int] = {int(v) for v in avoid}
    avoid_set.add(int(num_nodes))
    products = sorted({int(k) for k in fanout_products} | {1})
    for candidate in _BATCH_CANDIDATES:
        if candidate in avoid_set:
            continue
        if any(candidate * k == num_nodes for k in products):
            continue
        return candidate
    raise CheckError(
        f"no usable batch size among {_BATCH_CANDIDATES} for num_nodes={num_nodes}"
    )


def _mixed_type_batch(graph, batch_size: int, rng) -> np.ndarray:
    """A batch containing nodes of every type (so every flow runs)."""
    per_type: List[np.ndarray] = []
    for node_type in graph.schema.node_types:
        nodes = graph.nodes_of_type(node_type)
        if len(nodes):
            per_type.append(nodes)
    if not per_type:
        raise CheckError("graph has no nodes")
    picks: List[int] = []
    for nodes in per_type:
        picks.append(int(rng.choice(nodes)))
    remaining = batch_size - len(picks)
    if remaining < 0:
        raise CheckError(
            f"batch size {batch_size} smaller than number of node types {len(picks)}"
        )
    pool = np.concatenate(per_type)
    picks.extend(int(v) for v in rng.choice(pool, size=remaining, replace=True))
    batch = np.asarray(picks, dtype=np.int64)
    rng.shuffle(batch)
    return batch


def _cumulative_products(fanouts: Sequence[int]) -> List[int]:
    out: List[int] = []
    acc = 1
    for fanout in fanouts:
        acc *= int(fanout)
        out.append(acc)
    return out


def _finish(
    tracer: Tracer,
    loss,
    named_params: Sequence[Tuple[str, object]],
    symbols: Dict[int, str],
    exemptions: Dict[str, str],
    model: str,
    dataset: str,
) -> CheckReport:
    root = tracer.index_of(loss)
    tracer.annotate_parameters(named_params)
    return audit_graph(
        tracer,
        root,
        symbols=symbols,
        exemptions=exemptions,
        model=model,
        dataset=dataset,
    )


# ---------------------------------------------------------------------------
# Per-model programs
# ---------------------------------------------------------------------------


def _check_hybridgnn(dataset, config, seed: SeedLike) -> CheckReport:
    from repro.core.loss import skip_gram_loss
    from repro.core.model import HybridGNN

    rng = as_rng(seed)
    graph = dataset.graph
    model = HybridGNN(graph, dataset.all_schemes(), config, rng=spawn_rng(rng))
    avoid = set(
        [config.base_dim, config.edge_dim, config.num_negatives,
         len(model.relations), len(graph.schema.node_types)]
        + list(config.metapath_fanouts)
        + [config.exploration_fanout, config.exploration_depth]
    )
    products = _cumulative_products(config.metapath_fanouts) + _cumulative_products(
        [config.exploration_fanout] * config.exploration_depth
    )
    batch_size = pick_batch_size(avoid, graph.num_nodes, products)
    nodes = _mixed_type_batch(graph, batch_size, rng)
    contexts = rng.integers(0, graph.num_nodes, size=batch_size)
    negatives = rng.integers(
        0, graph.num_nodes, size=(batch_size, config.num_negatives)
    )

    with trace() as tracer:
        loss = None
        for relation in model.relations:
            embeddings = model(nodes, relation)
            rel_loss = skip_gram_loss(embeddings, model.context, contexts, negatives)
            loss = rel_loss if loss is None else loss + rel_loss
    return _finish(
        tracer,
        loss,
        list(model.named_parameters()),
        {batch_size: "B", graph.num_nodes: "N"},
        dict(model.audit_exemptions()),
        "HybridGNN",
        dataset.name,
    )


def _check_gcn(dataset, dim: int, seed: SeedLike) -> CheckReport:
    from repro.baselines.gcn import _GCNEncoder, normalized_adjacency
    from repro.core.loss import softplus

    rng = as_rng(seed)
    graph = dataset.graph
    src, dst = graph.merged_homogeneous_view()
    if len(src) == 0:
        raise CheckError("GCN check needs at least one edge")
    adjacency = normalized_adjacency(src, dst, graph.num_nodes)
    encoder = _GCNEncoder(graph.num_nodes, dim, dim, spawn_rng(rng))
    batch_size = pick_batch_size({dim}, graph.num_nodes)
    idx = rng.choice(len(src), size=min(batch_size, len(src)), replace=False)
    pos_u, pos_v = src[idx], dst[idx]
    neg_v = rng.integers(0, graph.num_nodes, size=len(idx))

    with trace() as tracer:
        embeddings = encoder(adjacency)
        pos_logit = (embeddings[pos_u] * embeddings[pos_v]).sum(axis=-1)
        neg_logit = (embeddings[pos_u] * embeddings[neg_v]).sum(axis=-1)
        loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
    return _finish(
        tracer,
        loss,
        list(encoder.named_parameters()),
        {len(idx): "B", graph.num_nodes: "N"},
        {},
        "GCN",
        dataset.name,
    )


def _check_rgcn(dataset, dim: int, seed: SeedLike) -> CheckReport:
    from repro.baselines.rgcn import _RGCNEncoder, row_normalized_adjacency
    from repro.core.loss import softplus
    from repro.nn.module import Parameter

    rng = as_rng(seed)
    graph = dataset.graph
    relations = list(graph.schema.relationships)
    adjacencies = {}
    edge_lists = {}
    for rel in relations:
        src, dst = graph.edges(rel)
        adjacencies[rel] = row_normalized_adjacency(src, dst, graph.num_nodes)
        edge_lists[rel] = (src, dst)
    encoder = _RGCNEncoder(graph.num_nodes, relations, dim, spawn_rng(rng))
    # The DistMult diagonals live outside the encoder in ``RGCN.fit`` too.
    rel_diag = {rel: Parameter(np.zeros(dim)) for rel in relations}
    active = [rel for rel in relations if len(edge_lists[rel][0]) > 0]
    if not active:
        raise CheckError("R-GCN check needs at least one edge")
    batch_size = pick_batch_size({dim, len(relations)}, graph.num_nodes)

    with trace() as tracer:
        embeddings = encoder(adjacencies)
        loss = None
        for rel in active:
            src, dst = edge_lists[rel]
            take = min(batch_size, len(src))
            idx = rng.choice(len(src), size=take, replace=False)
            pos_u, pos_v = src[idx], dst[idx]
            neg_v = rng.integers(0, graph.num_nodes, size=take)
            scale = softplus(rel_diag[rel])
            pos_logit = (embeddings[pos_u] * embeddings[pos_v] * scale).sum(axis=-1)
            neg_logit = (embeddings[pos_u] * embeddings[neg_v] * scale).sum(axis=-1)
            rel_loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
            loss = rel_loss if loss is None else loss + rel_loss
    named = list(encoder.named_parameters())
    named.extend((f"rel_diag.{rel}", param) for rel, param in rel_diag.items())
    inactive = sorted(set(relations) - set(active))
    exemptions = {
        f"rel_diag.{rel}": "relationship has no edges in this graph" for rel in inactive
    }
    for rel in inactive:
        exemptions[f"w_rel_1.{rel}*"] = "relationship has no edges in this graph"
        exemptions[f"w_rel_2.{rel}*"] = "relationship has no edges in this graph"
    return _finish(
        tracer,
        loss,
        named,
        {batch_size: "B", graph.num_nodes: "N"},
        exemptions,
        "R-GCN",
        dataset.name,
    )


def _check_graphsage(dataset, dim: int, seed: SeedLike) -> CheckReport:
    from repro.baselines.graphsage import _SageEncoder
    from repro.core.loss import softplus
    from repro.sampling.random_walk import _merged_csr

    rng = as_rng(seed)
    graph = dataset.graph
    src, dst = graph.merged_homogeneous_view()
    if len(src) == 0:
        raise CheckError("GraphSage check needs at least one edge")
    indptr, indices = _merged_csr(graph)
    fanouts = [5, 3]
    encoder = _SageEncoder(
        graph.num_nodes, dim, fanouts, indptr, indices, spawn_rng(rng)
    )
    batch_size = pick_batch_size(
        set(fanouts) | {dim}, graph.num_nodes, _cumulative_products(fanouts)
    )
    idx = rng.choice(len(src), size=min(batch_size, len(src)), replace=False)
    pos_u, pos_v = src[idx], dst[idx]
    neg_v = rng.integers(0, graph.num_nodes, size=len(idx))

    with trace() as tracer:
        emb_u = encoder(pos_u)
        emb_v = encoder(pos_v)
        emb_n = encoder(neg_v)
        pos_logit = (emb_u * emb_v).sum(axis=-1)
        neg_logit = (emb_u * emb_n).sum(axis=-1)
        loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
    return _finish(
        tracer,
        loss,
        list(encoder.named_parameters()),
        {len(idx): "B", graph.num_nodes: "N"},
        {},
        "GraphSage",
        dataset.name,
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_model(
    model: str = "HybridGNN",
    dataset: str = "taobao",
    scale: float = 0.25,
    seed: SeedLike = 0,
    profile: str = "smoke",
    config=None,
) -> CheckReport:
    """Trace one training step of ``model`` on ``dataset`` and audit it.

    ``config`` (a :class:`~repro.core.config.HybridGNNConfig`) overrides
    the profile's hyper-parameters for HybridGNN; baselines take their
    width from the profile's ``base_dim``.
    """
    from repro.datasets.zoo import load_dataset
    from repro.experiments.profiles import get_profile

    if model not in CHECKABLE_MODELS:
        raise CheckError(
            f"unknown checkable model {model!r}; available: {list(CHECKABLE_MODELS)}"
        )
    resolved_profile = get_profile(profile) if isinstance(profile, str) else profile
    ds = load_dataset(dataset, scale=scale, seed=seed)
    if model == "HybridGNN":
        hybrid_config = config if config is not None else resolved_profile.hybrid
        return _check_hybridgnn(ds, hybrid_config, seed)
    dim = resolved_profile.hybrid.base_dim
    if model == "GCN":
        return _check_gcn(ds, dim, seed)
    if model == "R-GCN":
        return _check_rgcn(ds, dim, seed)
    return _check_graphsage(ds, dim, seed)
