"""Record a model's op DAG through the :mod:`repro.nn.tracing` hook.

One concrete forward (plus loss) is executed inside :func:`trace`; every
tensor built through ``Tensor._make`` lands in the tracer as a
:class:`TraceNode` carrying the op name, parent indices, observed shape
and dtype, and the op's static attrs.  Tensors the tracer has never seen
before — parameters, input constants, or the output of ``detach()`` —
are registered lazily as *leaf* nodes (``op=None``) the first time they
appear as a parent.  Because ``detach()`` builds a fresh tensor outside
``_make``, a detached value shows up as a gradient-free leaf, which is
exactly how the auditor discovers broken gradient paths.

The tracer keeps a strong reference to every tensor it has indexed so
``id()`` keys stay unique for the lifetime of the trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.nn.tracing import set_trace_handler

__all__ = ["TraceNode", "Tracer", "trace"]


@dataclass
class TraceNode:
    """One tensor in the recorded DAG (leaf when ``op`` is ``None``)."""

    index: int
    op: Optional[str]
    parents: Tuple[int, ...]
    shape: Tuple[int, ...]
    dtype: str
    requires_grad: bool
    attrs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    is_param: bool = False

    @property
    def is_leaf(self) -> bool:
        return self.op is None

    def label(self) -> str:
        if self.name:
            return self.name
        if self.op is not None:
            return f"{self.op}#{self.index}"
        return f"leaf#{self.index}"


class Tracer:
    """Accumulates :class:`TraceNode` entries during a recording run."""

    def __init__(self) -> None:
        self.nodes: List[TraceNode] = []
        self._index: Dict[int, int] = {}
        self._keepalive: List[Any] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def _register(self, tensor: Any, node: TraceNode) -> None:
        self._index[id(tensor)] = node.index
        self._keepalive.append(tensor)
        self.nodes.append(node)

    def index_of(self, tensor: Any) -> int:
        """Index of ``tensor``, registering it as a leaf if unseen."""
        key = id(tensor)
        idx = self._index.get(key)
        if idx is not None:
            return idx
        node = TraceNode(
            index=len(self.nodes),
            op=None,
            parents=(),
            shape=tuple(tensor.shape),
            dtype=str(tensor.data.dtype),
            requires_grad=bool(tensor.requires_grad),
        )
        self._register(tensor, node)
        return node.index

    def handle(self, out: Any, parents: Tuple[Any, ...], op: str, attrs: Optional[Dict[str, Any]]) -> None:
        """Trace-handler callback invoked by ``Tensor._make``."""
        parent_indices = tuple(self.index_of(p) for p in parents)
        node = TraceNode(
            index=len(self.nodes),
            op=op or "unknown",
            parents=parent_indices,
            shape=tuple(out.shape),
            dtype=str(out.data.dtype),
            requires_grad=bool(out.requires_grad),
            attrs=dict(attrs) if attrs else {},
        )
        self._register(out, node)

    def annotate_parameters(self, named: Iterable[Tuple[str, Any]]) -> None:
        """Tag parameter tensors with their qualified names.

        Parameters the forward never touched are registered here as fresh
        leaves, so the auditor sees them (and reports them unreachable).
        """
        for name, param in named:
            node = self.nodes[self.index_of(param)]
            node.name = name
            node.is_param = True

    def op_nodes(self) -> List[TraceNode]:
        return [n for n in self.nodes if n.op is not None]

    def parameter_nodes(self) -> List[TraceNode]:
        return [n for n in self.nodes if n.is_param]


@contextmanager
def trace() -> Iterator[Tracer]:
    """Context manager recording all autograd ops built inside the block."""
    tracer = Tracer()
    previous = set_trace_handler(tracer.handle)
    try:
        yield tracer
    finally:
        set_trace_handler(previous)
