"""Shape/dtype lattice for abstract interpretation of traced op graphs.

A :class:`Dim` is a single dimension: always backed by the concrete value
observed during the recording trace, optionally tagged with a symbol
(``B`` for the batch axis, ``N`` for the node-table axis) when that value
was introduced by a symbolic quantity.  A :class:`ShapeSpec` is a tuple of
dims; a :class:`TensorSpec` adds the dtype and byte-size accounting used
by the memory report.

The lattice is deliberately shallow — concrete-with-symbols rather than a
full interval domain — because the checker always has one observed trace
to anchor against.  Symbols exist to make findings *generalisable*: a
broadcast that stretches a ``1`` across ``B`` is a hazard for every batch
size, while stretching across a concrete model width is an architectural
constant and is left alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "BroadcastEvent",
    "Dim",
    "ShapeSpec",
    "SpecError",
    "TensorSpec",
    "broadcast_specs",
    "promote_dtypes",
]


class SpecError(ValueError):
    """An abstract shape computation is inconsistent with its inputs."""


class Dim:
    """One dimension: a concrete extent, optionally tagged with a symbol."""

    __slots__ = ("value", "symbol")

    def __init__(self, value: int, symbol: str = "") -> None:
        self.value = int(value)
        self.symbol = symbol

    @property
    def is_symbolic(self) -> bool:
        return bool(self.symbol)

    def render(self) -> str:
        return self.symbol if self.symbol else str(self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dim):
            return NotImplemented
        return self.value == other.value and self.symbol == other.symbol

    def __hash__(self) -> int:
        return hash((self.value, self.symbol))

    def __repr__(self) -> str:
        return f"Dim({self.render()})"


class ShapeSpec:
    """An ordered tuple of :class:`Dim`, printed like ``(B, 5, 16)``."""

    __slots__ = ("dims",)

    def __init__(self, dims: Sequence[Dim]) -> None:
        self.dims: Tuple[Dim, ...] = tuple(dims)

    @classmethod
    def concrete(cls, shape: Sequence[int]) -> "ShapeSpec":
        return cls(tuple(Dim(v) for v in shape))

    @classmethod
    def symbolized(cls, shape: Sequence[int], symbols: Mapping[int, str]) -> "ShapeSpec":
        """Build a spec from a concrete shape, tagging symbolic extents.

        ``symbols`` maps concrete values to symbol names (``{13: "B"}``);
        the runner picks symbol values that collide with no architectural
        constant, so value-equality is a safe re-symbolisation rule.
        """
        return cls(tuple(Dim(v, symbols.get(int(v), "")) for v in shape))

    @property
    def rank(self) -> int:
        return len(self.dims)

    def values(self) -> Tuple[int, ...]:
        return tuple(d.value for d in self.dims)

    @property
    def is_symbolic(self) -> bool:
        return any(d.is_symbolic for d in self.dims)

    def size(self) -> int:
        size = 1
        for d in self.dims:
            size *= d.value
        return size

    def render(self) -> str:
        if not self.dims:
            return "()"
        if len(self.dims) == 1:
            return f"({self.dims[0].render()},)"
        return "(" + ", ".join(d.render() for d in self.dims) + ")"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShapeSpec):
            return NotImplemented
        return self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __repr__(self) -> str:
        return f"ShapeSpec{self.render()}"


class TensorSpec:
    """Abstract value flowing through the checker: shape spec + dtype."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: ShapeSpec, dtype: str) -> None:
        self.shape = shape
        self.dtype = str(dtype)

    def nbytes(self) -> int:
        return self.shape.size() * np.dtype(self.dtype).itemsize

    def render(self) -> str:
        return f"{self.shape.render()} {self.dtype}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TensorSpec):
            return NotImplemented
        return self.shape == other.shape and self.dtype == other.dtype

    def __repr__(self) -> str:
        return f"TensorSpec({self.render()})"


@dataclass(frozen=True)
class BroadcastEvent:
    """One implicit-alignment event observed while broadcasting operands.

    ``kind`` is ``"stretch"`` (a size-1 extent replicated across a larger
    one) or ``"rank_expand"`` (an operand implicitly gained leading axes).
    ``hazardous`` marks events the auditor should surface: stretches
    across a *symbolic* dim, and rank expansions of operands that
    themselves carry a symbolic dim.  A bias ``(d,)`` added to ``(B, d)``
    or a LayerNorm ``(B, 1)`` statistic stretched across a concrete model
    width are ordinary idioms and stay quiet.
    """

    kind: str
    operand: int
    axis: int
    detail: str
    hazardous: bool


def _merge_dim(a: Dim, b: Dim, axis: int) -> Dim:
    if a.value != b.value:
        raise SpecError(
            f"axis {axis}: incompatible extents {a.render()} vs {b.render()}"
        )
    return Dim(a.value, a.symbol or b.symbol)


def broadcast_specs(
    specs: Sequence[ShapeSpec],
) -> Tuple[ShapeSpec, List[BroadcastEvent]]:
    """Numpy-style broadcast over shape specs, recording alignment events.

    Returns the broadcast result and the list of :class:`BroadcastEvent`
    describing every rank expansion and size-1 stretch, with hazard flags
    already applied.  Raises :class:`SpecError` when the specs do not
    broadcast (which, for a recorded trace, means a transfer rule bug).
    """
    rank = max((s.rank for s in specs), default=0)
    events: List[BroadcastEvent] = []
    for operand, spec in enumerate(specs):
        if spec.rank < rank:
            events.append(
                BroadcastEvent(
                    kind="rank_expand",
                    operand=operand,
                    axis=0,
                    detail=(
                        f"operand {operand} {spec.render()} implicitly gains "
                        f"{rank - spec.rank} leading axis(es) to rank {rank}"
                    ),
                    hazardous=spec.is_symbolic,
                )
            )
    out: List[Dim] = []
    for axis in range(rank):
        # Right-aligned axis for each operand.
        merged = Dim(1)
        stretch_sources: List[Tuple[int, Dim]] = []
        for operand, spec in enumerate(specs):
            offset = axis - (rank - spec.rank)
            if offset < 0:
                continue
            dim = spec.dims[offset]
            if dim.value == 1:
                stretch_sources.append((operand, dim))
                continue
            if merged.value == 1:
                merged = dim
            else:
                merged = _merge_dim(merged, dim, axis)
        if merged.value != 1:
            for operand, dim in stretch_sources:
                events.append(
                    BroadcastEvent(
                        kind="stretch",
                        operand=operand,
                        axis=axis,
                        detail=(
                            f"operand {operand} stretches size-1 axis {axis} "
                            f"across {merged.render()}"
                        ),
                        hazardous=merged.is_symbolic,
                    )
                )
        out.append(merged)
    return ShapeSpec(out), events


def promote_dtypes(dtypes: Sequence[str]) -> str:
    """Numpy result dtype for a set of operand dtypes."""
    if not dtypes:
        return "float64"
    return str(np.result_type(*[np.dtype(d) for d in dtypes]))
