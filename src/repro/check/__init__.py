"""Graph-level static analysis: ``python -m repro check-model``.

The static mirror of the runtime sanitizer: the model's op DAG is recorded
once (one traced forward + loss, :mod:`repro.check.trace`), then re-executed
*abstractly* — no numerics — through per-op shape/dtype transfer rules over
a symbolic :class:`~repro.check.spec.ShapeSpec` lattice
(:mod:`repro.check.transfer`).  A graph auditor (:mod:`repro.check.audit`)
walks the same DAG for gradient-flow defects: parameters unreachable from
the loss, dead subgraphs, suspicious broadcasts, dtype promotions, and
memory estimates.

Layering: ``spec`` (lattice) ← ``trace`` (recording) ← ``transfer``
(abstract interpretation) ← ``audit`` (defect detection) ← ``runner``
(model/dataset entry points) with ``report`` shared by all.  The
``crosscheck`` module validates every transfer rule against concrete
forward shapes via the gradcheck registry (``repro verify --suite
transfer``); ``state`` applies the same spec rendering to checkpoint and
serving-table loads.
"""

from repro.check.audit import audit_graph
from repro.check.report import (
    CHECK_SCHEMA_VERSION,
    CheckFinding,
    CheckReport,
    format_json,
    format_text,
)
from repro.check.runner import CHECKABLE_MODELS, check_model
from repro.check.selftest import build_miswired_report, build_stock_report, run_self_test
from repro.check.spec import BroadcastEvent, Dim, ShapeSpec, TensorSpec
from repro.check.state import (
    delta_findings,
    index_findings,
    state_dict_findings,
    table_findings,
    verify_delta_view,
    verify_index,
    verify_state_dict,
    verify_table,
)
from repro.check.trace import TraceNode, Tracer, trace
from repro.check.transfer import (
    propagate,
    required_transfer_ops,
    transfer_rule,
    uncovered_transfer_rules,
)
from repro.check.crosscheck import (
    TransferCheck,
    format_transfer_table,
    run_transfer_suite,
)

__all__ = [
    "CHECK_SCHEMA_VERSION",
    "CHECKABLE_MODELS",
    "BroadcastEvent",
    "CheckFinding",
    "CheckReport",
    "Dim",
    "ShapeSpec",
    "TensorSpec",
    "TraceNode",
    "Tracer",
    "TransferCheck",
    "audit_graph",
    "build_miswired_report",
    "build_stock_report",
    "check_model",
    "delta_findings",
    "format_json",
    "format_text",
    "format_transfer_table",
    "index_findings",
    "propagate",
    "required_transfer_ops",
    "run_self_test",
    "run_transfer_suite",
    "state_dict_findings",
    "table_findings",
    "trace",
    "transfer_rule",
    "uncovered_transfer_rules",
    "verify_delta_view",
    "verify_index",
    "verify_state_dict",
    "verify_table",
]
