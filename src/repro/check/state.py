"""State-dict and serving-state validation (finding codes C007/C008).

The same expected-vs-found spec rendering the abstract interpreter uses
for ops is applied to *loaded state*: checkpoint dicts are validated
against the target module's parameters before ``load_state_dict`` runs,
and serving embedding tables are validated against the node count before
they are cached.  A malformed checkpoint therefore fails at load time
with the offending parameter named and both specs rendered, instead of
as a mid-request numpy broadcast error.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.check.report import CheckFinding
from repro.check.spec import ShapeSpec, TensorSpec
from repro.errors import CheckError

__all__ = [
    "delta_findings",
    "index_findings",
    "state_dict_findings",
    "table_findings",
    "verify_delta_view",
    "verify_index",
    "verify_state_dict",
    "verify_table",
]


def _spec_of(value: Any) -> str:
    array = np.asarray(value)
    return TensorSpec(ShapeSpec.concrete(array.shape), str(array.dtype)).render()


def state_dict_findings(module, state: Mapping[str, Any]) -> List[CheckFinding]:
    """C007 findings for ``state`` loaded against ``module``'s parameters."""
    findings: List[CheckFinding] = []
    params: Dict[str, Any] = dict(module.named_parameters())
    for name in sorted(set(params) - set(state)):
        findings.append(
            CheckFinding(
                code="C007",
                severity="error",
                message=(
                    f"checkpoint is missing parameter {name!r} "
                    f"(expected {_spec_of(params[name].data)})"
                ),
                param=name,
            )
        )
    for name in sorted(set(state) - set(params)):
        findings.append(
            CheckFinding(
                code="C007",
                severity="error",
                message=(
                    f"checkpoint has unexpected entry {name!r} "
                    f"{_spec_of(state[name])} with no matching parameter"
                ),
                param=name,
            )
        )
    for name in sorted(set(params) & set(state)):
        expected = np.asarray(params[name].data)
        found = np.asarray(state[name])
        if expected.shape != found.shape:
            findings.append(
                CheckFinding(
                    code="C007",
                    severity="error",
                    message=(
                        f"parameter {name!r}: expected "
                        f"{_spec_of(expected)}, checkpoint has {_spec_of(found)}"
                    ),
                    param=name,
                )
            )
            continue
        if not np.issubdtype(found.dtype, np.floating):
            findings.append(
                CheckFinding(
                    code="C007",
                    severity="error",
                    message=(
                        f"parameter {name!r}: checkpoint dtype {found.dtype} "
                        "is not floating point"
                    ),
                    param=name,
                )
            )
            continue
        if not np.all(np.isfinite(found)):
            findings.append(
                CheckFinding(
                    code="C007",
                    severity="error",
                    message=(
                        f"parameter {name!r} {_spec_of(found)}: checkpoint "
                        "contains non-finite values"
                    ),
                    param=name,
                )
            )
    return findings


def verify_state_dict(module, state: Mapping[str, Any], source: str = "checkpoint") -> None:
    """Raise :class:`CheckError` when ``state`` does not fit ``module``."""
    findings = state_dict_findings(module, state)
    if findings:
        details = "; ".join(f.message for f in findings[:5])
        more = len(findings) - 5
        if more > 0:
            details += f"; and {more} more"
        raise CheckError(
            f"{source} failed the shape check against the model "
            f"({len(findings)} C007 finding(s)): {details}"
        )


def table_findings(table: Any, num_nodes: int, relation: str) -> List[CheckFinding]:
    """C007 findings for a serving embedding table of ``relation``."""
    findings: List[CheckFinding] = []
    array = np.asarray(table)
    expected = f"(N={num_nodes}, d) floating"
    if array.ndim != 2:
        findings.append(
            CheckFinding(
                code="C007",
                severity="error",
                message=(
                    f"embedding table for relation {relation!r}: expected "
                    f"{expected}, model produced {_spec_of(array)}"
                ),
                param=relation,
            )
        )
        return findings
    if array.shape[0] != num_nodes:
        findings.append(
            CheckFinding(
                code="C007",
                severity="error",
                message=(
                    f"embedding table for relation {relation!r}: expected "
                    f"{expected}, model produced {_spec_of(array)} "
                    f"({array.shape[0]} rows for {num_nodes} nodes)"
                ),
                param=relation,
            )
        )
    if not np.issubdtype(array.dtype, np.floating):
        findings.append(
            CheckFinding(
                code="C007",
                severity="error",
                message=(
                    f"embedding table for relation {relation!r}: dtype "
                    f"{array.dtype} is not floating point (expected {expected})"
                ),
                param=relation,
            )
        )
    return findings


def verify_table(table: Any, num_nodes: int, relation: str) -> None:
    """Raise :class:`CheckError` when a serving table fails validation."""
    findings = table_findings(table, num_nodes, relation)
    if findings:
        raise CheckError("; ".join(f.message for f in findings))


def index_findings(meta: Mapping[str, Any], index: Any, table: Any,
                   pool: Any) -> List[CheckFinding]:
    """C007 findings for a persisted serving index against live state.

    A loaded :class:`repro.serving.index.VectorIndex` must describe the
    same world the engine is serving: one row per pool candidate, built at
    the live embedding dimensionality, with a metadata header that agrees
    with the arrays actually loaded.  Any mismatch means the index was
    built against a different checkpoint (stale) or a different candidate
    pool (wrong graph) and would silently surface wrong candidates.
    """
    findings: List[CheckFinding] = []
    table = np.asarray(table)
    pool = np.asarray(pool)
    name = str(meta.get("relation", "?"))

    def finding(message: str) -> CheckFinding:
        return CheckFinding(
            code="C007", severity="error", message=message, param=name
        )

    backend = meta.get("backend")
    if backend != getattr(index, "backend", None):
        findings.append(finding(
            f"serving index for relation {name!r}: metadata says backend "
            f"{backend!r} but the loaded index is "
            f"{getattr(index, 'backend', None)!r}"
        ))
    for field_name, actual in (("size", index.size), ("dim", index.dim)):
        declared = meta.get(field_name)
        if declared is not None and int(declared) != int(actual):
            findings.append(finding(
                f"serving index for relation {name!r}: metadata declares "
                f"{field_name}={declared} but the loaded arrays have "
                f"{field_name}={actual}"
            ))
    if index.size != len(pool):
        findings.append(finding(
            f"serving index for relation {name!r}: built over {index.size} "
            f"candidates but the live pool for type "
            f"{meta.get('target_type')!r} has {len(pool)} (stale index)"
        ))
    dim = index.dim
    if dim and table.ndim == 2 and dim != table.shape[1]:
        findings.append(finding(
            f"serving index for relation {name!r}: built at dim {dim} but "
            f"the live embedding table is {_spec_of(table)} (shape mismatch)"
        ))
    return findings


def verify_index(meta: Mapping[str, Any], index: Any, table: Any, pool: Any,
                 source: str = "index") -> None:
    """Raise :class:`CheckError` when a persisted index fails validation."""
    findings = index_findings(meta, index, table, pool)
    if findings:
        raise CheckError(
            f"{source} failed the serving-state check "
            f"({len(findings)} C007 finding(s)): "
            + "; ".join(f.message for f in findings)
        )


def delta_findings(view: Any) -> List[CheckFinding]:
    """C008 findings: a delta view's merged CSR drifted from a rebuild.

    The streaming layer's whole correctness story is that
    :meth:`repro.serving.deltas.DeltaGraphView.csr` is **bit-identical** to
    rebuilding the graph from scratch over the full (base + delta) edge
    list.  This check recomputes that rebuild independently for every
    relation — the same drift the ``service`` oracle suite gates on a
    seeded stream, available here as a point-in-time audit of a live view
    (the service test suite runs it at every compaction boundary).
    """
    from repro.graph.multiplex import MultiplexHeteroGraph

    findings: List[CheckFinding] = []
    num_nodes = view.num_nodes
    declared = len(view.node_type_codes)
    if declared != num_nodes:
        findings.append(CheckFinding(
            code="C008",
            severity="error",
            message=(
                f"delta view node-type codes cover {declared} nodes but the "
                f"view reports num_nodes={num_nodes}"
            ),
            param="node_type_codes",
        ))
        return findings
    for relation in view.schema.relationships:
        src, dst = view.edges(relation)
        expected = MultiplexHeteroGraph._build_csr(num_nodes, src, dst)
        served = view.csr(relation)
        for part, name in ((0, "indptr"), (1, "indices")):
            if not np.array_equal(served[part], expected[part]):
                findings.append(CheckFinding(
                    code="C008",
                    severity="error",
                    message=(
                        f"merged CSR for relation {relation!r} drifted from "
                        f"a from-scratch rebuild: {name} differs "
                        f"(served {_spec_of(served[part])}, rebuild "
                        f"{_spec_of(expected[part])}; "
                        f"{len(view._delta(relation))} pending delta edges, "
                        f"{view.pending_nodes} pending nodes)"
                    ),
                    param=relation,
                ))
                break
    return findings


def verify_delta_view(view: Any, source: str = "delta view") -> None:
    """Raise :class:`CheckError` when a delta view fails the C008 audit."""
    findings = delta_findings(view)
    if findings:
        raise CheckError(
            f"{source} failed the delta/CSR drift check "
            f"({len(findings)} C008 finding(s)): "
            + "; ".join(f.message for f in findings)
        )
