"""Auditor self-test: a deliberately mis-wired HybridGNN must be flagged.

:class:`MiswiredHybridGNN` seeds three graph-level defects that the
HybridGNN paper's ablations show would silently erase model capacity if
shipped:

* the first relationship's embedding is ``detach()``-ed before fusion, so
  that relationship's flows and metapath-level attention receive no
  gradient (C005 unreachable parameters + C006 dead subgraph) — exactly
  the "attention head that never trains" failure mode;
* a ``batch_gain`` parameter of shape ``(1, edge_dim)`` is multiplied
  into every relationship embedding, stretching a size-1 axis across the
  symbolic batch dim (C003 suspicious broadcast);
* an ``orphan_bias`` parameter is registered but never used (C005).

``run_self_test`` audits both the stock and the mis-wired model on the
same tiny two-relationship graph: the stock model must come out clean in
strict mode, the mis-wired one must report all three defect classes with
the offending parameter names.  Exposed via
``python -m repro check-model --self-test`` and the tier-1 test suite.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.check.report import CheckReport
from repro.check.runner import pick_batch_size
from repro.check.trace import trace
from repro.check.audit import audit_graph
from repro.utils.rng import SeedLike, as_rng, spawn_rng

__all__ = [
    "MiswiredHybridGNN",
    "build_miswired_report",
    "build_stock_report",
    "run_self_test",
]


def _tiny_graph():
    """Users 0-2, items 3-6, two overlapping relationships."""
    from repro.graph.builder import GraphBuilder
    from repro.graph.schema import GraphSchema

    builder = GraphBuilder(GraphSchema(["user", "item"], ["view", "buy"]))
    builder.add_nodes("user", 3)
    builder.add_nodes("item", 4)
    for u, v in [(0, 3), (0, 4), (1, 3), (1, 5), (2, 4), (2, 6)]:
        builder.add_edge(u, v, "view")
    for u, v in [(0, 3), (1, 4), (2, 5), (0, 6)]:
        builder.add_edge(u, v, "buy")
    return builder.build()


def _tiny_config():
    from repro.core.config import HybridGNNConfig

    return HybridGNNConfig(
        base_dim=4,
        edge_dim=3,
        metapath_fanouts=(2, 2),
        exploration_fanout=2,
        exploration_depth=1,
        eval_samples=1,
        num_negatives=2,
    )


def _tiny_schemes(graph):
    from repro.graph.schema import intra_relationship_schemes

    return intra_relationship_schemes(
        ("U-I-U",), graph.schema.relationships, {"U": "user", "I": "item"}
    )


def _make_miswired_class():
    # Deferred so importing repro.check does not pull in the model stack.
    from repro.core.model import HybridGNN
    from repro.nn.module import Parameter

    class MiswiredHybridGNN(HybridGNN):
        """HybridGNN with three seeded graph-level defects (see module doc)."""

        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.detached_relation = self.relations[0]
            self.batch_gain = Parameter(np.ones((1, self.config.edge_dim)))
            self.orphan_bias = Parameter(np.zeros(self.config.edge_dim))

        def relation_embedding(self, nodes, relation, exploration=None):
            embedding = super().relation_embedding(nodes, relation, exploration)
            # Defect: (B, d) * (1, d) stretches axis 0 across the batch.
            embedding = embedding * self.batch_gain
            if relation == self.detached_relation:
                # Defect: this relationship's gradient path is severed.
                embedding = embedding.detach()
            return embedding

    return MiswiredHybridGNN


def _audit(model_cls, model_label: str, seed: SeedLike) -> CheckReport:
    from repro.core.loss import skip_gram_loss

    rng = as_rng(seed)
    graph = _tiny_graph()
    config = _tiny_config()
    model = model_cls(graph, _tiny_schemes(graph), config, rng=spawn_rng(rng))
    batch_size = pick_batch_size(
        {config.base_dim, config.edge_dim, config.num_negatives, 2, 3, 4},
        graph.num_nodes,
        (2, 4),
    )
    nodes = rng.integers(0, graph.num_nodes, size=batch_size).astype(np.int64)
    contexts = rng.integers(0, graph.num_nodes, size=batch_size)
    negatives = rng.integers(
        0, graph.num_nodes, size=(batch_size, config.num_negatives)
    )

    with trace() as tracer:
        loss = None
        for relation in model.relations:
            embeddings = model(nodes, relation)
            rel_loss = skip_gram_loss(embeddings, model.context, contexts, negatives)
            loss = rel_loss if loss is None else loss + rel_loss
    root = tracer.index_of(loss)
    tracer.annotate_parameters(model.named_parameters())
    return audit_graph(
        tracer,
        root,
        symbols={batch_size: "B", graph.num_nodes: "N"},
        exemptions=model.audit_exemptions(),
        model=model_label,
        dataset="tiny",
    )


def build_stock_report(seed: SeedLike = 0) -> CheckReport:
    """Audit the stock HybridGNN on the tiny graph (must be strict-clean)."""
    from repro.core.model import HybridGNN

    return _audit(HybridGNN, "HybridGNN", seed)


def build_miswired_report(seed: SeedLike = 0) -> CheckReport:
    """Audit the seeded mis-wired variant (must be flagged)."""
    return _audit(_make_miswired_class(), "MiswiredHybridGNN", seed)


def run_self_test(seed: SeedLike = 0) -> Tuple[bool, List[str], Dict[str, CheckReport]]:
    """Check that the auditor separates the stock and mis-wired models.

    Returns ``(ok, messages, reports)`` where ``messages`` describes every
    expectation that failed (empty when ``ok``).
    """
    stock = build_stock_report(seed)
    miswired = build_miswired_report(seed)
    messages: List[str] = []

    if not stock.passed(strict=True):
        for finding in stock.sorted_findings():
            if finding.severity in ("error", "warning"):
                messages.append(
                    f"stock model not clean: {finding.code} {finding.message}"
                )

    unreachable = {
        f.param
        for f in miswired.findings
        if f.code == "C005" and f.severity == "warning"
    }
    if "orphan_bias" not in unreachable:
        messages.append("mis-wired model: orphan_bias not reported unreachable (C005)")
    relation_params = {
        name for name in unreachable
        if name.startswith(("flows.", "metapath_attention."))
    }
    if not relation_params:
        messages.append(
            "mis-wired model: detached relationship's flow/attention parameters "
            "not reported unreachable (C005)"
        )
    if not any(f.code == "C003" for f in miswired.findings):
        messages.append("mis-wired model: batch_gain broadcast not reported (C003)")
    if not any(f.code == "C006" for f in miswired.findings):
        messages.append("mis-wired model: detached subgraph not reported dead (C006)")
    if any(f.severity == "error" for f in miswired.findings):
        messages.append(
            "mis-wired model: unexpected propagation errors (C001/C002) — the "
            "defects are wiring-level, shapes should still check"
        )

    reports = {"stock": stock, "miswired": miswired}
    return (not messages, messages, reports)
