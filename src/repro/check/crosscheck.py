"""Transfer rules cross-checked against concrete forward shapes.

Runs every gradcheck registry case (``repro.verify.gradcheck``) under the
op tracer and re-propagates the recorded graph abstractly: for every op
the transfer rule's shape/dtype must equal what the concrete forward
produced, and no required op may lack a rule.  This is the ``transfer``
suite of ``repro verify`` — the static checker's own differential oracle,
anchored to the same case builders that gradcheck trusts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.check.trace import trace
from repro.check.transfer import propagate, uncovered_transfer_rules
from repro.utils.rng import as_rng

__all__ = ["TransferCheck", "format_transfer_table", "run_transfer_suite"]


@dataclass
class TransferCheck:
    """Outcome of abstractly re-propagating one gradcheck case's trace."""

    name: str
    num_ops: int
    passed: bool
    messages: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_ops": self.num_ops,
            "passed": self.passed,
            "messages": list(self.messages),
        }


def run_transfer_suite(seed: int = 0) -> List[TransferCheck]:
    """Abstract-vs-concrete agreement over every registered gradcheck case."""
    from repro.verify.gradcheck import gradcheck_cases

    checks: List[TransferCheck] = []

    uncovered = uncovered_transfer_rules()
    checks.append(
        TransferCheck(
            name="transfer.coverage",
            num_ops=0,
            passed=not uncovered,
            messages=(
                [f"ops with no transfer rule: {uncovered}"] if uncovered else []
            ),
        )
    )

    for i, case in enumerate(gradcheck_cases()):
        rng = as_rng((seed, i))
        try:
            func, _tensors, _names = case.build(rng)
            with trace() as tracer:
                func()
            result = propagate(tracer.nodes)
            messages = [p.message for p in result.problems]
            checks.append(
                TransferCheck(
                    name=f"transfer.{case.name}",
                    num_ops=len(tracer.op_nodes()),
                    passed=not messages,
                    messages=messages,
                )
            )
        except Exception as exc:  # pragma: no cover - defensive, mirrors gradcheck
            checks.append(
                TransferCheck(
                    name=f"transfer.{case.name}",
                    num_ops=0,
                    passed=False,
                    messages=[f"case raised {type(exc).__name__}: {exc}"],
                )
            )
    return checks


def format_transfer_table(checks: List[TransferCheck]) -> str:
    lines = ["transfer-rule crosscheck (abstract vs concrete shapes)"]
    width = max(len(c.name) for c in checks) if checks else 10
    for check in checks:
        status = "ok" if check.passed else "FAIL"
        lines.append(f"  {check.name:<{width}}  {check.num_ops:>5} ops  {status}")
        for message in check.messages:
            lines.append(f"      {message}")
    failed = sum(1 for c in checks if not c.passed)
    lines.append(
        f"  {len(checks)} checks, {failed} failed"
        if failed
        else f"  {len(checks)} checks, all passed"
    )
    return "\n".join(lines)
