"""Scaled dot-product self-attention (Eq. 6 and Eq. 9 of the paper).

Both levels of HybridGNN's hierarchical attention are instances of the same
single-head self-attention where queries, keys and values are the input
sequence itself:

    A(H) = softmax(H W_Q (H W_K)^T / sqrt(d_k)) H W_V
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class SelfAttention(Module):
    """Single-head self-attention over sequences of shape ``(..., n, d_in)``.

    Parameters
    ----------
    in_dim:
        Feature size of each sequence element.
    attn_dim:
        Projection size ``d_k`` for queries/keys/values (the output feature
        size is also ``attn_dim``, matching the paper's formulation).
    """

    def __init__(self, in_dim: int, attn_dim: int, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.in_dim = in_dim
        self.attn_dim = attn_dim
        self.query = Linear(in_dim, attn_dim, bias=False, rng=spawn_rng(rng))
        self.key = Linear(in_dim, attn_dim, bias=False, rng=spawn_rng(rng))
        self.value = Linear(in_dim, attn_dim, bias=False, rng=spawn_rng(rng))
        self._last_weights: Optional[np.ndarray] = None

    def forward(self, h: Tensor) -> Tensor:
        """Attend ``h`` of shape ``(..., n, in_dim)`` -> ``(..., n, attn_dim)``."""
        q = self.query(h)
        k = self.key(h)
        v = self.value(h)
        scores = (q @ k.transpose(-2, -1)) * (1.0 / np.sqrt(self.attn_dim))
        weights = scores.softmax(axis=-1)
        self._last_weights = weights.data.copy()
        return weights @ v

    @property
    def last_attention_weights(self) -> Optional[np.ndarray]:
        """Attention matrix from the most recent forward pass.

        Shape ``(..., n, n)``; row ``i`` is the distribution over inputs used
        to build output ``i``.  Used by the paper's Fig. 5 case study to read
        out metapath importances.
        """
        return self._last_weights
