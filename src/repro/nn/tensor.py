"""A reverse-mode automatic differentiation engine over numpy arrays.

This module is the stand-in for the PyTorch autograd the paper's original
implementation relies on.  :class:`Tensor` wraps a ``numpy.ndarray`` and
records the operations applied to it; calling :meth:`Tensor.backward` on a
scalar result propagates gradients to every tensor created with
``requires_grad=True``.

Only the operations needed by the models in this repository are implemented,
but each is fully general (broadcasting, batched matmul, arbitrary axes) and
covered by numeric gradient checks in the test suite.

Every tensor also carries an integer :attr:`Tensor.version` bumped by the
sanctioned write path (assignment to ``tensor.data``).  When the opt-in
sanitizer is active (:mod:`repro.nn.sanitizer`), each op additionally
records the versions of the tensors it saves for backward, and
:meth:`Tensor.backward` raises :class:`~repro.errors.SanitizerError` naming
the op whose saved inputs were mutated after the forward pass.  In-place
numpy writes that bypass ``tensor.data`` assignment (slice stores, ``out=``)
are invisible to the counter — the project linter (``python -m repro lint``,
rule R003) forbids them outside the whitelisted optimizer/init modules.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AnomalyError, AutogradError, SanitizerError, ShapeError
from repro.nn.sanitizer import STATE as _SANITIZER
from repro.nn.tracing import STATE as _TRACING

ArrayLike = Union[float, int, Sequence, np.ndarray, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        If True, gradients accumulate into :attr:`grad` during backward.
    """

    __slots__ = (
        "_data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_version",
        "_op",
        "_saved_versions",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data._data
        self._data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name
        self._version: int = 0
        self._op: Optional[str] = None
        self._saved_versions: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Data access: ``tensor.data = array`` is the sanctioned write path
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value: ArrayLike) -> None:
        if isinstance(value, Tensor):
            value = value._data
        self._data = np.asarray(value, dtype=np.float64)
        self._version += 1

    @property
    def version(self) -> int:
        """Write-path version counter (see :mod:`repro.nn.sanitizer`).

        Bumped by every assignment to :attr:`data`, including augmented
        assignments such as ``param.data -= update`` (they re-assign the
        attribute after the in-place numpy op).
        """
        return self._version

    @property
    def op(self) -> Optional[str]:
        """Name of the autograd op that created this tensor, if any."""
        return self._op

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self._data

    def item(self) -> float:
        return float(self._data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self._data, requires_grad=False)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str = "",
        attrs: Optional[dict] = None,
    ) -> "Tensor":
        out = Tensor(data)
        if _SANITIZER.anomaly and not np.isfinite(data).all():
            bad = int(data.size - np.count_nonzero(np.isfinite(data)))
            shapes = ", ".join(str(p.shape) for p in parents) or "none"
            raise AnomalyError(
                f"detect_anomaly: op '{op}' produced {bad} non-finite "
                f"value(s) in an output of shape {np.shape(data)} "
                f"(parent shapes: {shapes})"
            )
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
            out._op = op
            if _SANITIZER.track:
                out._saved_versions = (
                    out._version,
                ) + tuple(p._version for p in parents)
        if _TRACING.active:
            _TRACING.handler(out, parents, op, attrs)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self._data)
        self.grad += grad

    def _check_saved_versions(self) -> None:
        """Raise if a tensor saved by this op's forward was since mutated."""
        saved = self._saved_versions
        tensors = (self,) + self._parents
        for index, (tensor, expected) in enumerate(zip(tensors, saved)):
            if tensor._version == expected:
                continue
            label = "output" if index == 0 else f"input {index - 1}"
            described = f"'{tensor.name}' " if tensor.name else ""
            raise SanitizerError(
                f"a tensor saved for the backward of op '{self._op}' was "
                f"mutated after the forward pass: {label} {described}"
                f"(shape {tensor.shape}) is at version {tensor._version}, "
                f"expected {expected}. Writing through `tensor.data` "
                "invalidates activations captured by the op's backward "
                "closure; run backward() first or operate on a copy."
            )

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Propagate gradients from this tensor to all its ancestors.

        ``grad`` defaults to 1 for scalar tensors; for non-scalar outputs it
        must be supplied explicitly.
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self._data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self._data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self._data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        anomaly = _SANITIZER.anomaly
        if anomaly and not np.isfinite(grad).all():
            raise AnomalyError(
                f"detect_anomaly: backward() was seeded with a non-finite "
                f"gradient (shape {grad.shape})"
            )
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            if node._saved_versions is not None:
                node._check_saved_versions()
            node._backward(node.grad)
            if anomaly:
                for index, parent in enumerate(node._parents):
                    if parent.grad is None or np.isfinite(parent.grad).all():
                        continue
                    described = f" '{parent.name}'" if parent.name else ""
                    raise AnomalyError(
                        f"detect_anomaly: backward of op '{node._op}' "
                        f"produced a non-finite gradient for input {index}"
                        f"{described} (shape {parent.shape})"
                    )

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self._data + other._data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self._data.shape))
            other._accumulate(_unbroadcast(grad, other._data.shape))

        return Tensor._make(out_data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self._data, (self,), backward, op="neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self._data * other._data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other._data, self._data.shape))
            other._accumulate(_unbroadcast(grad * self._data, other._data.shape))

        return Tensor._make(out_data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self._data / other._data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other._data, self._data.shape))
            other._accumulate(
                _unbroadcast(-grad * self._data / (other._data**2), other._data.shape)
            )

        return Tensor._make(out_data, (self, other), backward, op="truediv")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise ShapeError("only scalar exponents are supported")
        out_data = self._data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self._data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, op="pow")

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self._data @ other._data

        def backward(grad: np.ndarray) -> None:
            a, b = self._data, other._data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b).sum(axis=-1)
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = a[:, None] * grad[..., None, :]
                other._accumulate(_unbroadcast(gb, b.shape))
                return
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b
                self._accumulate(_unbroadcast(ga, a.shape))
                gb = (grad[..., :, None] * a).sum(axis=tuple(range(grad.ndim - 1)) + (-2,))
                other._accumulate(_unbroadcast(gb.reshape(b.shape), b.shape))
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (self, other), backward, op="matmul")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self._data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self._data.shape).copy())

        return Tensor._make(
            out_data,
            (self,),
            backward,
            op="sum",
            attrs={"axis": axis, "keepdims": keepdims},
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self._data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self._data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self._data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = (self._data == expanded).astype(self._data.dtype)
            # Split gradient evenly among ties to keep the op well-defined.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return Tensor._make(
            out_data,
            (self,),
            backward,
            op="max",
            attrs={"axis": axis, "keepdims": keepdims},
        )

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self._data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        out_data = np.log(self._data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self._data)

        return Tensor._make(out_data, (self,), backward, op="log")

    def sigmoid(self) -> "Tensor":
        out_data = 0.5 * (1.0 + np.tanh(0.5 * self._data))  # numerically stable

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, op="sigmoid")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self._data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward, op="tanh")

    def relu(self) -> "Tensor":
        out_data = np.maximum(self._data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self._data > 0.0))

        return Tensor._make(out_data, (self,), backward, op="relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        out_data = np.where(self._data > 0.0, self._data, negative_slope * self._data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(self._data > 0.0, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward, op="leaky_relu")

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self._data - self._data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (self,), backward, op="softmax", attrs={"axis": axis})

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self._data - self._data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._make(
            out_data, (self,), backward, op="log_softmax", attrs={"axis": axis}
        )

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self._data.reshape(shape)
        original = self._data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(
            out_data, (self,), backward, op="reshape", attrs={"shape": tuple(shape)}
        )

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        out_data = np.swapaxes(self._data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(
            out_data, (self,), backward, op="transpose", attrs={"axis1": axis1, "axis2": axis2}
        )

    def __getitem__(self, key) -> "Tensor":
        out_data = self._data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self._data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward, op="getitem")

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self._data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward, op="squeeze", attrs={"axis": axis})

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self._data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward, op="unsqueeze", attrs={"axis": axis})

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self._data, shape).copy()
        original = self._data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(
            out_data, (self,), backward, op="broadcast_to", attrs={"shape": tuple(shape)}
        )


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate ``tensors`` along ``axis`` (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("concat() requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward, op="concat", attrs={"axis": axis})


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack ``tensors`` along a new ``axis`` (differentiable)."""
    tensors = list(tensors)
    if not tensors:
        raise ShapeError("stack() requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for idx, tensor in enumerate(tensors):
            tensor._accumulate(np.take(grad, idx, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward, op="stack", attrs={"axis": axis})


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable row gather: ``weight[indices]``.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + (embedding_dim,)``.  The gradient is scatter-added back
    into the rows of ``weight``, matching ``torch.nn.Embedding``.
    """
    indices = np.asarray(indices)
    if not np.issubdtype(indices.dtype, np.integer):
        raise ShapeError("embedding_lookup indices must be integers")
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.data.shape[-1]))
        weight._accumulate(full)

    return Tensor._make(
        out_data,
        (weight,),
        backward,
        op="embedding_lookup",
        attrs={"indices_shape": tuple(indices.shape)},
    )


def sparse_matmul(matrix, x: Tensor) -> Tensor:
    """Differentiable ``matrix @ x`` for a *constant* scipy sparse matrix.

    Used by the spectral GNN baselines (GCN, R-GCN) whose propagation is a
    fixed normalised adjacency.  Gradient: ``matrix.T @ grad``.
    """
    out_data = matrix @ x.data

    def backward(grad: np.ndarray) -> None:
        x._accumulate(matrix.T @ grad)

    return Tensor._make(
        np.asarray(out_data),
        (x,),
        backward,
        op="sparse_matmul",
        attrs={"matrix_shape": tuple(matrix.shape), "matrix_dtype": str(matrix.dtype)},
    )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise select; ``condition`` is non-differentiable."""
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(_unbroadcast(np.where(condition, grad, 0.0), a.data.shape))
        b._accumulate(_unbroadcast(np.where(condition, 0.0, grad), b.data.shape))

    return Tensor._make(
        out_data, (a, b), backward, op="where", attrs={"condition_shape": tuple(condition.shape)}
    )
