"""Runtime sanitizers for the numpy autograd engine.

Two independent, opt-in checks guard the invariants the reproduction's
credibility rests on (see DESIGN.md, "Tensor version-counter contract"):

**Mutation tracking** (:func:`sanitize` / :func:`set_sanitizer`)
    Every :class:`~repro.nn.tensor.Tensor` carries an integer version that
    the sanctioned write path (assignment to ``tensor.data``) bumps.  While
    tracking is enabled, each op records the versions of the tensors it
    saves for backward; ``backward()`` re-checks them and raises
    :class:`~repro.errors.SanitizerError` naming the op whose saved inputs
    were mutated after the forward pass — the bug class that otherwise
    silently mis-computes gradients through stale ``_backward`` closures.

**Anomaly detection** (:func:`detect_anomaly`)
    While enabled, every op output is checked for NaN/Inf at creation time
    and every node gradient is checked during backward;
    :class:`~repro.errors.AnomalyError` is raised at the *creating* op with
    its name and parent shapes, instead of letting the NaN wash through to
    the loss.

Both default to **off**: the only cost on the default path is one integer
flag compare per op (see ``tests/nn/test_sanitizer.py``), and training runs
are bit-identical with the sanitizer on or off — the checks never alter
numerics, they only raise.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "sanitize",
    "set_sanitizer",
    "sanitizer_enabled",
    "detect_anomaly",
    "set_detect_anomaly",
    "anomaly_enabled",
]


class _State:
    """Process-wide sanitizer flags, read by the tensor hot path.

    ``track`` and ``anomaly`` are plain ints so the per-op guard compiles
    to a single attribute load + truthiness test.
    """

    __slots__ = ("track", "anomaly")

    def __init__(self) -> None:
        self.track = 0
        self.anomaly = 0


STATE = _State()


def set_sanitizer(enabled: bool = True) -> bool:
    """Turn mutation tracking on/off; returns the previous setting."""
    previous = bool(STATE.track)
    STATE.track = 1 if enabled else 0
    return previous


def sanitizer_enabled() -> bool:
    """True while mutation tracking is active."""
    return bool(STATE.track)


@contextmanager
def sanitize():
    """Context manager enabling mutation tracking for its body.

    >>> with sanitize():
    ...     loss = model(batch).sum()
    ...     loss.backward()  # raises SanitizerError on stale saved tensors
    """
    previous = set_sanitizer(True)
    try:
        yield
    finally:
        set_sanitizer(previous)


def set_detect_anomaly(enabled: bool = True) -> bool:
    """Turn NaN/Inf anomaly detection on/off; returns the previous setting."""
    previous = bool(STATE.anomaly)
    STATE.anomaly = 1 if enabled else 0
    return previous


def anomaly_enabled() -> bool:
    """True while anomaly detection is active."""
    return bool(STATE.anomaly)


@contextmanager
def detect_anomaly():
    """Context manager raising :class:`~repro.errors.AnomalyError` on the
    first non-finite op output (with the creating op's name and parent
    shapes) or non-finite gradient seen during backward."""
    previous = set_detect_anomaly(True)
    try:
        yield
    finally:
        set_detect_anomaly(previous)
