"""Common neural-network layers built on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, embedding_lookup
from repro.utils.rng import SeedLike, as_rng


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis of ``x``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """A table of ``num_embeddings`` learnable ``embedding_dim``-vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 std: float = 0.1, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=std, rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float = 0.5, rng: SeedLike = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p <= 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep  # repro-lint: intended-dtype=float64 (Tensor buffers are canonically float64)
        return x * Tensor(mask)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta
