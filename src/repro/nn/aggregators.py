"""Neighborhood aggregation functions AGG(h_self, {h_neigh}) (Eq. 3).

The paper names three candidates — mean, pooling and LSTM aggregators — and
reports "no significant differences" between them, using the mean aggregator
in all experiments.  All three are implemented here (the ablation bench
verifies the claim).

Every aggregator maps

    self features      (batch, d_in)
    neighbor features  (batch, n_neighbors, d_in)

to aggregated features (batch, d_out), GraphSage-style: a learnable combine
of the self vector and a learnable reduction of the neighbor set.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class Aggregator(Module):
    """Interface: ``forward(self_feats, neighbor_feats) -> Tensor``."""

    def __init__(self, in_dim: int, out_dim: int):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        raise NotImplementedError


class MeanAggregator(Aggregator):
    """h' = ReLU([h_self ; mean(h_neigh)] W) — the paper's default."""

    def __init__(self, in_dim: int, out_dim: int, rng: SeedLike = None):
        super().__init__(in_dim, out_dim)
        self.combine = Linear(2 * in_dim, out_dim, rng=as_rng(rng))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        pooled = neighbor_feats.mean(axis=-2)
        merged = concat([self_feats, pooled], axis=-1)
        return self.combine(merged).relu()


class MaxPoolAggregator(Aggregator):
    """Transform each neighbor with an MLP, take elementwise max, combine."""

    def __init__(self, in_dim: int, out_dim: int, rng: SeedLike = None):
        super().__init__(in_dim, out_dim)
        rng = as_rng(rng)
        self.transform = Linear(in_dim, in_dim, rng=spawn_rng(rng))
        self.combine = Linear(2 * in_dim, out_dim, rng=spawn_rng(rng))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        transformed = self.transform(neighbor_feats).relu()
        pooled = transformed.max(axis=-2)
        merged = concat([self_feats, pooled], axis=-1)
        return self.combine(merged).relu()


class LSTMAggregator(Aggregator):
    """Run a single-layer LSTM over the neighbor sequence; use the last state.

    Neighbor order is an artifact of sampling, so (as in GraphSage) the
    aggregator is applied to the neighbors in sampled order; the sampler
    already randomises that order.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: SeedLike = None):
        super().__init__(in_dim, out_dim)
        rng = as_rng(rng)
        hidden = in_dim
        self.hidden_dim = hidden
        # Fused gate weights: [input, forget, cell, output] stacked.
        self.w_x = Parameter(init.xavier_uniform((in_dim, 4 * hidden), rng=spawn_rng(rng)))
        self.w_h = Parameter(init.xavier_uniform((hidden, 4 * hidden), rng=spawn_rng(rng)))
        self.b = Parameter(np.zeros(4 * hidden))
        self.combine = Linear(2 * in_dim, out_dim, rng=spawn_rng(rng))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        batch, n_neighbors = neighbor_feats.shape[0], neighbor_feats.shape[1]
        hidden = Tensor(np.zeros((batch, self.hidden_dim)))
        cell = Tensor(np.zeros((batch, self.hidden_dim)))
        for step in range(n_neighbors):
            x_t = neighbor_feats[:, step, :]
            gates = x_t @ self.w_x + hidden @ self.w_h + self.b
            i_gate = gates[:, : self.hidden_dim].sigmoid()
            f_gate = gates[:, self.hidden_dim: 2 * self.hidden_dim].sigmoid()
            g_gate = gates[:, 2 * self.hidden_dim: 3 * self.hidden_dim].tanh()
            o_gate = gates[:, 3 * self.hidden_dim:].sigmoid()
            cell = f_gate * cell + i_gate * g_gate
            hidden = o_gate * cell.tanh()
        merged = concat([self_feats, hidden], axis=-1)
        return self.combine(merged).relu()


_AGGREGATORS = {
    "mean": MeanAggregator,
    "pool": MaxPoolAggregator,
    "lstm": LSTMAggregator,
}


def make_aggregator(kind: str, in_dim: int, out_dim: int, rng: SeedLike = None) -> Aggregator:
    """Factory for the three aggregator kinds: ``mean``, ``pool``, ``lstm``."""
    try:
        cls = _AGGREGATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {kind!r}; expected one of {sorted(_AGGREGATORS)}"
        ) from None
    return cls(in_dim, out_dim, rng=rng)
