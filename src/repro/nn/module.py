"""Module/Parameter containers, mirroring the shape of ``torch.nn.Module``.

A :class:`Module` discovers its parameters by walking its attributes, so
models compose naturally: assigning a ``Parameter``, a child ``Module``, or a
list of modules to ``self`` is enough for ``parameters()`` to find them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Subclasses implement ``forward`` and are called directly:
    ``y = layer(x)``.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        for attr, value in vars(self).items():
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for idx, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{idx}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{idx}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{name}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{key}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of learnable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in vars(self).values():
            if isinstance(value, Module):
                value.train(mode)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item.train(mode)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot parameter values (copies) keyed by dotted names."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict`; shapes must match."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            param = params[name]
            if param.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {param.data.shape} vs {value.shape}"
                )
            param.data = value.copy()


class ModuleList(Module):
    """A list of child modules, discoverable by ``parameters()``."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, idx: int) -> Module:
        return self.items[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise NotImplementedError("ModuleList is a container and cannot be called")


class ModuleDict(Module):
    """A string-keyed dictionary of child modules."""

    def __init__(self, modules=None):
        super().__init__()
        self.items = dict(modules or {})

    def __getitem__(self, key: str) -> Module:
        return self.items[key]

    def __setitem__(self, key: str, module: Module) -> None:
        self.items[key] = module

    def __contains__(self, key: str) -> bool:
        return key in self.items

    def keys(self):
        return self.items.keys()

    def values(self):
        return self.items.values()

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise NotImplementedError("ModuleDict is a container and cannot be called")
