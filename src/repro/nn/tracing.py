"""Op-graph tracing hooks for the static checker (:mod:`repro.check`).

While a trace handler is installed, every autograd op built through
:meth:`repro.nn.tensor.Tensor._make` reports ``(out, parents, op, attrs)``
to the handler, where ``attrs`` is the op's static metadata (reduction
axes, reshape targets, index shapes, ...).  The handler side lives in
:mod:`repro.check.trace`; this module only holds the process-wide state so
the tensor hot path stays a single attribute load + truthiness test when
tracing is off, exactly like the sanitizer flags in
:mod:`repro.nn.sanitizer`.

Tracing is a *recording* facility: it never alters shapes, dtypes or
gradients, and imposes zero per-op state while disabled.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["set_trace_handler", "trace_handler_installed"]

#: Handler signature: ``handler(out, parents, op, attrs)``.
TraceHandler = Callable[[Any, Tuple[Any, ...], str, Optional[Dict[str, Any]]], None]


class _State:
    """Process-wide tracing state, read by the tensor hot path."""

    __slots__ = ("active", "handler")

    def __init__(self) -> None:
        self.active = 0
        self.handler: Optional[TraceHandler] = None


STATE = _State()


def set_trace_handler(handler: Optional[TraceHandler]) -> Optional[TraceHandler]:
    """Install (or, with ``None``, remove) the op trace handler.

    Returns the previously installed handler so nested scopes can restore
    it.  Only one handler is active at a time; the installer owns the
    tracing scope.
    """
    previous = STATE.handler
    STATE.handler = handler
    STATE.active = 1 if handler is not None else 0
    return previous


def trace_handler_installed() -> bool:
    """True while an op trace handler is installed."""
    return bool(STATE.active)
