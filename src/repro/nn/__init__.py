"""A minimal reverse-mode autodiff / neural-network framework over numpy.

This subpackage replaces the PyTorch dependency of the paper's original
implementation.  Public surface:

- :class:`~repro.nn.tensor.Tensor` plus the functional ops
  :func:`~repro.nn.tensor.concat`, :func:`~repro.nn.tensor.stack`,
  :func:`~repro.nn.tensor.embedding_lookup`, :func:`~repro.nn.tensor.where`
- :class:`~repro.nn.module.Module` / :class:`~repro.nn.module.Parameter`
  containers
- layers: :class:`Linear`, :class:`Embedding`, :class:`Dropout`,
  :class:`LayerNorm`, :class:`SelfAttention`, and the three neighborhood
  aggregators (mean / max-pool / LSTM)
- optimisers: :class:`SGD`, :class:`Adam`
- runtime sanitizers: :func:`~repro.nn.sanitizer.sanitize` (saved-tensor
  mutation tracking via the Tensor version counter) and
  :func:`~repro.nn.sanitizer.detect_anomaly` (NaN/Inf provenance)
"""

from repro.nn.tensor import (
    Tensor,
    concat,
    embedding_lookup,
    sparse_matmul,
    stack,
    where,
)
from repro.nn.module import Module, ModuleDict, ModuleList, Parameter
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.attention import SelfAttention
from repro.nn.aggregators import (
    Aggregator,
    LSTMAggregator,
    MaxPoolAggregator,
    MeanAggregator,
    make_aggregator,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.sanitizer import (
    anomaly_enabled,
    detect_anomaly,
    sanitize,
    sanitizer_enabled,
    set_detect_anomaly,
    set_sanitizer,
)
from repro.nn import init

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "embedding_lookup",
    "sparse_matmul",
    "where",
    "Module",
    "ModuleList",
    "ModuleDict",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "ReLU",
    "Tanh",
    "SelfAttention",
    "Aggregator",
    "MeanAggregator",
    "MaxPoolAggregator",
    "LSTMAggregator",
    "make_aggregator",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
    "sanitize",
    "set_sanitizer",
    "sanitizer_enabled",
    "detect_anomaly",
    "set_detect_anomaly",
    "anomaly_enabled",
]
