"""Weight initialisation schemes."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-d shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = as_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.01, rng: SeedLike = None) -> np.ndarray:
    """Zero-mean Gaussian initialisation."""
    return as_rng(rng).normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], limit: float = 0.05, rng: SeedLike = None) -> np.ndarray:
    """Symmetric uniform initialisation in ``[-limit, limit]``."""
    return as_rng(rng).uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
