"""Numeric gradient checking for the autograd engine (used by tests).

Historical import location.  The engine itself lives in
:mod:`repro.verify.gradcheck`, which adds per-element relative steps,
random-subset sampling for large tensors, structured reports and a case
registry covering every public op/module; this module re-exports the two
original entry points with their original signatures.
"""

from __future__ import annotations

from repro.verify.gradcheck import check_gradients, numeric_gradient

__all__ = ["numeric_gradient", "check_gradients"]
