"""Numeric gradient checking for the autograd engine (used by tests)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def numeric_gradient(func: Callable[[], Tensor], tensor: Tensor,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for idx in range(flat.size):
        original = flat[idx]
        flat[idx] = original + eps
        plus = func().item()
        flat[idx] = original - eps
        minus = func().item()
        flat[idx] = original
        grad_flat[idx] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(func: Callable[[], Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-4, rtol: float = 1e-4) -> None:
    """Assert autograd gradients of ``func`` match numeric ones.

    ``func`` must rebuild the graph on each call (it is invoked repeatedly
    with perturbed inputs).
    """
    for tensor in tensors:
        tensor.zero_grad()
    out = func()
    out.backward()
    for tensor in tensors:
        assert tensor.grad is not None, "no gradient reached a checked tensor"
        expected = numeric_gradient(func, tensor, eps=eps)
        np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=rtol)
