"""Descriptive statistics of a multiplex heterogeneous graph.

Used to print Table II-style dataset summaries and by the degree-cluster
case studies (Fig. 6 / Table VIII of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph


@dataclass
class GraphStatistics:
    """Summary counts of one graph (the paper's Table II columns)."""

    num_nodes: int
    num_edges: int
    num_node_types: int
    num_relationships: int
    nodes_per_type: Dict[str, int]
    edges_per_relationship: Dict[str, int]
    mean_degree: float
    max_degree: int

    def as_row(self) -> Tuple[int, int, int, int]:
        """(|V|, |E|, |O|, |R|) — the shape of a Table II row."""
        return (self.num_nodes, self.num_edges, self.num_node_types, self.num_relationships)


def compute_statistics(graph: MultiplexHeteroGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    degrees = graph.degrees()
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_node_types=graph.schema.num_node_types,
        num_relationships=graph.schema.num_relationships,
        nodes_per_type={
            node_type: int(len(graph.nodes_of_type(node_type)))
            for node_type in graph.schema.node_types
        },
        edges_per_relationship={
            relation: graph.num_edges_in(relation)
            for relation in graph.schema.relationships
        },
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
    )


def degree_clusters(graph: MultiplexHeteroGraph, num_clusters: int = 4,
                    relation: str = None) -> List[Tuple[int, int, np.ndarray]]:
    """Partition nodes into ``num_clusters`` equal-width degree buckets.

    Returns a list of ``(low, high, node_ids)`` with ``low <= degree < high``
    (the last bucket is inclusive of the max).  Mirrors the degree-cluster
    analysis of Fig. 6 and Table VIII.  Nodes of degree zero are excluded,
    as the paper buckets start at degree 1.
    """
    degrees = graph.degrees(relation)
    active = np.flatnonzero(degrees >= 1)
    if len(active) == 0:
        return []
    lo = int(degrees[active].min())
    hi = int(degrees[active].max())
    edges = np.linspace(lo, hi + 1, num_clusters + 1)
    clusters = []
    for i in range(num_clusters):
        low, high = edges[i], edges[i + 1]
        mask = (degrees[active] >= low) & (degrees[active] < high)
        clusters.append((int(low), int(high), active[mask]))
    return clusters
