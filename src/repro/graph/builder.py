"""Incremental construction of :class:`MultiplexHeteroGraph` instances."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, SchemaError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import GraphSchema


class GraphBuilder:
    """Accumulate typed nodes and multiplex edges, then ``build()``.

    Duplicate edges within a relationship are dropped silently (real logs
    contain repeats); the same node pair may be connected under several
    relationships — that is the multiplexity the paper studies.
    """

    def __init__(self, schema: GraphSchema):
        self.schema = schema
        self._type_codes: List[int] = []
        self._edges: Dict[str, List[Tuple[int, int]]] = {
            rel: [] for rel in schema.relationships
        }

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._type_codes)

    def add_node(self, node_type: str) -> int:
        """Add one node; returns its id (dense, starting at 0)."""
        code = self.schema.node_type_index(node_type)
        self._type_codes.append(code)
        return len(self._type_codes) - 1

    def add_nodes(self, node_type: str, count: int) -> np.ndarray:
        """Add ``count`` nodes of one type; returns their ids."""
        if count < 0:
            raise GraphError(f"cannot add a negative number of nodes ({count})")
        code = self.schema.node_type_index(node_type)
        start = len(self._type_codes)
        self._type_codes.extend([code] * count)
        return np.arange(start, start + count, dtype=np.int64)

    def add_edge(self, u: int, v: int, relation: str) -> None:
        """Add the undirected edge (u, v) under ``relation``."""
        if relation not in self._edges:
            raise SchemaError(
                f"unknown relationship {relation!r}; schema has {self.schema.relationships}"
            )
        n = len(self._type_codes)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a node that does not exist")
        if u == v:
            raise GraphError("self-loops are not allowed")
        self._edges[relation].append((u, v))

    def add_edges(self, pairs: Iterable[Tuple[int, int]], relation: str) -> None:
        for u, v in pairs:
            self.add_edge(int(u), int(v), relation)

    # ------------------------------------------------------------------
    def build(self) -> MultiplexHeteroGraph:
        """Validate, deduplicate, and freeze into an immutable graph."""
        if not self._type_codes:
            raise GraphError("cannot build an empty graph")
        edges_by_rel: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for relation, pairs in self._edges.items():
            if pairs:
                arr = np.asarray(pairs, dtype=np.int64)
                low = np.minimum(arr[:, 0], arr[:, 1])
                high = np.maximum(arr[:, 0], arr[:, 1])
                keys = low * len(self._type_codes) + high
                _, unique_idx = np.unique(keys, return_index=True)
                arr = arr[np.sort(unique_idx)]
                edges_by_rel[relation] = (arr[:, 0], arr[:, 1])
            else:
                empty = np.empty(0, dtype=np.int64)
                edges_by_rel[relation] = (empty, empty)
        return MultiplexHeteroGraph(
            self.schema,
            np.asarray(self._type_codes, dtype=np.int64),
            edges_by_rel,
        )


def graph_from_edge_arrays(
    schema: GraphSchema,
    node_type_codes: Sequence[int],
    edges_by_relationship: Dict[str, Tuple[Sequence[int], Sequence[int]]],
) -> MultiplexHeteroGraph:
    """Build a graph directly from arrays (used by dataset generators)."""
    edges = {
        rel: (np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64))
        for rel, (src, dst) in edges_by_relationship.items()
    }
    return MultiplexHeteroGraph(schema, np.asarray(node_type_codes, dtype=np.int64), edges)
