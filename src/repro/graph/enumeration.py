"""Bounded enumeration of metapath schemes.

The paper motivates randomized exploration by noting that "enumerating all
meaningful intra-relationship metapaths and inter-relationship metapaths is
costly" (Sect. I).  This module makes that trade-off concrete: it
enumerates every scheme a graph actually *supports* up to a length bound,
which (a) lets users discover candidate schemes for PS_r instead of
hand-writing Table II patterns, and (b) quantifies the combinatorial blowup
that randomized exploration sidesteps.

A scheme is *supported* when at least one edge realises every hop type:
we derive the set of (src_type, relation, dst_type) triples present in the
graph and walk the type graph they induce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import MetapathError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme


def observed_type_triples(graph: MultiplexHeteroGraph) -> Set[Tuple[str, str, str]]:
    """All (src_type, relation, dst_type) triples with at least one edge.

    Symmetric: if (a, r, b) is present so is (b, r, a), matching the
    undirected adjacency.
    """
    triples: Set[Tuple[str, str, str]] = set()
    codes = graph.node_type_codes
    names = graph.schema.node_types
    for relation in graph.schema.relationships:
        src, dst = graph.edges(relation)
        for u_code, v_code in zip(codes[src], codes[dst]):
            a, b = names[int(u_code)], names[int(v_code)]
            triples.add((a, relation, b))
            triples.add((b, relation, a))
    return triples


def enumerate_schemes(
    graph: MultiplexHeteroGraph,
    max_length: int,
    start_type: Optional[str] = None,
    intra_only: bool = False,
    symmetric_only: bool = False,
) -> List[MetapathScheme]:
    """Every supported metapath scheme with 1..``max_length`` hops.

    Parameters
    ----------
    max_length:
        Maximum number of hops (|P|).  The result grows exponentially in
        this bound — that is the point the paper makes.
    start_type:
        Restrict to schemes starting at one node type.
    intra_only:
        Keep only intra-relationship schemes (all hops one relation).
    symmetric_only:
        Keep only schemes whose type sequence is palindromic (the classic
        similarity-style metapaths such as U-I-U).
    """
    if max_length < 1:
        raise MetapathError(f"max_length must be >= 1, got {max_length}")
    if start_type is not None:
        graph.schema.node_type_index(start_type)

    triples = observed_type_triples(graph)
    hops_from: Dict[str, List[Tuple[str, str]]] = {}
    for a, relation, b in triples:
        hops_from.setdefault(a, []).append((relation, b))
    for hops in hops_from.values():
        hops.sort()

    start_types = [start_type] if start_type else list(graph.schema.node_types)
    results: List[MetapathScheme] = []

    def extend(types: List[str], relations: List[str]) -> None:
        if relations:
            scheme = MetapathScheme(types, relations)
            keep = True
            if intra_only and not scheme.is_intra_relationship:
                keep = False
            if symmetric_only and not scheme.is_symmetric:
                keep = False
            if keep:
                results.append(scheme)
        if len(relations) == max_length:
            return
        for relation, next_type in hops_from.get(types[-1], []):
            extend(types + [next_type], relations + [relation])

    for node_type in start_types:
        if node_type in hops_from:
            extend([node_type], [])
    return results


def count_schemes_by_length(graph: MultiplexHeteroGraph,
                            max_length: int) -> Dict[int, int]:
    """How many supported schemes exist per hop count (the blowup curve)."""
    counts: Dict[int, int] = {length: 0 for length in range(1, max_length + 1)}
    for scheme in enumerate_schemes(graph, max_length):
        counts[len(scheme)] += 1
    return counts


@dataclass(frozen=True)
class SchemeSuggestion:
    """A ranked candidate scheme for one relationship's PS_r."""

    scheme: MetapathScheme
    coverage: float  # fraction of start-type nodes with a complete instance


def suggest_schemes(
    graph: MultiplexHeteroGraph,
    relation: str,
    max_length: int = 2,
    top: int = 5,
    sample_size: int = 50,
    rng=None,
) -> List[SchemeSuggestion]:
    """Rank intra-relationship candidate schemes for ``relation`` by coverage.

    Coverage is the fraction of sampled start-type nodes for which a full
    metapath instance exists; schemes that dead-end everywhere are useless
    for aggregation.  Symmetric schemes are preferred (they express
    similarity semantics), falling back to all schemes when none exist.
    """
    import numpy as np

    from repro.sampling.neighbor_sampler import MetapathNeighborSampler
    from repro.utils.rng import as_rng

    rng = as_rng(rng)
    graph.schema.relationship_index(relation)
    candidates = [
        scheme
        for scheme in enumerate_schemes(graph, max_length, intra_only=True,
                                        symmetric_only=True)
        if scheme.relations[0] == relation and len(scheme) >= 2
    ]
    if not candidates:
        candidates = [
            scheme
            for scheme in enumerate_schemes(graph, max_length, intra_only=True)
            if scheme.relations[0] == relation and len(scheme) >= 2
        ]

    suggestions: List[SchemeSuggestion] = []
    for scheme in candidates:
        starts = graph.nodes_of_type(scheme.start_type)
        if len(starts) == 0:
            continue
        sampler = MetapathNeighborSampler(
            graph, scheme, [1] * len(scheme), rng=rng
        )
        sample = rng.choice(starts, size=min(sample_size, len(starts)),
                            replace=False)
        complete = 0
        for node in sample:
            reached = sampler.guided_neighbors(int(node), len(scheme))
            if len(reached):
                complete += 1
        suggestions.append(
            SchemeSuggestion(scheme=scheme, coverage=complete / len(sample))
        )
    suggestions.sort(key=lambda s: (-s.coverage, len(s.scheme)))
    return suggestions[:top]
