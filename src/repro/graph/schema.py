"""Schema objects: node types, relationships and metapath schemes.

Definitions follow Section II of the paper:

- a *heterogeneous network* has node-type set O and edge-type (relationship)
  set R with |O| + |R| > 2;
- a *multiplex heterogeneous network* additionally allows multiple
  relationships between the same node pair (|R| > 1);
- a *metapath scheme* is a typed path  o_0 -r_1-> o_1 ... -r_n-> o_n; it is
  *intra-relationship* when all r_i coincide and *inter-relationship*
  otherwise (Def. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import MetapathError, SchemaError


@dataclass(frozen=True)
class GraphSchema:
    """The type structure of a multiplex heterogeneous network.

    Parameters
    ----------
    node_types:
        Names of the node types (the set O).
    relationships:
        Names of the edge types (the set R).
    """

    node_types: Tuple[str, ...]
    relationships: Tuple[str, ...]

    def __init__(self, node_types: Sequence[str], relationships: Sequence[str]):
        node_types = tuple(node_types)
        relationships = tuple(relationships)
        if not node_types:
            raise SchemaError("schema requires at least one node type")
        if not relationships:
            raise SchemaError("schema requires at least one relationship")
        if len(set(node_types)) != len(node_types):
            raise SchemaError(f"duplicate node types in {node_types}")
        if len(set(relationships)) != len(relationships):
            raise SchemaError(f"duplicate relationships in {relationships}")
        object.__setattr__(self, "node_types", node_types)
        object.__setattr__(self, "relationships", relationships)

    # ------------------------------------------------------------------
    @property
    def num_node_types(self) -> int:
        return len(self.node_types)

    @property
    def num_relationships(self) -> int:
        return len(self.relationships)

    @property
    def is_multiplex(self) -> bool:
        """|R| > 1 — multiple relationships may connect the same pair."""
        return self.num_relationships > 1

    @property
    def is_heterogeneous(self) -> bool:
        """|O| + |R| > 2 (Def. 1)."""
        return self.num_node_types + self.num_relationships > 2

    # ------------------------------------------------------------------
    def node_type_index(self, node_type: str) -> int:
        try:
            return self.node_types.index(node_type)
        except ValueError:
            raise SchemaError(
                f"unknown node type {node_type!r}; schema has {self.node_types}"
            ) from None

    def relationship_index(self, relationship: str) -> int:
        try:
            return self.relationships.index(relationship)
        except ValueError:
            raise SchemaError(
                f"unknown relationship {relationship!r}; schema has {self.relationships}"
            ) from None

    def category(self) -> str:
        """The paper's categorisation (Sect. III-G): ``G1`` (|O|=1, |R|>=2),
        ``G2`` (|O|>=2, |R|=1), ``G3`` (|O|>=2, |R|>=2) or ``homogeneous``."""
        many_types = self.num_node_types >= 2
        many_rels = self.num_relationships >= 2
        if many_types and many_rels:
            return "G3"
        if many_types:
            return "G2"
        if many_rels:
            return "G1"
        return "homogeneous"


@dataclass(frozen=True)
class MetapathScheme:
    """A typed path  o_0 -r_1-> o_1 -r_2-> ... -r_n-> o_n  (Def. 3).

    ``node_types`` has length n+1 and ``relations`` length n.
    """

    node_types: Tuple[str, ...]
    relations: Tuple[str, ...]

    def __init__(self, node_types: Sequence[str], relations: Sequence[str]):
        node_types = tuple(node_types)
        relations = tuple(relations)
        if len(node_types) < 2:
            raise MetapathError("a metapath scheme needs at least two node types")
        if len(relations) != len(node_types) - 1:
            raise MetapathError(
                f"need exactly {len(node_types) - 1} relations for "
                f"{len(node_types)} node types, got {len(relations)}"
            )
        object.__setattr__(self, "node_types", node_types)
        object.__setattr__(self, "relations", relations)

    # ------------------------------------------------------------------
    @classmethod
    def intra(cls, node_types: Sequence[str], relation: str) -> "MetapathScheme":
        """Build an intra-relationship scheme: every hop uses ``relation``."""
        return cls(node_types, (relation,) * (len(node_types) - 1))

    @classmethod
    def parse(cls, text: str, relation: str, abbreviations: Dict[str, str]) -> "MetapathScheme":
        """Parse the paper's Table II notation, e.g. ``"U-I-U"``.

        ``abbreviations`` maps the single letters to node-type names, e.g.
        ``{"U": "user", "I": "item"}``.
        """
        letters = [token.strip() for token in text.split("-") if token.strip()]
        try:
            node_types = [abbreviations[letter] for letter in letters]
        except KeyError as exc:
            raise MetapathError(
                f"unknown abbreviation {exc.args[0]!r} in metapath {text!r}"
            ) from None
        return cls.intra(node_types, relation)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """|P| = number of hops n."""
        return len(self.relations)

    @property
    def length(self) -> int:
        return len(self.relations)

    @property
    def start_type(self) -> str:
        return self.node_types[0]

    @property
    def end_type(self) -> str:
        return self.node_types[-1]

    @property
    def is_intra_relationship(self) -> bool:
        """True when all hops share one relation (Def. 3)."""
        return len(set(self.relations)) == 1

    @property
    def is_symmetric(self) -> bool:
        return self.node_types == tuple(reversed(self.node_types))

    def validate(self, schema: GraphSchema) -> None:
        """Raise :class:`MetapathError` if the scheme uses unknown types."""
        for node_type in self.node_types:
            if node_type not in schema.node_types:
                raise MetapathError(
                    f"metapath node type {node_type!r} not in schema {schema.node_types}"
                )
        for relation in self.relations:
            if relation not in schema.relationships:
                raise MetapathError(
                    f"metapath relation {relation!r} not in schema {schema.relationships}"
                )

    def describe(self) -> str:
        """Human-readable form, e.g. ``user -click-> item -click-> user``."""
        parts = [self.node_types[0]]
        for relation, node_type in zip(self.relations, self.node_types[1:]):
            parts.append(f"-{relation}->")
            parts.append(node_type)
        return " ".join(parts)


def intra_relationship_schemes(
    patterns: Iterable[str],
    relationships: Iterable[str],
    abbreviations: Dict[str, str],
) -> Dict[str, List[MetapathScheme]]:
    """Expand Table II patterns into per-relationship scheme sets PS_{r}.

    Each textual pattern (``"U-I-U"``) is instantiated once per relationship
    as an intra-relationship scheme, mirroring how the paper defines the
    predefined metapath scheme set under every relationship.
    """
    patterns = list(patterns)
    result: Dict[str, List[MetapathScheme]] = {}
    for relation in relationships:
        result[relation] = [
            MetapathScheme.parse(pattern, relation, abbreviations) for pattern in patterns
        ]
    return result
