"""Serialisation of multiplex heterogeneous graphs.

Format: a JSON header (schema + node types) plus a TSV edge section, all in
one file so a dataset is a single artifact:

    #HEADER {json}
    u \t v \t relationship
    ...
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import GraphSchema

_HEADER_PREFIX = "#HEADER "


def save_graph(graph: MultiplexHeteroGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` in the library's single-file format."""
    path = Path(path)
    header = {
        "node_types": list(graph.schema.node_types),
        "relationships": list(graph.schema.relationships),
        "node_type_codes": graph.node_type_codes.tolist(),
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(_HEADER_PREFIX + json.dumps(header) + "\n")
        for relation in graph.schema.relationships:
            src, dst = graph.edges(relation)
            for u, v in zip(src.tolist(), dst.tolist()):
                handle.write(f"{u}\t{v}\t{relation}\n")


def load_graph(path: Union[str, Path]) -> MultiplexHeteroGraph:
    """Read a graph previously written by :func:`save_graph`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first.startswith(_HEADER_PREFIX):
            raise GraphError(f"{path} does not start with a {_HEADER_PREFIX!r} line")
        header = json.loads(first[len(_HEADER_PREFIX):])
        schema = GraphSchema(header["node_types"], header["relationships"])
        codes = np.asarray(header["node_type_codes"], dtype=np.int64)
        edges: Dict[str, Tuple[List[int], List[int]]] = {
            rel: ([], []) for rel in schema.relationships
        }
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphError(f"{path}:{line_no}: expected 'u\\tv\\trelation'")
            u, v, relation = int(parts[0]), int(parts[1]), parts[2]
            if relation not in edges:
                raise GraphError(f"{path}:{line_no}: unknown relationship {relation!r}")
            edges[relation][0].append(u)
            edges[relation][1].append(v)
    arrays = {
        rel: (np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64))
        for rel, (src, dst) in edges.items()
    }
    return MultiplexHeteroGraph(schema, codes, arrays)
