"""The multiplex heterogeneous graph container.

Edges are stored per relationship in CSR (compressed sparse row) form so that
``neighbors(node, relation)`` is an O(1) slice — the operation every sampler
in this library is built on.  Graphs are undirected: an edge (u, v, r)
contributes v to u's adjacency and u to v's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, SchemaError
from repro.graph.schema import GraphSchema


class MultiplexHeteroGraph:
    """An immutable multiplex heterogeneous network G = (V, E, phi, psi).

    Use :class:`repro.graph.builder.GraphBuilder` to construct instances;
    the constructor here expects already-validated arrays.

    Parameters
    ----------
    schema:
        Node-type / relationship structure.
    node_type_codes:
        int array of shape (num_nodes,) mapping node id -> node-type index.
    edges_by_relationship:
        Mapping relationship name -> (src, dst) int arrays of equal length.
        Each pair is stored once; adjacency is symmetrised internally.
    """

    def __init__(
        self,
        schema: GraphSchema,
        node_type_codes: np.ndarray,
        edges_by_relationship: Dict[str, Tuple[np.ndarray, np.ndarray]],
    ):
        self.schema = schema
        self._type_codes = np.asarray(node_type_codes, dtype=np.int64)
        if self._type_codes.ndim != 1:
            raise GraphError("node_type_codes must be 1-dimensional")
        num_nodes = len(self._type_codes)
        if num_nodes == 0:
            raise GraphError("graph must contain at least one node")
        if self._type_codes.min(initial=0) < 0 or (
            num_nodes and self._type_codes.max(initial=0) >= schema.num_node_types
        ):
            raise GraphError("node type code out of range for schema")

        self._edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._indptr: Dict[str, np.ndarray] = {}
        self._indices: Dict[str, np.ndarray] = {}
        self._edge_sets: Dict[str, set] = {}

        unknown = set(edges_by_relationship) - set(schema.relationships)
        if unknown:
            raise SchemaError(f"edges reference unknown relationships: {sorted(unknown)}")

        for relation in schema.relationships:
            src, dst = edges_by_relationship.get(relation, (np.empty(0, np.int64),) * 2)
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            if src.shape != dst.shape or src.ndim != 1:
                raise GraphError(f"edge arrays for {relation!r} must be equal-length 1-d")
            if len(src) and (
                src.min() < 0 or dst.min() < 0
                or src.max() >= num_nodes or dst.max() >= num_nodes
            ):
                raise GraphError(f"edge endpoint out of range for relationship {relation!r}")
            if np.any(src == dst):
                raise GraphError(f"self-loops are not allowed (relationship {relation!r})")
            self._edges[relation] = (src, dst)
            indptr, indices = self._build_csr(num_nodes, src, dst)
            self._indptr[relation] = indptr
            self._indices[relation] = indices
            low = np.minimum(src, dst)
            high = np.maximum(src, dst)
            self._edge_sets[relation] = set((low * num_nodes + high).tolist())

        # Node ids grouped by type, for typed negative/context sampling.
        self._nodes_by_type: Dict[str, np.ndarray] = {
            name: np.flatnonzero(self._type_codes == code)
            for code, name in enumerate(schema.node_types)
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _build_csr(num_nodes: int, src: np.ndarray, dst: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetrised CSR adjacency from an undirected edge list."""
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        order = np.argsort(all_src, kind="stable")
        sorted_src = all_src[order]
        sorted_dst = all_dst[order]
        counts = np.bincount(sorted_src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, sorted_dst

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._type_codes)

    @property
    def num_edges(self) -> int:
        """Total number of (undirected) edges across all relationships."""
        return sum(len(src) for src, _ in self._edges.values())

    def num_edges_in(self, relation: str) -> int:
        self.schema.relationship_index(relation)
        return len(self._edges[relation][0])

    @property
    def node_type_codes(self) -> np.ndarray:
        """int array: node id -> node-type index (read-only view)."""
        view = self._type_codes.view()
        view.flags.writeable = False
        return view

    def node_type(self, node: int) -> str:
        """phi(v): the node-type name of ``node``."""
        return self.schema.node_types[int(self._type_codes[node])]

    def nodes_of_type(self, node_type: str) -> np.ndarray:
        """kappa^-1: all node ids with the given type."""
        try:
            return self._nodes_by_type[node_type]
        except KeyError:
            raise SchemaError(f"unknown node type {node_type!r}") from None

    def edges(self, relation: str) -> Tuple[np.ndarray, np.ndarray]:
        """The (src, dst) arrays of ``relation`` as stored (one direction)."""
        self.schema.relationship_index(relation)
        return self._edges[relation]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node: int, relation: str) -> np.ndarray:
        """N_r(v): neighbor ids of ``node`` under ``relation`` (O(1) slice)."""
        indptr = self._indptr[relation]
        return self._indices[relation][indptr[node]: indptr[node + 1]]

    def degree(self, node: int, relation: Optional[str] = None) -> int:
        """Degree of ``node`` under one relationship, or summed over all."""
        if relation is not None:
            indptr = self._indptr[relation]
            return int(indptr[node + 1] - indptr[node])
        return sum(self.degree(node, rel) for rel in self.schema.relationships)

    def degrees(self, relation: Optional[str] = None) -> np.ndarray:
        """Vector of degrees for every node."""
        if relation is not None:
            indptr = self._indptr[relation]
            return np.diff(indptr)
        total = np.zeros(self.num_nodes, dtype=np.int64)
        for rel in self.schema.relationships:
            total += np.diff(self._indptr[rel])
        return total

    def active_relationships(self, node: int) -> List[str]:
        """Relationships under which ``node`` has at least one neighbor."""
        return [rel for rel in self.schema.relationships if self.degree(node, rel) > 0]

    def has_edge(self, u: int, v: int, relation: str) -> bool:
        """True if (u, v) is connected under ``relation`` (order-insensitive)."""
        if u == v:
            return False
        low, high = (u, v) if u < v else (v, u)
        return (low * self.num_nodes + high) in self._edge_sets[relation]

    def csr(self, relation: str) -> Tuple[np.ndarray, np.ndarray]:
        """Raw (indptr, indices) of the symmetrised adjacency of ``relation``."""
        self.schema.relationship_index(relation)
        return self._indptr[relation], self._indices[relation]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def relationship_subgraph(self, relations: Sequence[str]) -> "MultiplexHeteroGraph":
        """g_{r_i, r_j, ...}: keep only the listed relationships.

        The node set (and node ids) is unchanged, matching the paper's
        Table VI experiment where subgraphs grow one relationship at a time.
        """
        relations = list(relations)
        if not relations:
            raise GraphError("a relationship subgraph needs at least one relationship")
        for relation in relations:
            self.schema.relationship_index(relation)
        sub_schema = GraphSchema(self.schema.node_types, relations)
        sub_edges = {rel: self._edges[rel] for rel in relations}
        return MultiplexHeteroGraph(sub_schema, self._type_codes, sub_edges)

    def merged_relation_graph(self, relation_name: str = "all") -> "MultiplexHeteroGraph":
        """Collapse all relationships into a single one (node types kept).

        This is the *non-multiplex heterogeneous* view used by the HAN and
        MAGNN baselines, which model node-type heterogeneity but not edge
        multiplexity.
        """
        src, dst = self.merged_homogeneous_view()
        schema = GraphSchema(self.schema.node_types, (relation_name,))
        return MultiplexHeteroGraph(schema, self._type_codes, {relation_name: (src, dst)})

    def merged_homogeneous_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """All edges with types erased, as (src, dst) arrays.

        This is how the homogeneous baselines (DeepWalk, node2vec, LINE,
        GCN, GraphSage) see the graph per Sect. IV-B.
        """
        srcs = [self._edges[rel][0] for rel in self.schema.relationships]
        dsts = [self._edges[rel][1] for rel in self.schema.relationships]
        return np.concatenate(srcs), np.concatenate(dsts)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        per_rel = ", ".join(
            f"{rel}={self.num_edges_in(rel)}" for rel in self.schema.relationships
        )
        return (
            f"MultiplexHeteroGraph(|V|={self.num_nodes}, |E|={self.num_edges}, "
            f"|O|={self.schema.num_node_types}, |R|={self.schema.num_relationships}, "
            f"edges: {per_rel})"
        )
