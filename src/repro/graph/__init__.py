"""Multiplex heterogeneous graph substrate (Sect. II of the paper)."""

from repro.graph.schema import GraphSchema, MetapathScheme, intra_relationship_schemes
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.builder import GraphBuilder, graph_from_edge_arrays
from repro.graph.io import load_graph, save_graph
from repro.graph.statistics import GraphStatistics, compute_statistics, degree_clusters
from repro.graph.enumeration import (
    SchemeSuggestion,
    count_schemes_by_length,
    enumerate_schemes,
    observed_type_triples,
    suggest_schemes,
)

__all__ = [
    "GraphSchema",
    "MetapathScheme",
    "intra_relationship_schemes",
    "MultiplexHeteroGraph",
    "GraphBuilder",
    "graph_from_edge_arrays",
    "save_graph",
    "load_graph",
    "GraphStatistics",
    "compute_statistics",
    "degree_clusters",
    "enumerate_schemes",
    "count_schemes_by_length",
    "observed_type_triples",
    "suggest_schemes",
    "SchemeSuggestion",
]
