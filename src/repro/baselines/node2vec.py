"""node2vec (Grover & Leskovec, KDD 2016).

DeepWalk with second-order biased walks controlled by the return parameter
p and in-out parameter q.
"""

from __future__ import annotations

from repro.baselines.base import SingleEmbeddingModel
from repro.baselines.word2vec import SkipGramEmbeddings
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.sampling.context import context_pairs
from repro.sampling.negative import UnigramNegativeSampler
from repro.sampling.node2vec_walk import Node2VecWalker
from repro.utils.rng import SeedLike, spawn_rng


class Node2Vec(SingleEmbeddingModel):
    """Biased-walk skip-gram embeddings on the homogenised graph."""

    name = "node2vec"

    def __init__(self, dim: int = 32, num_walks: int = 6, walk_length: int = 10,
                 window: int = 3, epochs: int = 2, num_negatives: int = 5,
                 p: float = 2.0, q: float = 0.5, learning_rate: float = 0.2,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.num_negatives = num_negatives
        self.p = p
        self.q = q
        self.learning_rate = learning_rate

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        walker = Node2VecWalker(graph, p=self.p, q=self.q, rng=spawn_rng(self._rng))
        walks = walker.walks(self.num_walks, self.walk_length)
        pairs = context_pairs(walks, self.window)
        sampler = UnigramNegativeSampler(graph, rng=spawn_rng(self._rng))
        model = SkipGramEmbeddings(
            graph.num_nodes, self.dim, learning_rate=self.learning_rate,
            num_negatives=self.num_negatives, rng=spawn_rng(self._rng),
        )
        model.train(pairs, sampler, epochs=self.epochs)
        self._embeddings = model.w_in
