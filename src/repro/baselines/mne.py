"""MNE (Zhang et al., IJCAI 2018): scalable multiplex network embedding.

The approach the paper's Fig. 1(b) depicts and argues against: one *common*
base embedding per node shared across all relationships, plus a low-dimensional
relation-specific correction through a learned transform,

    e_{v,r} = b_v + w * X_r^T u_{v,r}

Unlike GATNE there is no neighbor aggregation and no attention — the
relation-specific part is a free embedding — so MNE captures multiplexity
but "fails to fully exploit heterogeneity since cross-subgraph information
and diversity of node types are ignored" (Sect. I).  Included beyond the
paper's nine baselines because it is the archetype the introduction
contrasts HybridGNN with.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import BaselineModel
from repro.core.config import TrainerConfig
from repro.core.trainer import SkipGramTrainer
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleDict
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class MNEModule(Module):
    """The trainable MNE network (trainer-protocol compatible)."""

    def __init__(self, graph: MultiplexHeteroGraph, base_dim: int = 32,
                 edge_dim: int = 4, num_negatives: int = 5,
                 eval_samples: int = 1, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.graph = graph
        self.relations = list(graph.schema.relationships)
        self.num_negatives = num_negatives
        num_nodes = graph.num_nodes
        self.base = Embedding(num_nodes, base_dim, rng=spawn_rng(rng))
        self.context = Embedding(num_nodes, base_dim, rng=spawn_rng(rng))
        self.edge_embeddings = ModuleDict(
            {
                rel: Embedding(num_nodes, edge_dim, rng=spawn_rng(rng))
                for rel in self.relations
            }
        )
        self.transforms = ModuleDict(
            {
                rel: Linear(edge_dim, base_dim, bias=False, rng=spawn_rng(rng))
                for rel in self.relations
            }
        )
        self._cache: Dict[str, np.ndarray] = {}

    def forward(self, nodes: np.ndarray, relation: str) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        correction = self.transforms[relation](self.edge_embeddings[relation](nodes))
        return self.base(nodes) + correction

    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        self._cache.clear()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if relation not in self._cache:
            all_nodes = np.arange(self.graph.num_nodes)
            self._cache[relation] = self.forward(all_nodes, relation).data
        return self._cache[relation][np.asarray(nodes, dtype=np.int64)]


class MNE(BaselineModel):
    """Baseline wrapper: common embedding + relation-specific correction."""

    name = "MNE"

    def __init__(self, base_dim: int = 32, edge_dim: int = 4,
                 trainer_config: Optional[TrainerConfig] = None,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.base_dim = base_dim
        self.edge_dim = edge_dim
        self.trainer_config = trainer_config or TrainerConfig()
        self._module: Optional[MNEModule] = None

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        self._module = MNEModule(
            split.train_graph, base_dim=self.base_dim, edge_dim=self.edge_dim,
            rng=spawn_rng(self._rng),
        )
        trainer = SkipGramTrainer(
            self._module, dataset.all_schemes(), split,
            config=self.trainer_config, rng=spawn_rng(self._rng),
        )
        trainer.fit()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._module is None:
            raise RuntimeError("MNE has not been fitted")
        return self._module.node_embeddings(nodes, relation)
