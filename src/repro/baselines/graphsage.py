"""GraphSage (Hamilton et al., NeurIPS 2017) on the type-erased graph.

Two layers of sampled mean aggregation over learnable input embeddings,
trained with the dot-product link-prediction objective on edge mini-batches.
Heterogeneity is ignored, matching the paper's protocol for this baseline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.baselines.base import SingleEmbeddingModel
from repro.core.hybrid_aggregation import aggregate_layers
from repro.core.loss import softplus
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.errors import TrainingError
from repro.nn.aggregators import make_aggregator
from repro.nn.layers import Embedding
from repro.nn.module import Module, ModuleList
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sampling.adjacency import sample_uniform_neighbors
from repro.sampling.random_walk import _merged_csr
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class _SageEncoder(Module):
    """Sampled two-layer mean aggregation over the merged adjacency."""

    def __init__(self, num_nodes: int, dim: int, fanouts: List[int],
                 indptr: np.ndarray, indices: np.ndarray, rng):
        super().__init__()
        rng = as_rng(rng)
        self.fanouts = fanouts
        self.features = Embedding(num_nodes, dim, rng=spawn_rng(rng))
        self.aggregators = ModuleList(
            [make_aggregator("mean", dim, dim, rng=spawn_rng(rng)) for _ in fanouts]
        )
        self._indptr = indptr
        self._indices = indices
        self._rng = spawn_rng(rng)

    def forward(self, nodes: np.ndarray) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        layers = [nodes]
        frontier = nodes
        for fanout in self.fanouts:
            sampled = sample_uniform_neighbors(
                self._indptr, self._indices, frontier.reshape(-1), fanout, self._rng
            )
            frontier = sampled.reshape(len(nodes), -1)
            layers.append(frontier)
        return aggregate_layers(layers, self.fanouts, self.features, self.aggregators)


class GraphSage(SingleEmbeddingModel):
    """Inductive sampled-aggregation embeddings (heterogeneity ignored)."""

    name = "GraphSage"

    def __init__(self, dim: int = 32, fanouts: List[int] = (5, 3), epochs: int = 5,
                 batch_size: int = 128, learning_rate: float = 0.02,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.fanouts = list(fanouts)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        src, dst = graph.merged_homogeneous_view()
        if len(src) == 0:
            raise TrainingError("GraphSage needs at least one training edge")
        indptr, indices = _merged_csr(graph)
        encoder = _SageEncoder(
            graph.num_nodes, self.dim, self.fanouts, indptr, indices,
            spawn_rng(self._rng),
        )
        optimizer = Adam(encoder.parameters(), lr=self.learning_rate)
        rng = self._rng

        for _ in range(self.epochs):
            order = rng.permutation(len(src))
            for start in range(0, len(src), self.batch_size):
                idx = order[start: start + self.batch_size]
                pos_u, pos_v = src[idx], dst[idx]
                neg_v = rng.integers(0, graph.num_nodes, size=len(idx))
                emb_u = encoder(pos_u)
                emb_v = encoder(pos_v)
                emb_n = encoder(neg_v)
                pos_logit = (emb_u * emb_v).sum(axis=-1)
                neg_logit = (emb_u * emb_n).sum(axis=-1)
                loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        # Materialise embeddings for evaluation.
        rows = []
        for start in range(0, graph.num_nodes, 1024):
            batch = np.arange(start, min(start + 1024, graph.num_nodes))
            rows.append(encoder(batch).data)
        self._embeddings = np.concatenate(rows, axis=0)
