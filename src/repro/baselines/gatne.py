"""GATNE-T (Cen et al., KDD 2019) for multiplex heterogeneous networks.

Each node has a shared base embedding b_i plus one edge embedding u_{i,r}
per relationship.  For the target relationship, the relationship's edge
embedding is aggregated from neighbors inside g_r, all relationships' edge
embeddings are fused with a softmax self-attention, and the output is

    e_{i,r} = b_i + alpha * M_r U_i a_{i,r}

Trained with the same metapath-walk skip-gram objective as HybridGNN (the
paper positions HybridGNN as a generalisation of GATNE, so sharing the
trainer keeps the comparison apples-to-apples).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.baselines.base import BaselineModel
from repro.core.config import TrainerConfig
from repro.core.trainer import SkipGramTrainer
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleDict, Parameter
from repro.nn.tensor import Tensor, stack
from repro.sampling.adjacency import sample_uniform_neighbors
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class GATNEModule(Module):
    """The trainable GATNE-T network (trainer protocol compatible)."""

    def __init__(self, graph: MultiplexHeteroGraph, base_dim: int = 32,
                 edge_dim: int = 8, attention_dim: int = 8, fanout: int = 5,
                 num_negatives: int = 5, eval_samples: int = 3,
                 rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.graph = graph
        self.relations = list(graph.schema.relationships)
        self.fanout = fanout
        self.num_negatives = num_negatives
        self.eval_samples = eval_samples
        num_nodes = graph.num_nodes

        self.base = Embedding(num_nodes, base_dim, rng=spawn_rng(rng))
        self.context = Embedding(num_nodes, base_dim, rng=spawn_rng(rng))
        # One edge-embedding table per relationship (u_{i, r}).
        self.edge_embeddings = ModuleDict(
            {
                rel: Embedding(num_nodes, edge_dim, rng=spawn_rng(rng))
                for rel in self.relations
            }
        )
        # Relation-specific attention parameters: a_r = softmax(w_r^T tanh(W_r U)).
        self.attn_w = {
            rel: Parameter(init.xavier_uniform((edge_dim, attention_dim), rng=spawn_rng(rng)))
            for rel in self.relations
        }
        self.attn_v = {
            rel: Parameter(init.xavier_uniform((attention_dim, 1), rng=spawn_rng(rng)))
            for rel in self.relations
        }
        self.transforms = ModuleDict(
            {
                rel: Linear(edge_dim, base_dim, bias=False, rng=spawn_rng(rng))
                for rel in self.relations
            }
        )
        self._csr = {rel: graph.csr(rel) for rel in self.relations}
        self._rng = spawn_rng(rng)
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _aggregated_edge_embedding(self, nodes: np.ndarray, relation: str) -> Tensor:
        """Mean of neighbors' u_{j,r} inside g_r (GATNE's aggregation)."""
        indptr, indices = self._csr[relation]
        neighbors = sample_uniform_neighbors(
            indptr, indices, nodes, self.fanout, self._rng
        )  # (B, fanout)
        neigh_emb = self.edge_embeddings[relation](neighbors)  # (B, f, d_e)
        return neigh_emb.mean(axis=1)

    def forward(self, nodes: np.ndarray, relation: str) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        per_relation = [
            self._aggregated_edge_embedding(nodes, rel) for rel in self.relations
        ]
        u = stack(per_relation, axis=1)  # (B, R, d_e)
        scores = (u @ self.attn_w[relation]).tanh() @ self.attn_v[relation]  # (B, R, 1)
        weights = scores.squeeze(-1).softmax(axis=-1)  # (B, R)
        fused = (u * weights.unsqueeze(-1)).sum(axis=1)  # (B, d_e)
        return self.base(nodes) + self.transforms[relation](fused)

    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        self._cache.clear()

    def node_embeddings(self, nodes: np.ndarray, relation: str,
                        chunk_size: int = 1024) -> np.ndarray:
        if relation not in self._cache:
            samples = []
            for _ in range(self.eval_samples):
                rows = []
                for start in range(0, self.graph.num_nodes, chunk_size):
                    batch = np.arange(
                        start, min(start + chunk_size, self.graph.num_nodes)
                    )
                    rows.append(self.forward(batch, relation).data)
                samples.append(np.concatenate(rows, axis=0))
            self._cache[relation] = np.mean(samples, axis=0)
        return self._cache[relation][np.asarray(nodes, dtype=np.int64)]


class GATNE(BaselineModel):
    """Baseline wrapper: builds, trains and serves a :class:`GATNEModule`."""

    name = "GATNE"

    def __init__(self, base_dim: int = 32, edge_dim: int = 8, fanout: int = 5,
                 trainer_config: Optional[TrainerConfig] = None,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.base_dim = base_dim
        self.edge_dim = edge_dim
        self.fanout = fanout
        self.trainer_config = trainer_config or TrainerConfig()
        self._module: Optional[GATNEModule] = None

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        self._module = GATNEModule(
            split.train_graph,
            base_dim=self.base_dim,
            edge_dim=self.edge_dim,
            fanout=self.fanout,
            rng=spawn_rng(self._rng),
        )
        trainer = SkipGramTrainer(
            self._module,
            dataset.all_schemes(),
            split,
            config=self.trainer_config,
            rng=spawn_rng(self._rng),
        )
        trainer.fit()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._module is None:
            raise RuntimeError("GATNE has not been fitted")
        return self._module.node_embeddings(nodes, relation)
