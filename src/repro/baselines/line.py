"""LINE (Tang et al., WWW 2015): first- plus second-order proximity.

First-order proximity trains symmetric embeddings so connected nodes score
highly; second-order proximity trains a context table so nodes with similar
neighborhoods embed closely.  As in the original, half the dimensions come
from each objective and the final embedding is their concatenation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SingleEmbeddingModel
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.errors import TrainingError
from repro.sampling.negative import UnigramNegativeSampler
from repro.utils.rng import SeedLike, spawn_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * x))


class LINE(SingleEmbeddingModel):
    """LINE(1st+2nd) on the homogenised graph."""

    name = "LINE"

    def __init__(self, dim: int = 32, epochs: int = 8, batch_size: int = 256,
                 num_negatives: int = 5, learning_rate: float = 0.2,
                 rng: SeedLike = None):
        super().__init__(rng)
        if dim % 2 != 0:
            raise TrainingError("LINE needs an even dim (half per proximity order)")
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self.learning_rate = learning_rate

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        src, dst = graph.merged_homogeneous_view()
        # Undirected edges: train both directions.
        edges = np.stack(
            [np.concatenate([src, dst]), np.concatenate([dst, src])], axis=1
        )
        if len(edges) == 0:
            raise TrainingError("LINE needs at least one training edge")
        half = self.dim // 2
        rng = self._rng
        scale = 0.5 / half
        first = rng.uniform(-scale, scale, size=(graph.num_nodes, half))
        second = rng.uniform(-scale, scale, size=(graph.num_nodes, half))
        context = np.zeros((graph.num_nodes, half))
        sampler = UnigramNegativeSampler(graph, rng=spawn_rng(rng))

        total_steps = max(1, self.epochs * ((len(edges) + self.batch_size - 1) // self.batch_size))
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(edges))
            for start in range(0, len(edges), self.batch_size):
                batch = edges[order[start: start + self.batch_size]]
                lr = self.learning_rate * max(1e-2, 1.0 - step / total_steps)
                step += 1
                u, v = batch[:, 0], batch[:, 1]
                negatives = sampler.sample_like(v, self.num_negatives)

                # First order: sigma(f_u . f_v), negatives against f tables.
                self._update(first, first, u, v, negatives, lr)
                # Second order: sigma(s_u . c_v), negatives against context.
                self._update(second, context, u, v, negatives, lr)

        self._embeddings = np.concatenate([first, second + 0.0], axis=1)

    @staticmethod
    def _update(table_u: np.ndarray, table_v: np.ndarray, u: np.ndarray,
                v: np.ndarray, negatives: np.ndarray, lr: float) -> None:
        vu = table_u[u]
        vv = table_v[v]
        vneg = table_v[negatives]
        pos_sig = _sigmoid(np.einsum("bd,bd->b", vu, vv))
        neg_sig = _sigmoid(np.einsum("bnd,bd->bn", vneg, vu))
        g_pos = (pos_sig - 1.0)[:, None]
        grad_u = g_pos * vv + np.einsum("bnd,bn->bd", vneg, neg_sig)
        grad_v = g_pos * vu
        grad_neg = neg_sig[:, :, None] * vu[:, None, :]
        dim = table_u.shape[1]
        np.add.at(table_u, u, -lr * grad_u)
        np.add.at(table_v, v, -lr * grad_v)
        np.add.at(table_v, negatives.reshape(-1), -lr * grad_neg.reshape(-1, dim))
