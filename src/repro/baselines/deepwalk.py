"""DeepWalk (Perozzi et al., KDD 2014).

Uniform random walks over the type-erased graph feed a skip-gram model.
Node and edge types are ignored during training and evaluation, exactly as
the paper applies this baseline (Sect. IV-B).
"""

from __future__ import annotations

from repro.baselines.base import SingleEmbeddingModel
from repro.baselines.word2vec import SkipGramEmbeddings
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.sampling.context import context_pairs
from repro.sampling.negative import UnigramNegativeSampler
from repro.sampling.random_walk import UniformRandomWalker
from repro.utils.rng import SeedLike, spawn_rng


class DeepWalk(SingleEmbeddingModel):
    """Random-walk skip-gram embeddings on the homogenised graph."""

    name = "DeepWalk"

    def __init__(self, dim: int = 32, num_walks: int = 6, walk_length: int = 10,
                 window: int = 3, epochs: int = 2, num_negatives: int = 5,
                 learning_rate: float = 0.2, rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.epochs = epochs
        self.num_negatives = num_negatives
        self.learning_rate = learning_rate

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        walker = UniformRandomWalker(graph, rng=spawn_rng(self._rng))
        walks = walker.walks(self.num_walks, self.walk_length)
        pairs = context_pairs(walks, self.window)
        sampler = UnigramNegativeSampler(graph, rng=spawn_rng(self._rng))
        # DeepWalk ignores node types: draw negatives globally by overriding
        # the per-type restriction.
        model = SkipGramEmbeddings(
            graph.num_nodes, self.dim, learning_rate=self.learning_rate,
            num_negatives=self.num_negatives, rng=spawn_rng(self._rng),
        )
        model.train(pairs, sampler, epochs=self.epochs)
        self._embeddings = model.w_in
