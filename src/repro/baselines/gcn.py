"""GCN (Kipf & Welling, ICLR 2017) on the type-erased graph.

Two spectral convolution layers over the symmetrically normalised adjacency
A_hat = D^{-1/2}(A + I)D^{-1/2} with learnable input embeddings (the graphs
carry no node features), trained as a link-prediction autoencoder:
dot-product decoder with binary cross-entropy on training edges against
corrupted negatives.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.baselines.base import SingleEmbeddingModel
from repro.core.loss import softplus
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.errors import TrainingError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, sparse_matmul
from repro.utils.rng import SeedLike, spawn_rng


def normalized_adjacency(src: np.ndarray, dst: np.ndarray, num_nodes: int) -> sparse.csr_matrix:
    """D^{-1/2} (A + I) D^{-1/2} for an undirected edge list."""
    rows = np.concatenate([src, dst, np.arange(num_nodes)])
    cols = np.concatenate([dst, src, np.arange(num_nodes)])
    data = np.ones(len(rows))
    adj = sparse.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
    adj.data = np.ones_like(adj.data)  # collapse parallel edges
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1.0))
    d_mat = sparse.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


class _GCNEncoder(Module):
    """features -> A_hat relu(A_hat X W1) W2."""

    def __init__(self, num_nodes: int, dim: int, hidden: int, rng):
        super().__init__()
        self.x = Parameter(init.normal((num_nodes, hidden), std=0.1, rng=rng))
        self.w1 = Parameter(init.xavier_uniform((hidden, hidden), rng=rng))
        self.w2 = Parameter(init.xavier_uniform((hidden, dim), rng=rng))

    def forward(self, adjacency) -> Tensor:
        h = sparse_matmul(adjacency, self.x @ self.w1).relu()
        return sparse_matmul(adjacency, h @ self.w2)


class GCN(SingleEmbeddingModel):
    """Link-prediction GCN autoencoder (heterogeneity ignored)."""

    name = "GCN"

    def __init__(self, dim: int = 32, hidden: int = 32, epochs: int = 40,
                 learning_rate: float = 0.01, edges_per_epoch: int = 4096,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.edges_per_epoch = edges_per_epoch

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        src, dst = graph.merged_homogeneous_view()
        if len(src) == 0:
            raise TrainingError("GCN needs at least one training edge")
        adjacency = normalized_adjacency(src, dst, graph.num_nodes)
        encoder = _GCNEncoder(
            graph.num_nodes, self.dim, self.hidden, spawn_rng(self._rng)
        )
        optimizer = Adam(encoder.parameters(), lr=self.learning_rate)
        rng = self._rng

        for _ in range(self.epochs):
            take = min(self.edges_per_epoch, len(src))
            idx = rng.choice(len(src), size=take, replace=False)
            pos_u, pos_v = src[idx], dst[idx]
            neg_u = pos_u
            neg_v = rng.integers(0, graph.num_nodes, size=take)

            embeddings = encoder(adjacency)
            pos_logit = (embeddings[pos_u] * embeddings[pos_v]).sum(axis=-1)
            neg_logit = (embeddings[neg_u] * embeddings[neg_v]).sum(axis=-1)
            loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        self._embeddings = encoder(adjacency).data
