"""Shared baseline interface.

Every baseline (and HybridGNN itself) exposes
``node_embeddings(nodes, relation) -> np.ndarray`` so one evaluator compares
all models.  Baselines additionally implement ``fit(dataset, split)``; the
experiment runner only ever touches these two methods.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.utils.rng import SeedLike, as_rng


class BaselineModel(abc.ABC):
    """Interface every baseline implements."""

    #: Human-readable model name used in experiment tables.
    name: str = "baseline"

    def __init__(self, rng: SeedLike = None):
        self._rng = as_rng(rng)

    @abc.abstractmethod
    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        """Train on ``split.train_graph`` (``dataset`` supplies schemes)."""

    @abc.abstractmethod
    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        """Relationship-specific (or shared) node embeddings."""


class SingleEmbeddingModel(BaselineModel):
    """Base for models with one embedding per node, shared across relations.

    Covers the network-embedding and homogeneous/heterogeneous (non-multiplex)
    baselines: DeepWalk, node2vec, LINE, GCN, GraphSage, HAN, MAGNN.
    """

    def __init__(self, rng: SeedLike = None):
        super().__init__(rng)
        self._embeddings: Optional[np.ndarray] = None

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._embeddings is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        return self._embeddings[np.asarray(nodes, dtype=np.int64)]
