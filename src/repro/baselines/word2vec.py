"""Vectorised skip-gram with negative sampling (the word2vec trainer).

The shallow network-embedding baselines (DeepWalk, node2vec) are a random
walk generator plus exactly this optimisation.  Updates are computed for a
whole mini-batch with numpy and scattered into the tables with
``np.add.at`` — no autograd needed, which keeps these baselines fast.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import TrainingError
from repro.sampling.negative import UnigramNegativeSampler
from repro.utils.rng import SeedLike, as_rng


class SkipGramEmbeddings:
    """Input/output embedding tables trained by SGD on (center, context) pairs."""

    def __init__(self, num_nodes: int, dim: int, learning_rate: float = 0.2,
                 num_negatives: int = 5, rng: SeedLike = None):
        if dim <= 0 or num_nodes <= 0:
            raise TrainingError("num_nodes and dim must be positive")
        self._rng = as_rng(rng)
        self.dim = dim
        self.learning_rate = learning_rate
        self.num_negatives = num_negatives
        scale = 0.5 / dim
        self.w_in = self._rng.uniform(-scale, scale, size=(num_nodes, dim))
        self.w_out = np.zeros((num_nodes, dim))

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh(0.5 * x))

    def train_batch(self, centers: np.ndarray, contexts: np.ndarray,
                    negatives: np.ndarray, lr: float) -> float:
        """One SGD step over a batch; returns the mean loss."""
        v = self.w_in[centers]                      # (B, d)
        u_pos = self.w_out[contexts]                # (B, d)
        u_neg = self.w_out[negatives]               # (B, n, d)

        pos_logit = np.einsum("bd,bd->b", v, u_pos)
        neg_logit = np.einsum("bnd,bd->bn", u_neg, v)
        pos_sig = self._sigmoid(pos_logit)
        neg_sig = self._sigmoid(neg_logit)

        # Gradients of -log sigma(pos) - sum log sigma(-neg).
        g_pos = (pos_sig - 1.0)[:, None]            # (B, 1)
        g_neg = neg_sig[:, :, None]                 # (B, n, 1)

        grad_v = g_pos * u_pos + np.einsum("bnd,bn->bd", u_neg, neg_sig)
        grad_u_pos = g_pos * v
        grad_u_neg = g_neg * v[:, None, :]

        np.add.at(self.w_in, centers, -lr * grad_v)
        np.add.at(self.w_out, contexts, -lr * grad_u_pos)
        np.add.at(
            self.w_out, negatives.reshape(-1), -lr * grad_u_neg.reshape(-1, self.dim)
        )

        eps = 1e-10
        loss = -np.log(pos_sig + eps).mean() - np.log(1.0 - neg_sig + eps).sum(axis=1).mean()
        return float(loss)

    def train(self, pairs: np.ndarray, negative_sampler: UnigramNegativeSampler,
              epochs: int = 2, batch_size: int = 256) -> List[float]:
        """SGD over shuffled ``pairs`` with a linearly decayed learning rate."""
        if len(pairs) == 0:
            raise TrainingError("no training pairs")
        losses: List[float] = []
        total_steps = max(1, epochs * ((len(pairs) + batch_size - 1) // batch_size))
        step = 0
        for _ in range(epochs):
            order = self._rng.permutation(len(pairs))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(pairs), batch_size):
                batch = pairs[order[start: start + batch_size]]
                lr = self.learning_rate * max(1e-2, 1.0 - step / total_steps)
                negatives = negative_sampler.sample_like(batch[:, 1], self.num_negatives)
                epoch_loss += self.train_batch(batch[:, 0], batch[:, 1], negatives, lr)
                batches += 1
                step += 1
            losses.append(epoch_loss / max(1, batches))
        return losses
