"""The nine baselines of Sect. IV-B, implemented from scratch.

Network embedding: DeepWalk, node2vec, LINE.
Homogeneous GNNs: GCN, GraphSage.
Heterogeneous GNNs: HAN, MAGNN.
Multiplex heterogeneous GNNs: R-GCN, GATNE.
"""

from repro.baselines.base import BaselineModel, SingleEmbeddingModel
from repro.baselines.word2vec import SkipGramEmbeddings
from repro.baselines.deepwalk import DeepWalk
from repro.baselines.node2vec import Node2Vec
from repro.baselines.line import LINE
from repro.baselines.gcn import GCN, normalized_adjacency
from repro.baselines.graphsage import GraphSage
from repro.baselines.han import HAN, HANModule
from repro.baselines.magnn import MAGNN, MAGNNModule
from repro.baselines.rgcn import RGCN, row_normalized_adjacency
from repro.baselines.gatne import GATNE, GATNEModule
from repro.baselines.mne import MNE, MNEModule

__all__ = [
    "BaselineModel",
    "SingleEmbeddingModel",
    "SkipGramEmbeddings",
    "DeepWalk",
    "Node2Vec",
    "LINE",
    "GCN",
    "normalized_adjacency",
    "GraphSage",
    "HAN",
    "HANModule",
    "MAGNN",
    "MAGNNModule",
    "RGCN",
    "row_normalized_adjacency",
    "GATNE",
    "GATNEModule",
    "MNE",
    "MNEModule",
]
