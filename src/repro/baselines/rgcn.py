"""R-GCN (Schlichtkrull et al., ESWC 2018).

Relational graph convolution:

    h^{(l+1)}_i = relu( sum_r (1/c_{i,r}) sum_{j in N_i^r} h_j W_r + h_i W_0 )

implemented full-batch with one row-normalised sparse adjacency per
relationship, followed by a DistMult-style decoder.  The relation diagonal
is kept positive (softplus-parameterised) so the score factorises as a dot
product of relation-scaled embeddings — which is exactly what
``node_embeddings`` returns, keeping the shared evaluator protocol.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
from scipy import sparse

from repro.baselines.base import BaselineModel
from repro.core.loss import softplus
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.errors import TrainingError
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, sparse_matmul
from repro.utils.rng import SeedLike, spawn_rng


def row_normalized_adjacency(src: np.ndarray, dst: np.ndarray,
                             num_nodes: int) -> sparse.csr_matrix:
    """(1/c_{i,r}) A_r: mean aggregation over each relation's neighbors."""
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    data = np.ones(len(rows))
    adj = sparse.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv = 1.0 / np.maximum(degrees, 1.0)
    return (sparse.diags(inv) @ adj).tocsr()


class _RGCNEncoder(Module):
    """Two relational convolution layers over learnable input embeddings."""

    def __init__(self, num_nodes: int, relations: List[str], dim: int, rng):
        super().__init__()
        self.relations = relations
        self.x = Parameter(init.normal((num_nodes, dim), std=0.1, rng=rng))
        self.w_rel_1 = {
            rel: Parameter(init.xavier_uniform((dim, dim), rng=rng))
            for rel in relations
        }
        self.w_self_1 = Parameter(init.xavier_uniform((dim, dim), rng=rng))
        self.w_rel_2 = {
            rel: Parameter(init.xavier_uniform((dim, dim), rng=rng))
            for rel in relations
        }
        self.w_self_2 = Parameter(init.xavier_uniform((dim, dim), rng=rng))

    def _layer(self, h: Tensor, adjacencies, w_rel, w_self) -> Tensor:
        out = h @ w_self
        for rel in self.relations:
            out = out + sparse_matmul(adjacencies[rel], h @ w_rel[rel])
        return out.relu()

    def forward(self, adjacencies: Dict[str, sparse.csr_matrix]) -> Tensor:
        h = self._layer(self.x, adjacencies, self.w_rel_1, self.w_self_1)
        return self._layer(h, adjacencies, self.w_rel_2, self.w_self_2)


class RGCN(BaselineModel):
    """Relational GCN with a positive-DistMult link decoder."""

    name = "R-GCN"

    def __init__(self, dim: int = 32, epochs: int = 40, learning_rate: float = 0.01,
                 edges_per_epoch: int = 2048, rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.edges_per_epoch = edges_per_epoch
        self._embeddings: np.ndarray = None
        self._relation_scale: Dict[str, np.ndarray] = {}

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        graph = split.train_graph
        relations = list(graph.schema.relationships)
        adjacencies = {}
        for rel in relations:
            src, dst = graph.edges(rel)
            adjacencies[rel] = row_normalized_adjacency(src, dst, graph.num_nodes)

        encoder = _RGCNEncoder(graph.num_nodes, relations, self.dim, spawn_rng(self._rng))
        # DistMult diagonal (pre-softplus) per relation.
        rel_diag = {
            rel: Parameter(np.zeros(self.dim)) for rel in relations
        }
        params = encoder.parameters() + list(rel_diag.values())
        optimizer = Adam(params, lr=self.learning_rate)
        rng = self._rng
        edge_lists = {rel: graph.edges(rel) for rel in relations}
        active = [rel for rel in relations if len(edge_lists[rel][0]) > 0]
        if not active:
            raise TrainingError("R-GCN needs at least one training edge")

        for _ in range(self.epochs):
            embeddings = encoder(adjacencies)
            loss = None
            for rel in active:
                src, dst = edge_lists[rel]
                take = min(self.edges_per_epoch // len(active) + 1, len(src))
                idx = rng.choice(len(src), size=take, replace=False)
                pos_u, pos_v = src[idx], dst[idx]
                neg_v = rng.integers(0, graph.num_nodes, size=take)
                scale = softplus(rel_diag[rel])
                pos_logit = (embeddings[pos_u] * embeddings[pos_v] * scale).sum(axis=-1)
                neg_logit = (embeddings[pos_u] * embeddings[neg_v] * scale).sum(axis=-1)
                rel_loss = softplus(-pos_logit).mean() + softplus(neg_logit).mean()
                loss = rel_loss if loss is None else loss + rel_loss
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        self._embeddings = encoder(adjacencies).data
        self._relation_scale = {
            rel: np.sqrt(softplus(rel_diag[rel]).data) for rel in relations
        }

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._embeddings is None:
            raise RuntimeError("R-GCN has not been fitted")
        base = self._embeddings[np.asarray(nodes, dtype=np.int64)]
        scale = self._relation_scale.get(relation)
        if scale is None:
            return base
        return base * scale
