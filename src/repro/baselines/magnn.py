"""MAGNN (Fu et al., WWW 2020): metapath-instance aggregation.

For every metapath scheme, MAGNN encodes sampled metapath *instances*
(whole paths, including intermediate nodes — its improvement over HAN),
attends over the instances (intra-metapath attention) and then over the
schemes (inter-metapath attention).  Like HAN it is non-multiplex, so it
runs on the merged-relationship view and yields one embedding per node.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineModel
from repro.baselines.han import MERGED_RELATION, _SemanticAttention
from repro.core.config import TrainerConfig
from repro.core.trainer import SkipGramTrainer
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor, concat
from repro.sampling.adjacency import TypedAdjacencyCache, sample_uniform_neighbors
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class _InstanceSampler:
    """Samples whole metapath instances (paths) for batches of start nodes.

    Returns an int array of shape (B, m, K+1): m instances per node, each a
    node sequence following the scheme.  A hop with no valid neighbor
    repeats the current node, preserving shapes.
    """

    def __init__(self, graph: MultiplexHeteroGraph, scheme: MetapathScheme,
                 num_instances: int, rng, adjacency: TypedAdjacencyCache):
        self.graph = graph
        self.scheme = scheme
        self.num_instances = num_instances
        self._rng = rng
        self._adjacency = adjacency

    def sample(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        batch = len(nodes)
        m = self.num_instances
        paths = np.empty((batch, m, len(self.scheme) + 1), dtype=np.int64)
        paths[:, :, 0] = nodes[:, None]
        current = np.repeat(nodes, m)
        for hop in range(len(self.scheme)):
            relation = self.scheme.relations[hop]
            target_type = self.scheme.node_types[hop + 1]
            indptr, indices = self._adjacency.view(relation, target_type)
            sampled = sample_uniform_neighbors(indptr, indices, current, 1, self._rng)
            current = sampled[:, 0]
            paths[:, :, hop + 1] = current.reshape(batch, m)
        return paths


class _IntraMetapathAttention(Module):
    """Attention of the target node over its encoded metapath instances."""

    def __init__(self, dim: int, rng):
        super().__init__()
        rng = as_rng(rng)
        self.encode = Linear(dim, dim, bias=False, rng=spawn_rng(rng))
        self.attn_self = Parameter(init.xavier_uniform((dim, 1), rng=spawn_rng(rng)))
        self.attn_inst = Parameter(init.xavier_uniform((dim, 1), rng=spawn_rng(rng)))

    def forward(self, self_feats: Tensor, instance_feats: Tensor) -> Tensor:
        """(B, d), (B, m, d) -> (B, d)."""
        h_self = self.encode(self_feats)
        h_inst = self.encode(instance_feats)
        logits = (
            (h_inst @ self.attn_inst).squeeze(-1) + h_self @ self.attn_self
        ).leaky_relu(0.2)
        weights = logits.softmax(axis=-1)
        return (h_inst * weights.unsqueeze(-1)).sum(axis=1).relu()


class MAGNNModule(Module):
    """Trainable MAGNN network on the merged-relationship graph."""

    def __init__(self, graph: MultiplexHeteroGraph,
                 schemes: List[MetapathScheme], dim: int = 32,
                 num_instances: int = 6, num_negatives: int = 5,
                 rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.graph = graph
        self.schemes = schemes
        self.num_negatives = num_negatives
        self.features = Embedding(graph.num_nodes, dim, rng=spawn_rng(rng))
        self.context = Embedding(graph.num_nodes, dim, rng=spawn_rng(rng))
        adjacency = TypedAdjacencyCache(graph)
        self._samplers = [
            _InstanceSampler(graph, scheme, num_instances, spawn_rng(rng), adjacency)
            for scheme in schemes
        ]
        self.intra_attention = ModuleList(
            [_IntraMetapathAttention(dim, spawn_rng(rng)) for _ in schemes]
        )
        self.inter_attention = _SemanticAttention(dim, dim, spawn_rng(rng))
        self.self_loop = Linear(dim, dim, bias=False, rng=spawn_rng(rng))
        self._cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _scheme_embedding(self, nodes: np.ndarray, index: int) -> Tensor:
        paths = self._samplers[index].sample(nodes)  # (B, m, K+1)
        feats = self.features(paths)  # (B, m, K+1, d)
        # Mean metapath-instance encoder (MAGNN Sect. 4.2, "mean" variant).
        instance_feats = feats.mean(axis=2)  # (B, m, d)
        return self.intra_attention[index](self.features(nodes), instance_feats)

    def forward(self, nodes: np.ndarray, relation: str = MERGED_RELATION) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        codes = self.graph.node_type_codes[nodes]
        type_names = self.graph.schema.node_types
        pieces: List[Tensor] = []
        positions: List[np.ndarray] = []
        for code in np.unique(codes):
            node_type = type_names[int(code)]
            idx = np.flatnonzero(codes == code)
            group = nodes[idx]
            applicable = [
                i for i, scheme in enumerate(self.schemes)
                if scheme.start_type == node_type
            ]
            if applicable:
                per_scheme = [self._scheme_embedding(group, i) for i in applicable]
                fused = (
                    per_scheme[0]
                    if len(per_scheme) == 1
                    else self.inter_attention(per_scheme)
                )
            else:
                fused = self.self_loop(self.features(group)).relu()
            pieces.append(fused)
            positions.append(idx)
        if len(pieces) == 1:
            return pieces[0]
        combined = concat(pieces, axis=0)
        order = np.concatenate(positions)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        return combined[inverse]

    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        self._cache = None

    def node_embeddings(self, nodes: np.ndarray, relation: str,
                        chunk_size: int = 1024) -> np.ndarray:
        if self._cache is None:
            rows = []
            for start in range(0, self.graph.num_nodes, chunk_size):
                batch = np.arange(start, min(start + chunk_size, self.graph.num_nodes))
                rows.append(self.forward(batch).data)
            self._cache = np.concatenate(rows, axis=0)
        return self._cache[np.asarray(nodes, dtype=np.int64)]


class MAGNN(BaselineModel):
    """Baseline wrapper: merged-graph MAGNN trained with skip-gram walks."""

    name = "MAGNN"

    def __init__(self, dim: int = 32, num_instances: int = 6,
                 trainer_config: Optional[TrainerConfig] = None,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.num_instances = num_instances
        self.trainer_config = trainer_config or TrainerConfig()
        self._module: Optional[MAGNNModule] = None

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        merged = split.train_graph.merged_relation_graph(MERGED_RELATION)
        schemes = [
            MetapathScheme.parse(pattern, MERGED_RELATION, dataset.abbreviations)
            for pattern in dataset.metapath_patterns
        ]
        self._module = MAGNNModule(
            merged, schemes, dim=self.dim, num_instances=self.num_instances,
            rng=spawn_rng(self._rng),
        )
        merged_split = EdgeSplit(train_graph=merged, val=split.val, test=split.test)
        trainer = SkipGramTrainer(
            self._module,
            {MERGED_RELATION: schemes},
            merged_split,
            config=self.trainer_config,
            rng=spawn_rng(self._rng),
        )
        trainer.fit()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._module is None:
            raise RuntimeError("MAGNN has not been fitted")
        return self._module.node_embeddings(nodes, relation)
