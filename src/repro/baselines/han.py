"""HAN (Wang et al., WWW 2019): hierarchical attention over metapaths.

Node-level attention (GAT-style) aggregates each metapath's sampled
neighbors; semantic-level attention fuses the per-metapath embeddings.
HAN ignores multiplexity, so it runs on the merged-relationship view of the
graph and produces one embedding per node; per the paper's protocol, its
reported number is the best over the dataset's metapath candidates — here
all candidates participate through semantic attention, which upper-bounds a
single-path choice in expectation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineModel
from repro.core.config import TrainerConfig
from repro.core.trainer import SkipGramTrainer
from repro.datasets.splits import EdgeSplit
from repro.datasets.zoo import Dataset
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.nn import init
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor, concat, stack
from repro.sampling.adjacency import TypedAdjacencyCache
from repro.sampling.neighbor_sampler import MetapathNeighborSampler
from repro.utils.rng import SeedLike, as_rng, spawn_rng

MERGED_RELATION = "all"


class _NodeLevelAttention(Module):
    """GAT-style attention of a target node over its metapath neighbors."""

    def __init__(self, dim: int, rng):
        super().__init__()
        rng = as_rng(rng)
        self.project = Linear(dim, dim, bias=False, rng=spawn_rng(rng))
        self.attn_self = Parameter(init.xavier_uniform((dim, 1), rng=spawn_rng(rng)))
        self.attn_neigh = Parameter(init.xavier_uniform((dim, 1), rng=spawn_rng(rng)))

    def forward(self, self_feats: Tensor, neighbor_feats: Tensor) -> Tensor:
        """(B, d), (B, n, d) -> (B, d)."""
        h_self = self.project(self_feats)          # (B, d)
        h_neigh = self.project(neighbor_feats)     # (B, n, d)
        score_self = h_self @ self.attn_self       # (B, 1)
        score_neigh = (h_neigh @ self.attn_neigh).squeeze(-1)  # (B, n)
        logits = (score_neigh + score_self).leaky_relu(0.2)
        weights = logits.softmax(axis=-1)          # (B, n)
        return (h_neigh * weights.unsqueeze(-1)).sum(axis=1).relu()


class _SemanticAttention(Module):
    """HAN's semantic-level attention over per-metapath embeddings."""

    def __init__(self, dim: int, hidden: int, rng):
        super().__init__()
        rng = as_rng(rng)
        self.project = Linear(dim, hidden, rng=spawn_rng(rng))
        self.query = Parameter(init.xavier_uniform((hidden, 1), rng=spawn_rng(rng)))

    def forward(self, per_path: List[Tensor]) -> Tensor:
        z = stack(per_path, axis=1)  # (B, P, d)
        keys = self.project(z).tanh()  # (B, P, h)
        # Path importance is averaged over the batch (HAN Eq. 7).
        scores = (keys @ self.query).squeeze(-1).mean(axis=0)  # (P,)
        weights = scores.softmax(axis=-1)  # (P,)
        return (z * weights.reshape(1, -1, 1)).sum(axis=1)


class HANModule(Module):
    """Trainable HAN network on the merged-relationship graph."""

    def __init__(self, graph: MultiplexHeteroGraph,
                 schemes: List[MetapathScheme], dim: int = 32,
                 fanout: int = 8, num_negatives: int = 5, rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.graph = graph
        self.schemes = schemes
        self.num_negatives = num_negatives
        self.features = Embedding(graph.num_nodes, dim, rng=spawn_rng(rng))
        self.context = Embedding(graph.num_nodes, dim, rng=spawn_rng(rng))
        adjacency = TypedAdjacencyCache(graph)
        self._samplers = [
            MetapathNeighborSampler(
                graph, scheme, [fanout] * len(scheme), rng=spawn_rng(rng),
                adjacency=adjacency,
            )
            for scheme in schemes
        ]
        self.node_attention = ModuleList(
            [_NodeLevelAttention(dim, spawn_rng(rng)) for _ in schemes]
        )
        self.semantic_attention = _SemanticAttention(dim, dim, spawn_rng(rng))
        self.self_loop = Linear(dim, dim, bias=False, rng=spawn_rng(rng))
        self._cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _path_embedding(self, nodes: np.ndarray, index: int) -> Tensor:
        sampler = self._samplers[index]
        layers = sampler.sample_layers(nodes)
        neighbors = layers[-1].reshape(len(nodes), -1)  # terminal metapath neighbors
        return self.node_attention[index](
            self.features(nodes), self.features(neighbors)
        )

    def forward(self, nodes: np.ndarray, relation: str = MERGED_RELATION) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        codes = self.graph.node_type_codes[nodes]
        type_names = self.graph.schema.node_types
        per_type_results: List[Tensor] = []
        positions: List[np.ndarray] = []
        for code in np.unique(codes):
            node_type = type_names[int(code)]
            idx = np.flatnonzero(codes == code)
            group = nodes[idx]
            applicable = [
                i for i, scheme in enumerate(self.schemes)
                if scheme.start_type == node_type
            ]
            if applicable:
                per_path = [self._path_embedding(group, i) for i in applicable]
                if len(per_path) == 1:
                    fused = per_path[0]
                else:
                    fused = self.semantic_attention(per_path)
            else:
                fused = self.self_loop(self.features(group)).relu()
            per_type_results.append(fused)
            positions.append(idx)
        if len(per_type_results) == 1:
            return per_type_results[0]
        combined = concat(per_type_results, axis=0)
        order = np.concatenate(positions)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        return combined[inverse]

    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        self._cache = None

    def node_embeddings(self, nodes: np.ndarray, relation: str,
                        chunk_size: int = 1024) -> np.ndarray:
        if self._cache is None:
            rows = []
            for start in range(0, self.graph.num_nodes, chunk_size):
                batch = np.arange(start, min(start + chunk_size, self.graph.num_nodes))
                rows.append(self.forward(batch).data)
            self._cache = np.concatenate(rows, axis=0)
        return self._cache[np.asarray(nodes, dtype=np.int64)]


class HAN(BaselineModel):
    """Baseline wrapper: merged-graph HAN trained with skip-gram walks."""

    name = "HAN"

    def __init__(self, dim: int = 32, fanout: int = 8,
                 trainer_config: Optional[TrainerConfig] = None,
                 rng: SeedLike = None):
        super().__init__(rng)
        self.dim = dim
        self.fanout = fanout
        self.trainer_config = trainer_config or TrainerConfig()
        self._module: Optional[HANModule] = None

    @staticmethod
    def merged_schemes(dataset: Dataset) -> List[MetapathScheme]:
        """Dataset metapath patterns re-typed onto the merged relation."""
        return [
            MetapathScheme.parse(pattern, MERGED_RELATION, dataset.abbreviations)
            for pattern in dataset.metapath_patterns
        ]

    def fit(self, dataset: Dataset, split: EdgeSplit) -> None:
        merged = split.train_graph.merged_relation_graph(MERGED_RELATION)
        schemes = self.merged_schemes(dataset)
        self._module = HANModule(
            merged, schemes, dim=self.dim, fanout=self.fanout,
            rng=spawn_rng(self._rng),
        )
        # Validation sets reference original relationships; the merged module
        # ignores the relation argument, so wrap the split transparently.
        merged_split = EdgeSplit(
            train_graph=merged, val=split.val, test=split.test
        )
        trainer = SkipGramTrainer(
            self._module,
            {MERGED_RELATION: schemes},
            merged_split,
            config=self.trainer_config,
            rng=spawn_rng(self._rng),
        )
        trainer.fit()

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        if self._module is None:
            raise RuntimeError("HAN has not been fitted")
        return self._module.node_embeddings(nodes, relation)
