"""The HybridGNN model (Sect. III, Algorithm 1).

For a batch of nodes and a target relationship r_l the forward pass:

1. runs the hybrid aggregation flows of every relationship — the predefined
   intra-relationship metapath flows of PS_r plus the shared randomized
   inter-relationship exploration flow (Eqs. 3-5);
2. fuses each relationship's flows with metapath-level attention and mean
   pooling (Eqs. 6-7), giving \\hat h_{v, r};
3. fuses the per-relationship embeddings with relationship-level attention
   (Eqs. 8-9), giving the local edge embedding e_{v, r_l};
4. outputs  e*_{v, r_l} = e_v + e_{v, r_l} W_{r_l}  (Eq. 10).

The four ablation switches of Table VII are honoured via
:class:`~repro.core.config.HybridGNNConfig`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.core.config import HybridGNNConfig
from repro.core.features import make_feature_source
from repro.core.hierarchical_attention import (
    MetapathLevelAttention,
    RelationshipLevelAttention,
)
from repro.core.hybrid_aggregation import (
    ExplorationFlow,
    MetapathFlow,
    RandomNeighborFlow,
)
from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, ModuleDict, ModuleList
from repro.nn.tensor import Tensor, concat
from repro.sampling.adjacency import TypedAdjacencyCache
from repro.utils.rng import SeedLike, as_rng, spawn_rng


class HybridGNN(Module):
    """End-to-end GNN for recommendation in multiplex heterogeneous networks.

    Parameters
    ----------
    graph:
        The (training) multiplex heterogeneous graph.
    schemes_by_relation:
        PS_r for every relationship: the predefined intra-relationship
        metapath schemes (Table II).  Only schemes whose start type matches a
        node's type apply to that node (the rho(v) ∩ PS_r of Eq. 3).
    config:
        Model hyper-parameters and ablation switches.
    """

    def __init__(
        self,
        graph: MultiplexHeteroGraph,
        schemes_by_relation: Dict[str, List[MetapathScheme]],
        config: HybridGNNConfig = HybridGNNConfig(),
        rng: SeedLike = None,
        node_features: Optional[np.ndarray] = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        self.graph = graph
        self.config = config
        self.relations = list(graph.schema.relationships)
        missing = set(self.relations) - set(schemes_by_relation)
        if config.use_hybrid_flows and missing:
            raise TrainingError(f"no metapath schemes given for relationships {sorted(missing)}")

        num_nodes = graph.num_nodes
        self.base = Embedding(num_nodes, config.base_dim, rng=spawn_rng(rng))
        # Flow inputs h^(0): a learned table (transductive, the paper's
        # experiments) or projected fixed node features (inductive setting).
        self.features = make_feature_source(
            num_nodes, config.edge_dim, node_features=node_features,
            rng=spawn_rng(rng),
        )
        self.context = Embedding(num_nodes, config.base_dim, rng=spawn_rng(rng))

        adjacency = TypedAdjacencyCache(graph)
        self.flows = ModuleDict()
        for relation in self.relations:
            if config.use_hybrid_flows:
                flow_list = []
                for scheme in schemes_by_relation[relation]:
                    scheme.validate(graph.schema)
                    flow_list.append(
                        MetapathFlow(
                            graph,
                            scheme,
                            self.features,
                            config.edge_dim,
                            config.metapath_fanouts,
                            aggregator=config.aggregator,
                            rng=spawn_rng(rng),
                            adjacency=adjacency,
                        )
                    )
                self.flows[relation] = ModuleList(flow_list)
            else:
                self.flows[relation] = ModuleList(
                    [
                        RandomNeighborFlow(
                            graph,
                            relation,
                            self.features,
                            config.edge_dim,
                            depth=config.random_flow_depth,
                            fanout=config.exploration_fanout,
                            aggregator=config.aggregator,
                            rng=spawn_rng(rng),
                        )
                    ]
                )

        self.exploration_flow: Optional[ExplorationFlow] = None
        if config.use_randomized_exploration:
            self.exploration_flow = ExplorationFlow(
                graph,
                self.features,
                config.edge_dim,
                depth=config.exploration_depth,
                fanout=config.exploration_fanout,
                aggregator=config.aggregator,
                rng=spawn_rng(rng),
            )

        self.metapath_attention = ModuleDict(
            {
                relation: MetapathLevelAttention(
                    config.edge_dim,
                    enabled=config.use_metapath_attention,
                    rng=spawn_rng(rng),
                )
                for relation in self.relations
            }
        )
        self.relationship_attention = RelationshipLevelAttention(
            config.edge_dim,
            enabled=config.use_relationship_attention,
            rng=spawn_rng(rng),
        )
        self.output_transforms = ModuleDict(
            {
                relation: Linear(
                    config.edge_dim, config.base_dim, bias=False, rng=spawn_rng(rng)
                )
                for relation in self.relations
            }
        )
        # Projection used only for nodes with no applicable flow at all.
        self.self_projection = Linear(
            config.edge_dim, config.edge_dim, bias=False, rng=spawn_rng(rng)
        )

        self._embedding_cache: Dict[str, np.ndarray] = {}

    @property
    def num_negatives(self) -> int:
        """Negatives per positive pair (trainer protocol)."""
        return self.config.num_negatives

    def audit_exemptions(self) -> Dict[str, str]:
        """Parameters structurally unused for this configuration.

        Consumed by the graph auditor (``repro check-model``): matching
        parameters that are unreachable from the loss are reported as
        informational rather than as defects.  Patterns are fnmatch-style
        against ``named_parameters()`` names.
        """
        exemptions = {
            "self_projection.*": (
                "fallback projection, used only for nodes with no applicable "
                "flow and no exploration"
            ),
        }
        if len(self.relations) < 2:
            exemptions["relationship_attention.*"] = (
                "single-relationship graph: forward bypasses "
                "relationship-level attention"
            )
        return exemptions

    # ------------------------------------------------------------------
    # Forward pieces
    # ------------------------------------------------------------------
    def _metapath_flows(self, relation: str, node_type: str) -> List[Module]:
        """Relation-specific flows usable for nodes of ``node_type``."""
        flows: List[Module] = []
        for flow in self.flows[relation]:
            if isinstance(flow, MetapathFlow):
                if flow.start_type == node_type:
                    flows.append(flow)
            else:
                flows.append(flow)
        return flows

    def _group_embedding(self, nodes: np.ndarray, relation: str, node_type: str,
                         exploration: Optional[Tensor] = None) -> Tensor:
        """\\hat h_{v, r} for a batch of same-typed nodes (Eqs. 3-7).

        ``exploration`` is the P_rand flow output for these nodes; it is
        computed once per batch by the caller because it does not depend on
        the relationship.
        """
        flows = self._metapath_flows(relation, node_type)
        flow_embeddings = [flow(nodes) for flow in flows]
        if exploration is not None:
            flow_embeddings.append(exploration)
        if not flow_embeddings:
            flow_embeddings = [self.self_projection(self.features(nodes)).relu()]
        return self.metapath_attention[relation](flow_embeddings)

    def relation_embedding(self, nodes: np.ndarray, relation: str,
                           exploration: Optional[Tensor] = None) -> Tensor:
        """\\hat h_{v, r} for a mixed-type batch; shape (B, edge_dim)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if exploration is None and self.exploration_flow is not None:
            exploration = self.exploration_flow(nodes)
        codes = self.graph.node_type_codes[nodes]
        unique_codes = np.unique(codes)
        if len(unique_codes) == 1:
            node_type = self.graph.schema.node_types[int(unique_codes[0])]
            return self._group_embedding(nodes, relation, node_type, exploration)
        pieces: List[Tensor] = []
        positions: List[np.ndarray] = []
        for code in unique_codes:
            node_type = self.graph.schema.node_types[int(code)]
            idx = np.flatnonzero(codes == code)
            group_exploration = exploration[idx] if exploration is not None else None
            pieces.append(
                self._group_embedding(nodes[idx], relation, node_type, group_exploration)
            )
            positions.append(idx)
        combined = concat(pieces, axis=0)
        order = np.concatenate(positions)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order))
        return combined[inverse]

    def forward(self, nodes: np.ndarray, relation: str) -> Tensor:
        """e*_{v, r} for every v in ``nodes``; shape (B, base_dim)."""
        if relation not in self.relations:
            raise TrainingError(f"unknown relationship {relation!r}")
        nodes = np.asarray(nodes, dtype=np.int64)
        # The exploration flow is relation-independent (Eq. 4): sample and
        # aggregate it once per batch, shared by every relationship.
        exploration = (
            self.exploration_flow(nodes) if self.exploration_flow is not None else None
        )
        if self.config.use_relationship_attention and len(self.relations) > 1:
            per_relation = [
                self.relation_embedding(nodes, rel, exploration)
                for rel in self.relations
            ]
            fused = self.relationship_attention(per_relation)  # (B, R, d)
            local = fused[:, self.relations.index(relation), :]
        else:
            local = self.relation_embedding(nodes, relation, exploration)
        return self.base(nodes) + self.output_transforms[relation](local)

    # ------------------------------------------------------------------
    # Evaluation interface
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Drop cached embeddings (call after any parameter update)."""
        self._embedding_cache.clear()

    def node_embeddings(self, nodes: np.ndarray, relation: str,
                        chunk_size: int = 512) -> np.ndarray:
        """Relationship-specific embeddings for evaluation (cached).

        The first call per relationship embeds the whole graph once; later
        calls are array lookups.  Sampling noise is averaged out by the
        attention pooling, and freezing one sample per eval matches how the
        paper evaluates.
        """
        if relation not in self._embedding_cache:
            was_training = self.training
            self.eval()
            samples = []
            for _ in range(self.config.eval_samples):
                rows = []
                for start in range(0, self.graph.num_nodes, chunk_size):
                    batch = np.arange(
                        start, min(start + chunk_size, self.graph.num_nodes)
                    )
                    rows.append(self.forward(batch, relation).data)
                samples.append(np.concatenate(rows, axis=0))
            self._embedding_cache[relation] = np.mean(samples, axis=0)
            self.train(was_training)
        return self._embedding_cache[relation][np.asarray(nodes, dtype=np.int64)]

    # ------------------------------------------------------------------
    # Introspection (Fig. 5 case study)
    # ------------------------------------------------------------------
    def metapath_attention_scores(
        self, relation: str, node_type: str, sample_size: int = 64,
        rng: SeedLike = None,
    ) -> Dict[str, float]:
        """Average metapath-level attention mass per flow label.

        Runs a forward pass over a sample of ``node_type`` nodes and reads
        out the attention matrix, reproducing the Fig. 5 readout.
        """
        rng = as_rng(rng)
        candidates = self.graph.nodes_of_type(node_type)
        if len(candidates) == 0:
            raise TrainingError(f"graph has no {node_type!r} nodes")
        size = min(sample_size, len(candidates))
        nodes = rng.choice(candidates, size=size, replace=False)
        flows = self._metapath_flows(relation, node_type)
        exploration = (
            self.exploration_flow(nodes) if self.exploration_flow is not None else None
        )
        self._group_embedding(nodes, relation, node_type, exploration)
        importance = self.metapath_attention[relation].last_flow_importance
        labels = [flow.label for flow in flows]
        if exploration is not None:
            labels.append(self.exploration_flow.label)
        if not labels:
            labels = ["self"]
        return {
            label: float(score) for label, score in zip(labels, importance)
        }

    def relationship_attention_scores(
        self, sample_size: int = 64, rng: SeedLike = None
    ) -> Dict[str, float]:
        """Average relationship-level attention mass per relationship."""
        rng = as_rng(rng)
        nodes = rng.choice(
            self.graph.num_nodes, size=min(sample_size, self.graph.num_nodes),
            replace=False,
        )
        per_relation = [self.relation_embedding(nodes, rel) for rel in self.relations]
        self.relationship_attention(per_relation)
        importance = self.relationship_attention.last_relation_importance
        return {
            relation: float(score)
            for relation, score in zip(self.relations, importance)
        }
