"""Hierarchical attention (Sect. III-D, Eqs. 6-10).

Two stacked self-attention stages:

- **metapath-level** (Eq. 6-7): re-weigh the edge embeddings produced by the
  hybrid aggregation flows of one relationship, then mean-pool over flows to
  get the relationship-local embedding  \\hat h_{v, r};
- **relationship-level** (Eq. 8-9): attend over the per-relationship
  embeddings to fuse cross-relationship signal, yielding e_{v, r} for every
  relationship r.

Both stages expose their attention matrices so the Fig. 5 case study can
read out flow importances.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.attention import SelfAttention
from repro.nn.module import Module
from repro.nn.tensor import Tensor, stack
from repro.utils.rng import SeedLike, as_rng


class MetapathLevelAttention(Module):
    """Eq. 6-7: self-attention over flow embeddings, then mean pooling.

    With ``enabled=False`` (the "w/o metapath-level attention" ablation of
    Table VII) the flows are mean-pooled without re-weighting.
    """

    def __init__(self, edge_dim: int, enabled: bool = True, rng: SeedLike = None):
        super().__init__()
        self.enabled = enabled
        self.attention = SelfAttention(edge_dim, edge_dim, rng=as_rng(rng)) if enabled else None
        self._last_flow_importance: Optional[np.ndarray] = None

    def forward(self, flow_embeddings: Sequence[Tensor]) -> Tensor:
        """Fuse per-flow embeddings [(B, d), ...] into (B, d)."""
        h = stack(list(flow_embeddings), axis=1)  # (B, n_flows, d)
        if self.enabled:
            # Residual keeps each flow's own signal alongside the re-weighted
            # mixture (stabilises training when one flow dominates).
            h = h + self.attention(h)
            weights = self.attention.last_attention_weights  # (B, n, n)
            # Column mass = how much each flow contributes across outputs.
            self._last_flow_importance = weights.mean(axis=(0, 1))
        else:
            n_flows = h.shape[1]
            self._last_flow_importance = np.full(n_flows, 1.0 / n_flows)
        return h.mean(axis=1)

    @property
    def last_flow_importance(self) -> Optional[np.ndarray]:
        """Per-flow attention mass from the latest forward (sums to 1)."""
        return self._last_flow_importance


class RelationshipLevelAttention(Module):
    """Eq. 8-9: self-attention over the per-relationship embeddings.

    With ``enabled=False`` (the "w/o relationship-level attention" ablation)
    the input embeddings pass through unchanged.
    """

    def __init__(self, edge_dim: int, enabled: bool = True, rng: SeedLike = None):
        super().__init__()
        self.enabled = enabled
        self.attention = SelfAttention(edge_dim, edge_dim, rng=as_rng(rng)) if enabled else None
        self._last_relation_importance: Optional[np.ndarray] = None

    def forward(self, relation_embeddings: Sequence[Tensor]) -> Tensor:
        """Fuse [(B, d)] * |R| into (B, |R|, d) of e_{v, r} embeddings."""
        u = stack(list(relation_embeddings), axis=1)  # (B, R, d)
        if not self.enabled:
            self._last_relation_importance = np.full(
                u.shape[1], 1.0 / u.shape[1]
            )
            return u
        # Residual: relation-specific signal passes through untouched while
        # the attention adds the cross-relationship mixture.
        out = u + self.attention(u)
        weights = self.attention.last_attention_weights
        self._last_relation_importance = weights.mean(axis=(0, 1))
        return out

    @property
    def last_relation_importance(self) -> Optional[np.ndarray]:
        return self._last_relation_importance
