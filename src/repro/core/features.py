"""Feature sources for the aggregation flows.

The flows' initial states h^(0) (Eq. 3) are "randomly initialized" in the
transductive paper setting — a learned per-node table.  For the inductive
setting the paper sketches ("HybridGNN can leverage the advantages between
node features and the topological structure of node neighbors",
Sect. III-G), the initial states come from fixed node features through a
learnable projection instead.  Both sources expose the same call interface
as :class:`~repro.nn.layers.Embedding`, so every flow works with either.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, as_rng


class LearnedFeatures(Embedding):
    """The transductive default: one learned vector per node."""


class ProjectedFeatures(Module):
    """Inductive source: fixed node features through a learnable projection.

    Parameters
    ----------
    node_features:
        Fixed matrix of shape (num_nodes, feature_dim); not trained.
    out_dim:
        Dimension of the projected flow inputs (the model's edge_dim).
    """

    def __init__(self, node_features: np.ndarray, out_dim: int,
                 rng: SeedLike = None):
        super().__init__()
        node_features = np.asarray(node_features, dtype=np.float64)
        if node_features.ndim != 2:
            raise TrainingError(
                f"node_features must be 2-d (num_nodes, dim), got shape "
                f"{node_features.shape}"
            )
        if not np.all(np.isfinite(node_features)):
            raise TrainingError("node_features contains non-finite values")
        self.raw = node_features
        self.num_nodes = node_features.shape[0]
        self.feature_dim = node_features.shape[1]
        self.embedding_dim = out_dim
        self.project = Linear(self.feature_dim, out_dim, rng=as_rng(rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        """Project the features of ``indices``; output shape
        ``indices.shape + (out_dim,)``."""
        indices = np.asarray(indices, dtype=np.int64)
        gathered = Tensor(self.raw[indices])
        return self.project(gathered).tanh()


def make_feature_source(num_nodes: int, edge_dim: int,
                        node_features: np.ndarray = None,
                        rng: SeedLike = None) -> Module:
    """Learned table when ``node_features`` is None, projection otherwise."""
    if node_features is None:
        return LearnedFeatures(num_nodes, edge_dim, rng=rng)
    node_features = np.asarray(node_features)
    if node_features.shape[0] != num_nodes:
        raise TrainingError(
            f"node_features covers {node_features.shape[0]} nodes but the "
            f"graph has {num_nodes}"
        )
    return ProjectedFeatures(node_features, edge_dim, rng=rng)
