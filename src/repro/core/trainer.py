"""Training loop for HybridGNN (Sect. III-E / IV-C).

Pipeline per the paper: metapath-based random walks per relationship feed a
heterogeneous skip-gram objective; the model is optimised with Adam; early
stopping watches validation ROC-AUC with a five-epoch patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import TrainerConfig
from repro.core.loss import skip_gram_loss
from repro.core.model import HybridGNN
from repro.datasets.splits import EdgeSplit
from repro.errors import TrainingError
from repro.eval.link_prediction import evaluate_link_prediction
from repro.graph.schema import MetapathScheme
from repro.nn.optim import Adam
from repro.perf import StageProfiler
from repro.sampling.context import context_pairs
from repro.sampling.metapath_walk import relationship_walk_matrix
from repro.sampling.random_walk import UniformRandomWalker
from repro.sampling.negative import UnigramNegativeSampler
from repro.utils.rng import SeedLike, as_rng, spawn_rng


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    losses: List[float] = field(default_factory=list)
    val_scores: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_score: float = float("-inf")
    stopped_early: bool = False


class SkipGramTrainer:
    """Fits any walk-supervised relation-aware model on one edge split.

    The model must expose ``forward(nodes, relation) -> Tensor``,
    ``parameters()``, ``context`` (an :class:`~repro.nn.layers.Embedding`
    used for skip-gram contexts), ``num_negatives``, ``invalidate_cache()``
    and the ``state_dict``/``load_state_dict`` pair.  HybridGNN and the
    skip-gram baselines (GATNE, HAN, MAGNN) all satisfy this.

    The epoch loop is decomposed into three explicitly-bounded stages so
    alternative executors (the sharded trainer in ``repro.train.parallel``)
    can swap any one of them without re-implementing the rest:

    - **sample** — :meth:`generate_pairs`: walks → (center, context) pairs
      per relationship.  Consumes spawned child RNGs only.
    - **batch** — :meth:`make_batches`: pairs → shuffled fixed-size batch
      list.  Consumes the trainer RNG (permutation + shuffle) and applies
      the ``max_batches_per_epoch`` cap.
    - **update** — :meth:`apply_updates`: batches → mean loss.  Consumes
      only the negative sampler's private RNG; all parameter mutation
      happens here.

    Stage boundaries are data (plain dict/list of arrays), never shared
    mutable state, which is what makes them shippable across process
    boundaries.  :meth:`fit` composes the stages; :meth:`_reference_fit`
    keeps the pre-refactor monolithic loop as a differential oracle
    (``repro verify --suite parallel`` checks bit-identity).
    """

    def __init__(
        self,
        model,
        schemes_by_relation: Dict[str, List[MetapathScheme]],
        split: EdgeSplit,
        config: Optional[TrainerConfig] = None,
        rng: SeedLike = None,
    ):
        self.model = model
        self.schemes_by_relation = schemes_by_relation
        self.split = split
        self.config = TrainerConfig() if config is None else config
        self.profiler = StageProfiler()
        self._rng = as_rng(rng)
        self._negative_sampler = UnigramNegativeSampler(
            split.train_graph, rng=spawn_rng(self._rng)
        )
        self._optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

    # -- sample stage --------------------------------------------------
    def generate_pairs(self) -> Dict[str, np.ndarray]:
        """Skip-gram (center, context) pairs per relationship.

        Walks follow the relationship's predefined metapath schemes only
        (Eq. 12): the objective supervises *relationship-specific* proximity,
        while inter-relationship information enters through the exploration
        aggregation flow, not through the contexts.  Relationships whose
        schemes yield no walks (e.g. very sparse ones) fall back to plain
        uniform walks inside their subgraph.
        """
        graph = self.split.train_graph
        config = self.config
        pairs: Dict[str, np.ndarray] = {}
        for relation in graph.schema.relationships:
            with self.profiler.stage("sampling.walks"):
                matrix, lengths = relationship_walk_matrix(
                    graph,
                    self.schemes_by_relation.get(relation, []),
                    num_walks=config.num_walks,
                    length=config.walk_length,
                    rng=spawn_rng(self._rng),
                )
                keep = lengths > 1
                if not keep.any() and graph.num_edges_in(relation) > 0:
                    fallback = UniformRandomWalker(
                        graph, relation=relation, rng=spawn_rng(self._rng)
                    )
                    matrix, lengths = fallback.walks_matrix(
                        config.num_walks, config.walk_length
                    )
                    keep = lengths > 1
                matrix, lengths = matrix[keep], lengths[keep]
            with self.profiler.stage("sampling.pairs"):
                extracted = context_pairs((matrix, lengths), config.window)
            if len(extracted):
                pairs[relation] = extracted
        if not pairs:
            raise TrainingError(
                "no training pairs were generated; check walk settings and schemes"
            )
        return pairs

    # -- batch stage ---------------------------------------------------
    def make_batches(
        self, pairs: Dict[str, np.ndarray]
    ) -> List[Tuple[str, np.ndarray]]:
        """Shuffle pairs per relation and slice them into training batches.

        Consumes the trainer RNG (one permutation per relation, in pair-dict
        order, then one global shuffle) — the exact draw sequence of the
        pre-refactor loop, so seeded runs stay bit-identical.
        """
        config = self.config
        with self.profiler.stage("train.batching"):
            batches: List[Tuple[str, np.ndarray]] = []
            for relation, relation_pairs in pairs.items():
                order = self._rng.permutation(len(relation_pairs))
                for start in range(0, len(relation_pairs), config.batch_size):
                    batches.append((relation, relation_pairs[order[start: start + config.batch_size]]))
            self._rng.shuffle(batches)
            if config.max_batches_per_epoch:
                batches = batches[: config.max_batches_per_epoch]
        return batches

    # -- update stage --------------------------------------------------
    def apply_updates(self, batches: List[Tuple[str, np.ndarray]]) -> float:
        """Run one optimisation step per batch; return the mean batch loss.

        The only stage that mutates parameters.  Negatives come from the
        sampler's private RNG, so the sample/batch stages can be replayed
        or swapped without perturbing the update stream.
        """
        with self.profiler.stage("train.sgd"):
            total_loss = self._run_batches(batches)
        self.model.invalidate_cache()
        return total_loss / max(1, len(batches))

    def _train_epoch(self, pairs: Dict[str, np.ndarray]) -> float:
        return self.apply_updates(self.make_batches(pairs))

    def _run_batches(self, batches: List[Tuple[str, np.ndarray]]) -> float:
        model = self.model
        total_loss = 0.0
        for relation, batch in batches:
            centers = batch[:, 0]
            contexts = batch[:, 1]
            negatives = self._negative_sampler.sample_like(
                contexts, model.num_negatives
            )
            embeddings = model(centers, relation)
            loss = skip_gram_loss(embeddings, model.context, contexts, negatives)
            self._optimizer.zero_grad()
            loss.backward()
            self._optimizer.step()
            total_loss += loss.item()
        return total_loss

    def _validation_score(self) -> Optional[float]:
        if not self.split.val:
            return None
        with self.profiler.stage("eval.validation"):
            report = evaluate_link_prediction(self.model, self.split.val)
        return report["roc_auc"]

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        """Train with early stopping; restores the best parameters.

        With ``config.resample_walks_every == 0`` (default) walks are
        sampled once and the same pairs feed every epoch — the historical
        behaviour, kept so goldens stay bit-identical.  A positive value
        re-runs the sample stage every that-many epochs, so later epochs
        train on fresh random-walk contexts instead of a frozen corpus.
        """
        config = self.config
        history = TrainingHistory()
        pairs = self.generate_pairs()
        best_state = None
        epochs_since_best = 0

        for epoch in range(config.epochs):
            if (
                config.resample_walks_every
                and epoch
                and epoch % config.resample_walks_every == 0
            ):
                pairs = self.generate_pairs()
            loss = self._train_epoch(pairs)
            history.losses.append(loss)
            val_score = self._validation_score()
            if val_score is not None:
                history.val_scores.append(val_score)
                if val_score > history.best_val_score:
                    history.best_val_score = val_score
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
            if config.verbose:
                val_text = f", val ROC-AUC {val_score:.2f}" if val_score is not None else ""
                print(f"epoch {epoch + 1}/{config.epochs}: loss {loss:.4f}{val_text}")
            if val_score is not None and epochs_since_best >= config.patience:
                history.stopped_early = True
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
            self.model.invalidate_cache()
        return history

    # ------------------------------------------------------------------
    def _reference_fit(self) -> TrainingHistory:
        """Pre-refactor monolithic training loop, kept as the oracle.

        A verbatim copy of ``fit`` as it stood before the sample→batch→
        update decomposition (and before ``resample_walks_every``): one
        inline epoch body doing batching + SGD.  ``repro verify --suite
        parallel`` runs this against the staged :meth:`fit` on identically
        seeded twins and demands bit-identical losses, validation scores
        and final parameters.  Never optimise or "clean up" this method —
        its value is that it does not change.
        """
        config = self.config
        model = self.model
        history = TrainingHistory()
        pairs = self.generate_pairs()
        best_state = None
        epochs_since_best = 0

        for epoch in range(config.epochs):
            with self.profiler.stage("train.batching"):
                batches: List[Tuple[str, np.ndarray]] = []
                for relation, relation_pairs in pairs.items():
                    order = self._rng.permutation(len(relation_pairs))
                    for start in range(0, len(relation_pairs), config.batch_size):
                        batches.append((relation, relation_pairs[order[start: start + config.batch_size]]))
                self._rng.shuffle(batches)
                if config.max_batches_per_epoch:
                    batches = batches[: config.max_batches_per_epoch]
            with self.profiler.stage("train.sgd"):
                total_loss = self._run_batches(batches)
            model.invalidate_cache()
            loss = total_loss / max(1, len(batches))

            history.losses.append(loss)
            val_score = self._validation_score()
            if val_score is not None:
                history.val_scores.append(val_score)
                if val_score > history.best_val_score:
                    history.best_val_score = val_score
                    history.best_epoch = epoch
                    best_state = self.model.state_dict()
                    epochs_since_best = 0
                else:
                    epochs_since_best += 1
            if config.verbose:
                val_text = f", val ROC-AUC {val_score:.2f}" if val_score is not None else ""
                print(f"epoch {epoch + 1}/{config.epochs}: loss {loss:.4f}{val_text}")
            if val_score is not None and epochs_since_best >= config.patience:
                history.stopped_early = True
                break

        if best_state is not None:
            self.model.load_state_dict(best_state)
            self.model.invalidate_cache()
        return history


# HybridGNN was the trainer's original (and primary) client.
HybridGNNTrainer = SkipGramTrainer
