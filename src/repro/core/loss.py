"""Skip-gram objective with heterogeneous negative sampling (Eq. 13).

    L = -log sigma(c_j . e*_{v_i, r})
        - sum_k E_{v_k ~ P_Neg}[ log sigma(-c_k . e*_{v_i, r}) ]

where c are context embeddings and negatives are drawn from the degree^0.75
unigram distribution restricted to the context node's type.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding
from repro.nn.tensor import Tensor, where


def softplus(x: Tensor) -> Tensor:
    """Numerically stable softplus: max(x, 0) + log(1 + exp(-|x|)).

    Note -log(sigmoid(x)) == softplus(-x), which is how the loss below is
    phrased.
    """
    abs_x = where(x.data > 0, x, -x)
    return x.relu() + ((-abs_x).exp() + 1.0).log()


def skip_gram_loss(
    target_embeddings: Tensor,
    context_table: Embedding,
    contexts: np.ndarray,
    negatives: np.ndarray,
) -> Tensor:
    """Mean skip-gram negative-sampling loss over a batch.

    Parameters
    ----------
    target_embeddings:
        e*_{v_i, r} of shape (B, d) — the model output for the batch centers.
    context_table:
        The context embedding table (c vectors).
    contexts:
        Positive context node ids, shape (B,).
    negatives:
        Negative node ids, shape (B, n).
    """
    positive = context_table(contexts)  # (B, d)
    pos_logits = (target_embeddings * positive).sum(axis=-1)  # (B,)
    negative = context_table(negatives)  # (B, n, d)
    neg_logits = (negative @ target_embeddings.unsqueeze(-1)).squeeze(-1)  # (B, n)
    loss = softplus(-pos_logits).mean() + softplus(neg_logits).sum(axis=-1).mean()
    return loss
