"""Saving and restoring trained models.

Two artifact kinds:

- **Checkpoints** (``save_checkpoint``/``load_checkpoint_into``): the full
  parameter state of a :class:`~repro.nn.module.Module`, restorable into a
  freshly constructed model of the same architecture.
- **Embedding exports** (``export_embeddings``/``load_embeddings``): the
  materialised relationship-specific embedding matrices, which is all a
  downstream serving system needs.

Both use ``numpy.savez_compressed`` — a single portable file, no pickle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from repro.errors import ReproError
from repro.eval.link_prediction import RelationEmbedder
from repro.nn.module import Module

_META_KEY = "__meta__"


def _as_npz_path(path: Union[str, Path]) -> Path:
    """The path ``np.savez_compressed`` actually writes to.

    numpy silently appends ``.npz`` when the suffix is missing; normalising
    here keeps what we report (and later try to load) in sync with what
    lands on disk.
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _existing_npz_path(path: Union[str, Path]) -> Path:
    """Resolve a load path, accepting the suffix-less form a save was given."""
    path = Path(path)
    if path.exists():
        return path
    normalised = _as_npz_path(path)
    return normalised if normalised.exists() else path


def _check_reserved_keys(keys, what: str) -> None:
    if _META_KEY in keys:
        raise ReproError(
            f"{what} name {_META_KEY!r} is reserved for archive metadata; "
            "rename it before saving"
        )


def save_checkpoint(model: Module, path: Union[str, Path]) -> Path:
    """Write every parameter of ``model`` to ``path`` (.npz).

    Returns the path actually written (``.npz`` appended when missing).
    """
    state = model.state_dict()
    _check_reserved_keys(state, "parameter")
    meta = json.dumps({"format": "repro-checkpoint", "version": 1,
                       "parameters": sorted(state)})
    target = _as_npz_path(path)
    np.savez_compressed(target, **state, **{_META_KEY: np.asarray(meta)})
    return target


def load_checkpoint_into(model: Module, path: Union[str, Path]) -> None:
    """Restore parameters saved by :func:`save_checkpoint` into ``model``.

    The model must have the same architecture (same parameter names and
    shapes) as the one that was saved.  A missing ``.npz`` suffix is
    normalised the same way :func:`save_checkpoint` normalises it.
    """
    with np.load(_existing_npz_path(path), allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ReproError(f"{path} is not a repro checkpoint")
        meta = json.loads(str(data[_META_KEY]))
        if meta.get("format") != "repro-checkpoint":
            raise ReproError(f"{path} is not a repro checkpoint")
        state = {key: data[key] for key in data.files if key != _META_KEY}
    # Run the shape checker first: a malformed checkpoint fails here with
    # the offending parameter named and expected-vs-found specs rendered,
    # not as a numpy broadcast error mid-load (or worse, mid-request).
    from repro.check.state import verify_state_dict

    verify_state_dict(model, state, source=str(path))
    model.load_state_dict(state)


def export_embeddings(model: RelationEmbedder, num_nodes: int,
                      relations: Sequence[str], path: Union[str, Path]) -> Path:
    """Materialise and save per-relationship embedding matrices.

    Returns the path actually written (``.npz`` appended when missing).
    """
    _check_reserved_keys(relations, "relationship")
    nodes = np.arange(num_nodes)
    arrays: Dict[str, np.ndarray] = {
        relation: model.node_embeddings(nodes, relation) for relation in relations
    }
    meta = json.dumps({"format": "repro-embeddings", "version": 1,
                       "num_nodes": num_nodes, "relations": list(relations)})
    target = _as_npz_path(path)
    np.savez_compressed(target, **arrays, **{_META_KEY: np.asarray(meta)})
    return target


class EmbeddingStore:
    """Read-only relationship-specific embeddings loaded from disk.

    Satisfies the ``RelationEmbedder`` protocol, so it can be dropped into
    the evaluators and the :class:`~repro.core.recommender.Recommender` in
    place of a live model.
    """

    def __init__(self, tables: Dict[str, np.ndarray]):
        if not tables:
            raise ReproError("embedding store requires at least one relation")
        sizes = {table.shape[0] for table in tables.values()}
        if len(sizes) != 1:
            raise ReproError("all relations must cover the same node count")
        self.tables = tables
        self.num_nodes = sizes.pop()

    @property
    def relations(self):
        return list(self.tables)

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        try:
            table = self.tables[relation]
        except KeyError:
            raise ReproError(
                f"no embeddings stored for relationship {relation!r}; "
                f"available: {self.relations}"
            ) from None
        return table[np.asarray(nodes, dtype=np.int64)]


def load_embeddings(path: Union[str, Path]) -> EmbeddingStore:
    """Load an export written by :func:`export_embeddings`.

    A missing ``.npz`` suffix is normalised to match what a save wrote.
    """
    with np.load(_existing_npz_path(path), allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ReproError(f"{path} is not a repro embedding export")
        meta = json.loads(str(data[_META_KEY]))
        if meta.get("format") != "repro-embeddings":
            raise ReproError(f"{path} is not a repro embedding export")
        tables = {
            relation: data[relation] for relation in meta["relations"]
        }
    return EmbeddingStore(tables)
