"""Saving and restoring trained models.

Two artifact kinds:

- **Checkpoints** (``save_checkpoint``/``load_checkpoint_into``): the full
  parameter state of a :class:`~repro.nn.module.Module`, restorable into a
  freshly constructed model of the same architecture.
- **Embedding exports** (``export_embeddings``/``load_embeddings``): the
  materialised relationship-specific embedding matrices, which is all a
  downstream serving system needs.

Both use ``numpy.savez_compressed`` — a single portable file, no pickle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from repro.errors import ReproError
from repro.eval.link_prediction import RelationEmbedder
from repro.nn.module import Module

_META_KEY = "__meta__"


def save_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Write every parameter of ``model`` to ``path`` (.npz)."""
    state = model.state_dict()
    meta = json.dumps({"format": "repro-checkpoint", "version": 1,
                       "parameters": sorted(state)})
    np.savez_compressed(Path(path), **state, **{_META_KEY: np.asarray(meta)})


def load_checkpoint_into(model: Module, path: Union[str, Path]) -> None:
    """Restore parameters saved by :func:`save_checkpoint` into ``model``.

    The model must have the same architecture (same parameter names and
    shapes) as the one that was saved.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ReproError(f"{path} is not a repro checkpoint")
        meta = json.loads(str(data[_META_KEY]))
        if meta.get("format") != "repro-checkpoint":
            raise ReproError(f"{path} is not a repro checkpoint")
        state = {key: data[key] for key in data.files if key != _META_KEY}
    model.load_state_dict(state)


def export_embeddings(model: RelationEmbedder, num_nodes: int,
                      relations: Sequence[str], path: Union[str, Path]) -> None:
    """Materialise and save per-relationship embedding matrices."""
    nodes = np.arange(num_nodes)
    arrays: Dict[str, np.ndarray] = {
        relation: model.node_embeddings(nodes, relation) for relation in relations
    }
    meta = json.dumps({"format": "repro-embeddings", "version": 1,
                       "num_nodes": num_nodes, "relations": list(relations)})
    np.savez_compressed(Path(path), **arrays, **{_META_KEY: np.asarray(meta)})


class EmbeddingStore:
    """Read-only relationship-specific embeddings loaded from disk.

    Satisfies the ``RelationEmbedder`` protocol, so it can be dropped into
    the evaluators and the :class:`~repro.core.recommender.Recommender` in
    place of a live model.
    """

    def __init__(self, tables: Dict[str, np.ndarray]):
        if not tables:
            raise ReproError("embedding store requires at least one relation")
        sizes = {table.shape[0] for table in tables.values()}
        if len(sizes) != 1:
            raise ReproError("all relations must cover the same node count")
        self.tables = tables
        self.num_nodes = sizes.pop()

    @property
    def relations(self):
        return list(self.tables)

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        try:
            table = self.tables[relation]
        except KeyError:
            raise ReproError(
                f"no embeddings stored for relationship {relation!r}; "
                f"available: {self.relations}"
            ) from None
        return table[np.asarray(nodes, dtype=np.int64)]


def load_embeddings(path: Union[str, Path]) -> EmbeddingStore:
    """Load an export written by :func:`export_embeddings`."""
    with np.load(Path(path), allow_pickle=False) as data:
        if _META_KEY not in data:
            raise ReproError(f"{path} is not a repro embedding export")
        meta = json.loads(str(data[_META_KEY]))
        if meta.get("format") != "repro-embeddings":
            raise ReproError(f"{path} is not a repro embedding export")
        tables = {
            relation: data[relation] for relation in meta["relations"]
        }
    return EmbeddingStore(tables)
