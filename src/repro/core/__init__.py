"""The paper's contribution: HybridGNN and its training machinery."""

from repro.core.config import HybridGNNConfig, TrainerConfig
from repro.core.hybrid_aggregation import (
    ExplorationFlow,
    MetapathFlow,
    RandomNeighborFlow,
    aggregate_layers,
)
from repro.core.hierarchical_attention import (
    MetapathLevelAttention,
    RelationshipLevelAttention,
)
from repro.core.loss import skip_gram_loss, softplus
from repro.core.model import HybridGNN
from repro.core.trainer import HybridGNNTrainer, SkipGramTrainer, TrainingHistory
from repro.core.features import (
    LearnedFeatures,
    ProjectedFeatures,
    make_feature_source,
)
from repro.core.recommender import Recommendation, Recommender
from repro.core.persistence import (
    EmbeddingStore,
    export_embeddings,
    load_checkpoint_into,
    load_embeddings,
    save_checkpoint,
)

__all__ = [
    "HybridGNNConfig",
    "TrainerConfig",
    "HybridGNN",
    "HybridGNNTrainer",
    "SkipGramTrainer",
    "TrainingHistory",
    "MetapathFlow",
    "ExplorationFlow",
    "RandomNeighborFlow",
    "aggregate_layers",
    "MetapathLevelAttention",
    "RelationshipLevelAttention",
    "skip_gram_loss",
    "softplus",
    "Recommender",
    "Recommendation",
    "LearnedFeatures",
    "ProjectedFeatures",
    "make_feature_source",
    "save_checkpoint",
    "load_checkpoint_into",
    "export_embeddings",
    "load_embeddings",
    "EmbeddingStore",
]
