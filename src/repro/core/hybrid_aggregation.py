"""Hybrid aggregation flows (Sect. III-C, Eqs. 3-5).

A *flow* turns a batch of nodes into edge embeddings by recursively
aggregating a layered, fixed-fanout neighborhood:

    h^{(k)}_{v|P} = AGG_P(h^{(k-1)}_{v|P}, {h^{(k-1)}_{u|P} : u in N^{K-k+1}_P(v)})

Three flow types share this recursion and differ only in how layers are
sampled:

- :class:`MetapathFlow` — layers follow a predefined intra-relationship
  metapath scheme (Eq. 3);
- :class:`ExplorationFlow` — layers come from the randomized
  inter-relationship exploration (Eq. 4), with one shared parameter stack;
- :class:`RandomNeighborFlow` — untyped uniform neighbors inside one
  relationship's subgraph (the "w/o hybrid aggregation" ablation of
  Table VII).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.graph.multiplex import MultiplexHeteroGraph
from repro.graph.schema import MetapathScheme
from repro.nn.aggregators import make_aggregator
from repro.nn.layers import Embedding
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor
from repro.sampling.adjacency import TypedAdjacencyCache, sample_uniform_neighbors
from repro.sampling.exploration import RandomizedExploration
from repro.sampling.neighbor_sampler import MetapathNeighborSampler
from repro.utils.rng import SeedLike, as_rng, spawn_rng


def aggregate_layers(
    layers: Sequence[np.ndarray],
    fanouts: Sequence[int],
    features: Embedding,
    aggregators: ModuleList,
) -> Tensor:
    """Collapse layered neighborhoods into one embedding per batch node.

    ``layers[j]`` holds node ids of shape (B, prod(fanouts[:j])); sweep k
    collapses the deepest remaining layer into its parents using
    ``aggregators[k]``, realising the recursion of Eq. 3.  Returns (B, d).
    """
    batch = len(layers[0])
    depth = len(layers) - 1
    assert len(aggregators) == depth, "one aggregator per sweep"
    embeddings = [features(layer.reshape(batch, -1)) for layer in layers]
    for k in range(depth):
        aggregator = aggregators[k]
        collapsed = []
        for j in range(len(embeddings) - 1):
            parent = embeddings[j]
            child = embeddings[j + 1]
            group = parent.shape[1]
            fanout = fanouts[j]
            parent_flat = parent.reshape(batch * group, -1)
            child_grouped = child.reshape(batch * group, fanout, -1)
            out = aggregator(parent_flat, child_grouped)
            collapsed.append(out.reshape(batch, group, -1))
        embeddings = collapsed
    return embeddings[0].reshape(batch, -1)


class MetapathFlow(Module):
    """One aggregation flow guided by a predefined metapath scheme."""

    def __init__(self, graph: MultiplexHeteroGraph, scheme: MetapathScheme,
                 features: Embedding, edge_dim: int, fanouts: Sequence[int],
                 aggregator: str = "mean", rng: SeedLike = None,
                 adjacency: Optional[TypedAdjacencyCache] = None):
        super().__init__()
        rng = as_rng(rng)
        self.scheme = scheme
        self.fanouts = list(fanouts)[: len(scheme)]
        if len(self.fanouts) < len(scheme):
            raise ValueError(
                f"scheme {scheme.describe()} needs {len(scheme)} fanouts, "
                f"got {len(self.fanouts)}"
            )
        self._features = features
        self._sampler = MetapathNeighborSampler(
            graph, scheme, self.fanouts, rng=spawn_rng(rng), adjacency=adjacency
        )
        self.aggregators = ModuleList(
            [
                make_aggregator(aggregator, edge_dim, edge_dim, rng=spawn_rng(rng))
                for _ in range(len(scheme))
            ]
        )

    @property
    def label(self) -> str:
        """Short identifier used when reading out attention scores."""
        return "-".join(t[0].upper() for t in self.scheme.node_types)

    @property
    def start_type(self) -> str:
        return self.scheme.start_type

    def forward(self, nodes: np.ndarray) -> Tensor:
        layers = self._sampler.sample_layers(nodes)
        return aggregate_layers(layers, self.fanouts, self._features, self.aggregators)


class ExplorationFlow(Module):
    """The P_rand flow fed by randomized inter-relationship exploration.

    One instance (one parameter stack) is shared across relationships,
    matching the paper's "learnable weights are shared among the randomized
    sample neighbors".
    """

    label = "random"

    def __init__(self, graph: MultiplexHeteroGraph, features: Embedding,
                 edge_dim: int, depth: int, fanout: int,
                 aggregator: str = "mean", rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.depth = depth
        self.fanouts = [fanout] * depth
        self._features = features
        self._exploration = RandomizedExploration(graph, rng=spawn_rng(rng))
        self.aggregators = ModuleList(
            [
                make_aggregator(aggregator, edge_dim, edge_dim, rng=spawn_rng(rng))
                for _ in range(depth)
            ]
        )

    def forward(self, nodes: np.ndarray) -> Tensor:
        layers = self._exploration.sample_layers(nodes, self.depth, self.fanouts)
        return aggregate_layers(layers, self.fanouts, self._features, self.aggregators)


class RandomNeighborFlow(Module):
    """Untyped uniform-neighbor aggregation inside one relationship.

    Used by the "w/o hybrid aggregation flows" ablation: metapath guidance is
    replaced by plain random sampling aggregation in g_r.
    """

    label = "random-neighbor"

    def __init__(self, graph: MultiplexHeteroGraph, relation: str,
                 features: Embedding, edge_dim: int, depth: int, fanout: int,
                 aggregator: str = "mean", rng: SeedLike = None):
        super().__init__()
        rng = as_rng(rng)
        self.relation = relation
        self.depth = depth
        self.fanouts = [fanout] * depth
        self._features = features
        self._indptr, self._indices = graph.csr(relation)
        self._rng = spawn_rng(rng)
        self.aggregators = ModuleList(
            [
                make_aggregator(aggregator, edge_dim, edge_dim, rng=spawn_rng(rng))
                for _ in range(depth)
            ]
        )

    def forward(self, nodes: np.ndarray) -> Tensor:
        nodes = np.asarray(nodes, dtype=np.int64)
        layers = [nodes]
        frontier = nodes
        for fanout in self.fanouts:
            sampled = sample_uniform_neighbors(
                self._indptr, self._indices, frontier.reshape(-1), fanout, self._rng
            )
            frontier = sampled.reshape(len(nodes), -1)
            layers.append(frontier)
        return aggregate_layers(layers, self.fanouts, self._features, self.aggregators)
