"""Configuration dataclasses for HybridGNN and its trainer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import TrainingError


@dataclass(frozen=True)
class HybridGNNConfig:
    """Hyper-parameters of the HybridGNN model (Sect. III / IV-C).

    Parameters
    ----------
    base_dim:
        d_m — dimension of the base embedding e_v and of the final
        relationship-specific embedding e*_{v,r}.
    edge_dim:
        d_h = d_k — dimension of edge embeddings inside the hybrid
        aggregation flows and both attention levels.
    metapath_fanouts:
        Neighbors sampled per hop of a metapath flow; truncated to each
        scheme's length (a scheme of length 2 uses the first two entries).
    exploration_depth:
        L — depth of the randomized inter-relationship exploration
        (Table V sweeps this).
    exploration_fanout:
        Neighbors sampled per exploration level.
    aggregator:
        ``mean`` (the paper's default), ``pool`` or ``lstm``.
    num_negatives:
        Negative samples per positive pair in the skip-gram loss.
    use_metapath_attention / use_relationship_attention /
    use_randomized_exploration / use_hybrid_flows:
        Ablation switches matching the four variants of Table VII.  With
        ``use_hybrid_flows=False`` the metapath-guided flows are replaced by
        a single untyped random-neighbor aggregation inside each
        relationship's subgraph.
    eval_samples:
        Number of stochastic forward passes averaged when materialising
        embeddings for evaluation (neighborhood sampling is random; averaging
        reduces the variance of the cached embeddings).
    """

    base_dim: int = 32
    edge_dim: int = 16
    metapath_fanouts: Tuple[int, ...] = (5, 3, 2, 2, 2, 2)
    exploration_depth: int = 2
    exploration_fanout: int = 5
    aggregator: str = "mean"
    num_negatives: int = 5
    use_metapath_attention: bool = True
    use_relationship_attention: bool = True
    use_randomized_exploration: bool = True
    use_hybrid_flows: bool = True
    random_flow_depth: int = 2
    eval_samples: int = 3

    def __post_init__(self):
        if self.base_dim <= 0 or self.edge_dim <= 0:
            raise TrainingError("embedding dimensions must be positive")
        if self.exploration_depth < 1:
            raise TrainingError("exploration_depth must be >= 1")
        if self.exploration_fanout < 1 or self.random_flow_depth < 1:
            raise TrainingError("fanouts and depths must be >= 1")
        if self.num_negatives < 1:
            raise TrainingError("num_negatives must be >= 1")
        if not self.metapath_fanouts or any(f < 1 for f in self.metapath_fanouts):
            raise TrainingError("metapath_fanouts must be positive")
        if self.aggregator not in ("mean", "pool", "lstm"):
            raise TrainingError(f"unknown aggregator {self.aggregator!r}")
        if self.eval_samples < 1:
            raise TrainingError("eval_samples must be >= 1")
        if not (self.use_hybrid_flows or self.use_randomized_exploration):
            raise TrainingError(
                "at least one of hybrid flows / randomized exploration must be enabled"
            )


@dataclass(frozen=True)
class TrainerConfig:
    """Training-loop settings (Sect. IV-C)."""

    epochs: int = 20
    batch_size: int = 256
    learning_rate: float = 5e-3
    num_walks: int = 4
    walk_length: int = 10
    window: int = 3
    patience: int = 5
    max_batches_per_epoch: int = 0  # 0 = no cap; caps epoch cost in smoke runs
    resample_walks_every: int = 0  # 0 = walk once, reuse pairs every epoch
    verbose: bool = False

    def __post_init__(self):
        if self.epochs < 1:
            raise TrainingError("epochs must be >= 1")
        if self.batch_size < 1:
            raise TrainingError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise TrainingError("learning_rate must be positive")
        if self.num_walks < 1 or self.walk_length < 2:
            raise TrainingError("walk settings must allow at least one hop")
        if self.window < 1:
            raise TrainingError("window must be >= 1")
        if self.patience < 1:
            raise TrainingError("patience must be >= 1")
        if self.resample_walks_every < 0:
            raise TrainingError("resample_walks_every must be >= 0")
