"""High-level recommendation interface over a trained relation embedder.

Wraps any model satisfying the :class:`~repro.eval.link_prediction.
RelationEmbedder` protocol (HybridGNN or any baseline) into the operation a
recommender system actually serves: "top-K candidates for this node under
this relationship", with training edges filtered out.

The serving hot path is delegated to
:class:`repro.serving.BatchServingEngine` (tables fetched once per relation,
mask-based candidate pools, batched matmul scoring, ``argpartition`` top-K).
The pre-engine scalar implementations are preserved as ``_reference_*``
methods: they are the independent slow truth the ``serving`` differential
oracles (:mod:`repro.verify.oracles`) compare the engine against, and the
baseline the serving benchmarks measure speedups from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.link_prediction import RelationEmbedder
from repro.graph.multiplex import MultiplexHeteroGraph


@dataclass(frozen=True)
class Recommendation:
    """One scored candidate."""

    node: int
    score: float


class Recommender:
    """Top-K recommendation service over a trained model.

    Parameters
    ----------
    model:
        Anything with ``node_embeddings(nodes, relation)``.
    graph:
        The *training* graph: its edges define what the user has already
        interacted with (excluded from recommendations) and its node types
        define candidate pools.
    engine_options:
        Extra keyword arguments forwarded to
        :class:`repro.serving.BatchServingEngine` when the lazy engine is
        first built — e.g. ``index="ivf"``,
        ``index_params={"nprobe": 32}`` to serve through an approximate
        retrieval backend (the ``repro recommend`` CLI's ``--index`` /
        ``--nprobe`` / ``--ef-search`` flags arrive here).
    """

    def __init__(self, model: RelationEmbedder, graph: MultiplexHeteroGraph,
                 engine_options: Optional[dict] = None):
        self.model = model
        self.graph = graph
        self.engine_options = dict(engine_options or {})
        self._engine = None

    @property
    def engine(self):
        """The lazily constructed batch serving engine."""
        if self._engine is None:
            from repro.serving import BatchServingEngine

            self._engine = BatchServingEngine(
                self.model, self.graph, **self.engine_options
            )
        return self._engine

    # ------------------------------------------------------------------
    def candidates(self, source: int, relation: str,
                   target_type: Optional[str] = None,
                   exclude_known: bool = True) -> np.ndarray:
        """The candidate pool for ``source`` under ``relation``.

        Defaults to every node of ``target_type`` minus the source itself
        and, when ``exclude_known``, its current neighbors.  When
        ``target_type`` is omitted it is inferred from the source's
        existing neighbors, falling back to the relationship's schema-level
        endpoint-type map for cold-start nodes; a fully unresolvable
        source yields an empty pool instead of an exception.
        """
        if target_type is None:
            target_type = self.engine.pools.target_type_for(source, relation)
            if target_type is None:
                return np.empty(0, dtype=np.int64)
        pool = self.graph.nodes_of_type(target_type)
        banned = {source}
        if exclude_known:
            banned.update(self.graph.neighbors(source, relation).tolist())
        keep = np.fromiter(
            (int(c) not in banned for c in pool), dtype=bool, count=len(pool)
        )
        return pool[keep]

    def score(self, source: int, targets: Sequence[int], relation: str) -> np.ndarray:
        """Dot-product scores of ``source`` against each target."""
        targets = np.asarray(targets, dtype=np.int64)
        source_emb = self.model.node_embeddings(np.asarray([source]), relation)[0]
        target_emb = self.model.node_embeddings(targets, relation)
        return target_emb @ source_emb

    # ------------------------------------------------------------------
    # Serving API (engine-backed)
    # ------------------------------------------------------------------
    def recommend(self, source: int, relation: str, k: int = 10,
                  target_type: Optional[str] = None,
                  exclude_known: bool = True) -> List[Recommendation]:
        """Top-``k`` recommendations for ``source`` under ``relation``."""
        return self.engine.recommend(
            int(source), relation, k=k, target_type=target_type,
            exclude_known=exclude_known,
        )

    def recommend_batch(self, sources: Sequence[int], relation: str, k: int = 10,
                        target_type: Optional[str] = None,
                        exclude_known: bool = True) -> List[List[Recommendation]]:
        """Top-``k`` lists for several sources.

        The relation's embedding table really is fetched once per batch
        (LRU-cached across batches) and the whole batch is scored as one
        matrix multiply — see :class:`repro.serving.BatchServingEngine`.
        """
        return self.engine.recommend_batch(
            sources, relation, k=k, target_type=target_type,
            exclude_known=exclude_known,
        )

    def similar_nodes(self, node: int, relation: str, k: int = 10) -> List[Recommendation]:
        """Top-``k`` same-typed nodes by embedding cosine similarity."""
        return self.engine.similar_nodes(int(node), relation, k=k)

    # ------------------------------------------------------------------
    # Scalar reference paths (pre-engine implementations, kept verbatim as
    # the differential-oracle truth; see repro.verify.oracles)
    # ------------------------------------------------------------------
    def _reference_recommend(self, source: int, relation: str, k: int = 10,
                             target_type: Optional[str] = None,
                             exclude_known: bool = True) -> List[Recommendation]:
        """One source at a time: set-built pool, gathered embeddings, full sort."""
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        pool = self.candidates(source, relation, target_type, exclude_known)
        if len(pool) == 0:
            return []
        scores = self.score(source, pool, relation)
        order = np.argsort(-scores, kind="stable")[:k]
        return [
            Recommendation(node=int(pool[i]), score=float(scores[i]))
            for i in order
        ]

    def _reference_recommend_batch(self, sources: Sequence[int], relation: str,
                                   k: int = 10,
                                   target_type: Optional[str] = None,
                                   exclude_known: bool = True
                                   ) -> List[List[Recommendation]]:
        """The historical loop: embeddings re-fetched for every source."""
        return [
            self._reference_recommend(
                int(source), relation, k=k, target_type=target_type,
                exclude_known=exclude_known,
            )
            for source in sources
        ]

    def _reference_similar_nodes(self, node: int, relation: str,
                                 k: int = 10) -> List[Recommendation]:
        """Per-node cosine similarity against a freshly gathered pool."""
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        pool = self.graph.nodes_of_type(self.graph.node_type(node))
        pool = pool[pool != node]
        if len(pool) == 0:
            return []
        node_emb = self.model.node_embeddings(np.asarray([node]), relation)[0]
        pool_emb = self.model.node_embeddings(pool, relation)
        norms = np.linalg.norm(pool_emb, axis=1) * np.linalg.norm(node_emb)
        scores = (pool_emb @ node_emb) / np.maximum(norms, 1e-12)
        order = np.argsort(-scores, kind="stable")[:k]
        return [
            Recommendation(node=int(pool[i]), score=float(scores[i]))
            for i in order
        ]
