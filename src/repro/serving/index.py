"""Swappable vector-index layer: sub-linear top-K candidate retrieval.

``BatchServingEngine`` originally scored **every** candidate in the pool
(``sources @ pool.T``) — linear in pool size, which is exactly what
BENCH_serving.json showed dominating serving time (``serving.topk`` ~69%,
``serving.score`` ~28%).  This module makes the retrieval stage a swappable
:class:`VectorIndex` behind a uniform ``search`` API, mirroring the
production pattern of a vector database behind a recommender service:

- :class:`ExactIndex` — the brute-force oracle.  Blocked matmul over the
  whole pool plus the stable top-K extractor, bit-identical to the
  pre-index engine (and therefore to the scalar ``_reference_*`` paths).
- :class:`IVFIndex` — inverted-file index.  K-means partitions the pool
  into ~sqrt(N) clusters (trained on a deterministic sample); a query
  scores the ``nprobe`` clusters whose centroids have the highest inner
  product and ranks only their members.  Cluster members are stored
  contiguously so probing is slice concatenation, not fancy gathers.
- :class:`HNSWIndex` — hierarchical navigable-small-world proximity
  graph with greedy beam descent.  Maximum-inner-product search is first
  reduced *exactly* to nearest-neighbor search by augmenting each vector
  with ``sqrt(max_norm^2 - |x|^2)`` (queries get a zero coordinate), so
  the graph is built over a true metric and recall is a property of the
  traversal alone.  Construction is sequential but fully deterministic
  under the seed.

All three return **exact dot-product scores** for the candidates they
surface — approximation lives only in *which* candidates are scored, so
``recall@K`` against :class:`ExactIndex` fully characterises the error
(measured by ``repro verify --suite index`` and the benchmark sweep in
``benchmarks/bench_serving.py``).

Determinism contract: ``build`` and ``search`` are pure functions of
(vectors, parameters, seed).  Ties are broken toward the lowest pool
position everywhere, matching ``np.argsort(-scores, kind="stable")``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import as_rng

__all__ = [
    "VectorIndex",
    "ExactIndex",
    "IVFIndex",
    "HNSWIndex",
    "INDEX_BACKENDS",
    "make_index",
    "save_index",
    "load_index",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)

_INDEX_META_KEY = "__meta__"
_INDEX_FORMAT = "repro-index"


# ======================================================================
# Stable top-K extraction (shared by the engine and every backend)
# ======================================================================
def _stable_topk(scores: np.ndarray, valid: np.ndarray,
                 k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` valid indices, ordered exactly like the scalar reference.

    Reproduces ``pool[np.argsort(-scores[pool], kind="stable")[:k]]`` for
    ``pool = np.flatnonzero(valid)`` without sorting the whole pool:
    ``argpartition`` isolates the top block, boundary ties are resolved
    toward the lowest node ids (what a stable sort does), and only the
    k candidates are ordered.
    """
    num_valid = int(np.count_nonzero(valid))
    if num_valid == 0:
        return _EMPTY_IDS, _EMPTY_SCORES
    take = min(k, num_valid)
    if take == num_valid:
        chosen = np.flatnonzero(valid)
    else:
        masked = np.where(valid, scores, -np.inf)
        cutoff = len(masked) - take
        kth_value = masked[np.argpartition(masked, cutoff)[cutoff:]].min()
        above = np.flatnonzero(masked > kth_value)
        ties = np.flatnonzero(valid & (scores == kth_value))
        chosen = np.concatenate([above, ties[: take - len(above)]])
    # Descending score; ascending node id among exact ties (stable order).
    order = np.lexsort((chosen, -scores[chosen]))
    top = chosen[order[:take]]
    return top, scores[top]


def _stable_topk_block(scores: np.ndarray, valid: Optional[np.ndarray],
                       k: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Row-wise :func:`_stable_topk` of a (block, width) score matrix.

    ``valid=None`` means the caller already scattered ``-inf`` over the
    excluded columns of ``scores`` (the hot path does this in place on the
    matmul output, skipping a boolean matrix entirely).

    Every row class is handled vectorised — no per-row Python fallback:

    - rows whose k-th largest value is unique across the boundary select
      their top-K *set* with one row-wise ``partition`` plus a ``>=`` mask;
    - rows whose cutoff value ties across the boundary resolve the tie
      toward the lowest column ids with a running count over the tied
      columns (what the stable reference sort does), after which they join
      the first class;
    - rows with fewer than ``k`` rankable entries (tiny pools, heavy
      exclusion) are ordered with one batched stable lexsort.
    """
    block, width = scores.shape
    out: List[Tuple[np.ndarray, np.ndarray]] = [None] * block
    if block == 0:
        return out
    masked = scores if valid is None else np.where(valid, scores, -np.inf)
    if k < width:
        cut = width - k
        kth = np.partition(masked, cut, axis=1)[:, cut:cut + 1]
        finite = kth[:, 0] > -np.inf
        select = masked >= kth
        counts = np.count_nonzero(select, axis=1)
        tie_rows = np.flatnonzero(finite & (counts != k))
        if len(tie_rows):
            # Boundary ties: keep everything strictly above the cutoff and
            # the first (k - #above) tied columns in ascending-id order.
            above = masked[tie_rows] > kth[tie_rows]
            ties = select[tie_rows] & ~above
            budget = k - np.count_nonzero(above, axis=1)
            keep = np.cumsum(ties, axis=1) <= budget[:, None]
            select[tie_rows] = above | (ties & keep)
        full_rows = np.flatnonzero(finite)
        small_rows = np.flatnonzero(~finite)
    else:
        full_rows = np.empty(0, dtype=np.int64)
        small_rows = np.arange(block)
    if len(full_rows):
        # Exactly k selected per row: np.nonzero yields ascending columns,
        # so a final stable argsort by descending score reproduces the
        # reference order (score desc, id asc among exact ties).
        cols = np.nonzero(select[full_rows])[1].reshape(len(full_rows), k)
        chosen = np.take_along_axis(masked[full_rows], cols, axis=1)
        order = np.argsort(-chosen, axis=1, kind="stable")
        top = np.take_along_axis(cols, order, axis=1)
        top_scores = np.take_along_axis(chosen, order, axis=1)
        for j, row in enumerate(full_rows.tolist()):
            out[row] = (top[j], top_scores[j])
    if len(small_rows):
        # Fewer than k rankable entries: one batched stable lexsort orders
        # each row (score desc, id asc), with rankable entries — including
        # genuinely -inf-scored but valid ones — ahead of excluded ones.
        sub = masked[small_rows]
        invalid = ~(sub > -np.inf) if valid is None else ~valid[small_rows]
        keys = np.where(invalid, np.inf, -sub)
        order = np.lexsort((invalid, keys), axis=-1)
        takes = np.minimum(k, np.count_nonzero(~invalid, axis=1))
        originals = scores[small_rows]
        for j, row in enumerate(small_rows.tolist()):
            top = order[j, : takes[j]]
            out[row] = (top, originals[j, top])
    return out


def _stable_topk_ids(scores: np.ndarray, positions: np.ndarray,
                     k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stable top-``k`` over an *unordered* candidate list.

    Same ordering contract as :func:`_stable_topk` (descending score,
    ascending pool position among exact ties, lowest positions win
    boundary ties) but for candidates that arrive in arbitrary order —
    e.g. concatenated IVF cluster slices or an HNSW beam.
    """
    count = len(scores)
    if count == 0:
        return _EMPTY_IDS, _EMPTY_SCORES
    take = min(k, count)
    if take == count:
        chosen = np.arange(count)
    else:
        cutoff = count - take
        kth_value = scores[np.argpartition(scores, cutoff)[cutoff:]].min()
        above = np.flatnonzero(scores > kth_value)
        tied = np.flatnonzero(scores == kth_value)
        # Lowest pool positions win the boundary tie, wherever they sit in
        # the candidate list.
        tied = tied[np.argsort(positions[tied], kind="stable")]
        chosen = np.concatenate([above, tied[: take - len(above)]])
    order = np.lexsort((positions[chosen], -scores[chosen]))
    top = chosen[order]
    return positions[top], scores[top]


# ======================================================================
# The index abstraction
# ======================================================================
class VectorIndex:
    """Top-K maximum-inner-product retrieval over a fixed vector pool.

    ``build(vectors)`` ingests the pool (row ``i`` is pool position ``i``);
    ``search(queries, k, exclude=...)`` returns one ``(positions, scores)``
    pair per query, where positions index into the built pool and scores
    are exact dot products.  ``last_candidates`` reports how many
    candidates the previous ``search`` actually scored (the sub-linearity
    measure).  Subclasses must be deterministic functions of
    (vectors, params, seed).
    """

    backend = "abstract"
    _PARAMS: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.dim = 0
        self.size = 0
        self.last_candidates = 0

    # -- lifecycle ------------------------------------------------------
    def build(self, vectors: np.ndarray) -> "VectorIndex":
        raise NotImplementedError

    def search(self, queries: np.ndarray, k: int,
               exclude: Optional[Sequence[Optional[np.ndarray]]] = None
               ) -> List[Tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError

    # -- persistence ----------------------------------------------------
    def params(self) -> Dict[str, object]:
        """The constructor parameters (JSON-serialisable)."""
        return {name: getattr(self, name) for name in self._PARAMS}

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Arrays needed to reconstruct the built index."""
        raise NotImplementedError

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def meta(self) -> Dict[str, object]:
        """Descriptive header used for persistence and C007 validation."""
        return {
            "format": _INDEX_FORMAT,
            "version": 1,
            "backend": self.backend,
            "dim": int(self.dim),
            "size": int(self.size),
            "params": self.params(),
        }

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _as_queries(queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        return queries

    @staticmethod
    def _drop_excluded(positions: np.ndarray, scores: np.ndarray,
                       excluded: Optional[np.ndarray]
                       ) -> Tuple[np.ndarray, np.ndarray]:
        if excluded is None or len(excluded) == 0 or len(positions) == 0:
            return positions, scores
        keep = ~np.isin(positions, excluded, assume_unique=False)
        return positions[keep], scores[keep]

    def _require_built(self) -> None:
        if self.size == 0 and self.dim == 0:
            raise ReproError(
                f"{type(self).__name__}.search called before build()"
            )


class ExactIndex(VectorIndex):
    """Brute-force oracle: score the whole pool, extract stable top-K.

    Bit-identical to the pre-index engine hot path (same blocked matmul,
    same ``-inf`` exclusion scatter, same extractor), which makes it the
    ground truth every approximate backend's recall is measured against.
    """

    backend = "exact"
    _PARAMS = ("block_size",)

    def __init__(self, block_size: int = 64):
        super().__init__()
        self.block_size = max(1, int(block_size))
        self._vectors = np.empty((0, 0), dtype=np.float64)

    def build(self, vectors: np.ndarray) -> "ExactIndex":
        self._vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        self.size, self.dim = self._vectors.shape
        return self

    def search(self, queries, k, exclude=None):
        self._require_built()
        queries = self._as_queries(queries)
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        self.last_candidates = 0
        for start in range(0, len(queries), self.block_size):
            chunk = queries[start:start + self.block_size]
            if len(chunk) == 1:
                # dgemv for single queries, dgemm for blocks — the same
                # BLAS call shapes the engine hot path uses, keeping this
                # backend bit-identical to the pre-index engine.
                scores = (self._vectors @ chunk[0])[None, :]
            else:
                scores = chunk @ self._vectors.T
            if exclude is not None:
                for j in range(len(chunk)):
                    excluded = exclude[start + j]
                    if excluded is not None and len(excluded):
                        scores[j, excluded] = -np.inf
            self.last_candidates += int(np.count_nonzero(scores > -np.inf))
            results.extend(_stable_topk_block(scores, None, k))
        return results

    def state_arrays(self):
        return {"vectors": self._vectors}

    def load_state_arrays(self, arrays):
        self.build(arrays["vectors"])


class IVFIndex(VectorIndex):
    """Inverted-file index: k-means cluster pruning, pure numpy.

    ``nlist`` defaults to ~sqrt(N).  Training runs Lloyd iterations on a
    deterministic sample of the pool (``train_size`` rows), then a single
    blocked pass assigns every vector to its nearest centroid.  Vectors
    are stored re-ordered by cluster so probing a cluster is one
    contiguous slice — per-query work is ``O(nlist + N * nprobe / nlist)``
    instead of ``O(N)``.
    """

    backend = "ivf"
    _PARAMS = ("nlist", "nprobe", "train_size", "iters", "seed")

    def __init__(self, nlist: Optional[int] = None, nprobe: int = 16,
                 train_size: int = 65536, iters: int = 8, seed: int = 0):
        super().__init__()
        self.nlist = nlist
        self.nprobe = max(1, int(nprobe))
        self.train_size = max(1, int(train_size))
        self.iters = max(1, int(iters))
        self.seed = int(seed)
        self._centroids = np.empty((0, 0), dtype=np.float64)
        self._positions = _EMPTY_IDS      # pool positions in cluster order
        self._offsets = np.zeros(1, dtype=np.int64)
        self._vectors = np.empty((0, 0), dtype=np.float64)  # cluster order

    # -- construction ---------------------------------------------------
    @staticmethod
    def _assign(vectors: np.ndarray, centroids: np.ndarray,
                block: int = 16384) -> np.ndarray:
        """Nearest centroid per vector (squared L2), blocked for memory."""
        half_norms = 0.5 * np.einsum("ij,ij->i", centroids, centroids)
        assignment = np.empty(len(vectors), dtype=np.int64)
        for start in range(0, len(vectors), block):
            chunk = vectors[start:start + block]
            # argmin ||x - c||^2 == argmax (x.c - |c|^2/2); |x|^2 is
            # constant per row and drops out.
            affinity = chunk @ centroids.T - half_norms
            assignment[start:start + block] = np.argmax(affinity, axis=1)
        return assignment

    def build(self, vectors: np.ndarray) -> "IVFIndex":
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        size, dim = vectors.shape
        nlist = self.nlist
        if nlist is None:
            nlist = int(round(np.sqrt(size)))
        nlist = int(min(max(1, nlist), size)) if size else 1
        rng = as_rng(self.seed)
        if size == 0:
            self._centroids = np.empty((0, dim), dtype=np.float64)
            self._positions = _EMPTY_IDS
            self._offsets = np.zeros(1, dtype=np.int64)
            self._vectors = vectors
            self.size, self.dim = size, dim
            return self
        # Train on a deterministic sample; tiny pools train on everything.
        if size > self.train_size:
            sample = vectors[rng.choice(size, size=self.train_size,
                                        replace=False)]
        else:
            sample = vectors
        centroids = sample[rng.choice(len(sample), size=nlist, replace=False)]
        sums = np.zeros((nlist, dim))  # reused across k-means iterations
        for _ in range(self.iters):
            assignment = self._assign(sample, centroids)
            sums.fill(0.0)
            np.add.at(sums, assignment, sample)
            counts = np.bincount(assignment, minlength=nlist)
            occupied = counts > 0
            centroids = centroids.copy()
            centroids[occupied] = (
                sums[occupied] / counts[occupied][:, None]
            )
            if (~occupied).any():
                # Re-seed empty clusters on deterministic sample rows so
                # every centroid stays meaningful.
                refill = rng.choice(len(sample), size=int((~occupied).sum()))
                centroids[~occupied] = sample[refill]
        assignment = self._assign(vectors, centroids)
        # Stable sort keeps positions ascending inside each cluster, which
        # is what the lowest-id tie-break downstream relies on.
        order = np.argsort(assignment, kind="stable")
        counts = np.bincount(assignment, minlength=nlist)
        self._centroids = centroids
        self._positions = order.astype(np.int64)
        offsets = np.zeros(nlist + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._offsets = offsets
        self._vectors = np.ascontiguousarray(vectors[order])
        self.size, self.dim = size, dim
        return self

    # -- search ---------------------------------------------------------
    def search(self, queries, k, exclude=None):
        self._require_built()
        queries = self._as_queries(queries)
        nlist = len(self._centroids)
        nprobe = min(self.nprobe, nlist)
        affinity = queries @ self._centroids.T
        if nprobe < nlist:
            probes = np.argpartition(-affinity, nprobe - 1, axis=1)[:, :nprobe]
        else:
            probes = np.broadcast_to(np.arange(nlist), affinity.shape).copy()
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        self.last_candidates = 0
        for j in range(len(queries)):
            # Contiguous cluster slices: scoring is a few dgemv calls over
            # resident memory, never a row gather of the full pool.
            clusters = np.sort(probes[j])
            starts = self._offsets[clusters]
            ends = self._offsets[clusters + 1]
            spans = [(s, e) for s, e in zip(starts.tolist(), ends.tolist())
                     if e > s]
            if not spans:
                results.append((_EMPTY_IDS, _EMPTY_SCORES))
                continue
            scores = np.concatenate(
                [self._vectors[s:e] @ queries[j] for s, e in spans]
            )
            positions = np.concatenate(
                [self._positions[s:e] for s, e in spans]
            )
            excluded = None if exclude is None else exclude[j]
            positions, scores = self._drop_excluded(positions, scores, excluded)
            self.last_candidates += len(positions)
            results.append(_stable_topk_ids(scores, positions, k))
        return results

    def state_arrays(self):
        return {
            "centroids": self._centroids,
            "positions": self._positions,
            "offsets": self._offsets,
            "vectors": self._vectors,
        }

    def load_state_arrays(self, arrays):
        self._centroids = np.asarray(arrays["centroids"], dtype=np.float64)
        self._positions = np.asarray(arrays["positions"], dtype=np.int64)
        self._offsets = np.asarray(arrays["offsets"], dtype=np.int64)
        self._vectors = np.asarray(arrays["vectors"], dtype=np.float64)
        self.size, self.dim = self._vectors.shape


class HNSWIndex(VectorIndex):
    """Hierarchical navigable-small-world graph, pure numpy + heaps.

    Maximum inner product is reduced exactly to nearest-neighbor search by
    the norm-augmentation transform: every pool vector gains a coordinate
    ``sqrt(max_norm^2 - |x|^2)`` and queries gain a zero, after which
    ``argmin ||x' - q'||`` equals ``argmax x.q``.  The layered graph is
    then built over genuine L2 geometry.

    Construction inserts points one at a time (deterministic level draws
    from ``seed``, candidate beams of width ``ef_construction``, ``m``
    links per node, ``2m`` on the ground layer); search descends greedily
    through the upper layers and runs a best-first beam of width
    ``max(ef_search, k + |exclusions|)`` on the ground layer.
    """

    backend = "hnsw"
    _PARAMS = ("m", "ef_construction", "ef_search", "seed")

    def __init__(self, m: int = 16, ef_construction: int = 96,
                 ef_search: int = 96, seed: int = 0):
        super().__init__()
        self.m = max(2, int(m))
        self.ef_construction = max(self.m, int(ef_construction))
        self.ef_search = max(1, int(ef_search))
        self.seed = int(seed)
        self._aug = np.empty((0, 0), dtype=np.float64)
        self._aug_norms = _EMPTY_SCORES
        self._vectors = np.empty((0, 0), dtype=np.float64)
        self._levels = _EMPTY_IDS
        self._entry = -1
        self._max_level = -1
        # Per level: CSR adjacency (indptr, indices) after build.
        self._indptr: List[np.ndarray] = []
        self._indices: List[np.ndarray] = []

    # -- geometry -------------------------------------------------------
    def _augment(self, vectors: np.ndarray) -> np.ndarray:
        norms2 = np.einsum("ij,ij->i", vectors, vectors)
        ceiling = float(norms2.max()) if len(norms2) else 0.0
        pad = np.sqrt(np.maximum(ceiling - norms2, 0.0))
        return np.concatenate([vectors, pad[:, None]], axis=1)

    def _dists(self, nodes: np.ndarray, query: np.ndarray) -> np.ndarray:
        # Comparable distance: ||x - q||^2 - ||q||^2 = |x|^2 - 2 x.q
        return self._aug_norms[nodes] - 2.0 * (self._aug[nodes] @ query)

    # -- construction ---------------------------------------------------
    def build(self, vectors: np.ndarray) -> "HNSWIndex":
        vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        size, dim = vectors.shape
        self._vectors = vectors
        self._aug = self._augment(vectors)
        self._aug_norms = np.einsum("ij,ij->i", self._aug, self._aug)
        self.size, self.dim = size, dim
        rng = as_rng(self.seed)
        level_mult = 1.0 / np.log(self.m)
        draws = rng.random(size) if size else np.empty(0)
        # Same -log(max(draws, eps)) * mult -> floor chain, computed in
        # place: identical float sequence, no intermediate copies.
        levels = np.maximum(draws, 1e-12)
        np.log(levels, out=levels)
        np.negative(levels, out=levels)
        np.multiply(levels, level_mult, out=levels)
        np.floor(levels, out=levels)
        self._levels = levels.astype(np.int64)
        if size == 0:
            self._entry, self._max_level = -1, -1
            self._indptr, self._indices = [], []
            return self
        max_level = int(self._levels.max())
        # Mutable adjacency during construction: per level, per node, a
        # python list of neighbor ids.
        graph: List[Dict[int, List[int]]] = [
            {} for _ in range(max_level + 1)
        ]
        self._graph = graph
        self._entry = 0
        self._max_level = int(self._levels[0])
        for level in range(self._levels[0] + 1):
            graph[level][0] = []
        for node in range(1, size):
            self._insert(node)
        # Freeze to CSR per level for fast search and persistence.
        self._indptr, self._indices = [], []
        degrees = np.zeros(size + 1, dtype=np.int64)  # reused per level
        for level in range(max_level + 1):
            members = sorted(graph[level])
            degrees.fill(0)
            chunks = []
            for member in members:
                neighbors = graph[level][member]
                degrees[member + 1] = len(neighbors)
                chunks.append(np.asarray(neighbors, dtype=np.int64))
            # cumsum of an int64 buffer is already int64: no astype copy.
            indptr = np.cumsum(degrees)
            indices = (np.concatenate(chunks) if chunks else _EMPTY_IDS)
            self._indptr.append(indptr)
            self._indices.append(indices)
        del self._graph
        return self

    def _insert(self, node: int) -> None:
        import heapq

        query = self._aug[node]
        level = int(self._levels[node])
        entry = [(float(self._dists(np.asarray([self._entry]), query)[0]),
                  self._entry)]
        for layer in range(self._max_level, level, -1):
            entry = self._search_build_layer(query, entry, 1, layer)
        for layer in range(min(level, self._max_level), -1, -1):
            found = self._search_build_layer(
                query, entry, self.ef_construction, layer
            )
            cap = self.m if layer > 0 else 2 * self.m
            chosen = heapq.nsmallest(self.m, found)
            self._graph[layer][node] = [n for _, n in chosen]
            for dist, neighbor in chosen:
                links = self._graph[layer][neighbor]
                links.append(node)
                if len(links) > cap:
                    # Prune to the `cap` nearest (deterministic: distance,
                    # then lowest id).
                    arr = np.asarray(links, dtype=np.int64)
                    dists = self._dists(arr, self._aug[neighbor])
                    keep = np.lexsort((arr, dists))[:cap]
                    self._graph[layer][neighbor] = arr[keep].tolist()
            entry = found
        if level > self._max_level:
            for layer in range(self._max_level + 1, level + 1):
                self._graph[layer][node] = []
            self._max_level = level
            self._entry = node

    def _search_build_layer(self, query, entries, ef, layer):
        """Beam search over the *mutable* construction adjacency."""
        import heapq

        visited = {n for _, n in entries}
        candidates = list(entries)
        heapq.heapify(candidates)
        best = [(-d, n) for d, n in entries]
        heapq.heapify(best)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            neighbors = [
                n for n in self._graph[layer].get(node, ())
                if n not in visited
            ]
            if not neighbors:
                continue
            visited.update(neighbors)
            arr = np.asarray(neighbors, dtype=np.int64)
            dists = self._dists(arr, query)
            for d, n in zip(dists.tolist(), arr.tolist()):
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, n))
                    heapq.heappush(best, (-d, n))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negd, n) for negd, n in best)

    # -- search ---------------------------------------------------------
    def _neighbors_csr(self, layer: int, node: int) -> np.ndarray:
        indptr = self._indptr[layer]
        return self._indices[layer][indptr[node]:indptr[node + 1]]

    def _search_layer(self, query, entries, ef, layer):
        import heapq

        visited = {n for _, n in entries}
        candidates = list(entries)
        heapq.heapify(candidates)
        best = [(-d, n) for d, n in entries]
        heapq.heapify(best)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if dist > -best[0][0] and len(best) >= ef:
                break
            fresh = [
                n for n in self._neighbors_csr(layer, node).tolist()
                if n not in visited
            ]
            if not fresh:
                continue
            visited.update(fresh)
            arr = np.asarray(fresh, dtype=np.int64)
            dists = self._dists(arr, query)
            for d, n in zip(dists.tolist(), arr.tolist()):
                if len(best) < ef or d < -best[0][0]:
                    heapq.heappush(candidates, (d, n))
                    heapq.heappush(best, (-d, n))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-negd, n) for negd, n in best)

    def search(self, queries, k, exclude=None):
        self._require_built()
        queries = self._as_queries(queries)
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        self.last_candidates = 0
        if self.size == 0 or self._entry < 0:
            return [(_EMPTY_IDS, _EMPTY_SCORES)] * len(queries)
        zeros = np.zeros((len(queries), 1))
        augmented = np.concatenate(
            [np.asarray(queries, dtype=np.float64), zeros], axis=1
        )
        for j in range(len(queries)):
            query = augmented[j]
            excluded = None if exclude is None else exclude[j]
            ef = max(self.ef_search,
                     k + (0 if excluded is None else len(excluded)))
            entry = [(float(self._dists(np.asarray([self._entry]),
                                        query)[0]), self._entry)]
            for layer in range(self._max_level, 0, -1):
                entry = self._search_layer(query, entry, 1, layer)
            found = self._search_layer(query, entry, ef, 0)
            positions = np.asarray([n for _, n in found], dtype=np.int64)
            scores = self._vectors[positions] @ queries[j]
            positions, scores = self._drop_excluded(positions, scores, excluded)
            self.last_candidates += len(positions)
            results.append(_stable_topk_ids(scores, positions, k))
        return results

    def state_arrays(self):
        arrays = {
            "vectors": self._vectors,
            "levels": self._levels,
            "entry": np.asarray([self._entry, self._max_level],
                                dtype=np.int64),
        }
        for level, (indptr, indices) in enumerate(
            zip(self._indptr, self._indices)
        ):
            arrays[f"indptr_{level}"] = indptr
            arrays[f"indices_{level}"] = indices
        return arrays

    def load_state_arrays(self, arrays):
        vectors = np.asarray(arrays["vectors"], dtype=np.float64)
        self._vectors = vectors
        self._aug = self._augment(vectors)
        self._aug_norms = np.einsum("ij,ij->i", self._aug, self._aug)
        self.size, self.dim = vectors.shape
        self._levels = np.asarray(arrays["levels"], dtype=np.int64)
        self._entry, self._max_level = (
            int(arrays["entry"][0]), int(arrays["entry"][1])
        )
        self._indptr, self._indices = [], []
        level = 0
        while f"indptr_{level}" in arrays:
            self._indptr.append(
                np.asarray(arrays[f"indptr_{level}"], dtype=np.int64)
            )
            self._indices.append(
                np.asarray(arrays[f"indices_{level}"], dtype=np.int64)
            )
            level += 1


# ======================================================================
# Registry + persistence
# ======================================================================
INDEX_BACKENDS: Dict[str, type] = {
    ExactIndex.backend: ExactIndex,
    IVFIndex.backend: IVFIndex,
    HNSWIndex.backend: HNSWIndex,
}


def make_index(backend: str, **params) -> VectorIndex:
    """Construct a backend by name, ignoring parameters it doesn't take.

    The engine forwards one flat parameter dict (``nprobe``, ``ef_search``,
    ...) regardless of backend, so unknown keys are dropped rather than
    raised — an unknown *backend* is still an error.
    """
    try:
        cls = INDEX_BACKENDS[backend]
    except KeyError:
        raise ReproError(
            f"unknown index backend {backend!r}; "
            f"available: {sorted(INDEX_BACKENDS)}"
        ) from None
    accepted = {
        key: value for key, value in params.items() if key in cls._PARAMS
    }
    return cls(**accepted)


def save_index(index: VectorIndex, path: Union[str, Path],
               extra_meta: Optional[Dict[str, object]] = None) -> Path:
    """Persist a built index next to its embeddings (.npz, no pickle).

    Returns the path actually written (``.npz`` appended when missing).
    """
    from repro.core.persistence import _as_npz_path

    meta = index.meta()
    if extra_meta:
        meta.update(extra_meta)
    arrays = index.state_arrays()
    if _INDEX_META_KEY in arrays:
        raise ReproError(
            f"index state may not use the reserved key {_INDEX_META_KEY!r}"
        )
    target = _as_npz_path(path)
    np.savez_compressed(
        target, **arrays, **{_INDEX_META_KEY: np.asarray(json.dumps(meta))}
    )
    return target


def load_index(path: Union[str, Path]) -> Tuple[VectorIndex, Dict[str, object]]:
    """Load an index written by :func:`save_index`.

    Returns ``(index, meta)``; callers that attach the index to a live
    engine should validate ``meta`` against the current table/pool first
    (see :func:`repro.check.state.verify_index`).
    """
    from repro.core.persistence import _existing_npz_path

    with np.load(_existing_npz_path(path), allow_pickle=False) as data:
        if _INDEX_META_KEY not in data:
            raise ReproError(f"{path} is not a repro vector index")
        meta = json.loads(str(data[_INDEX_META_KEY]))
        if meta.get("format") != _INDEX_FORMAT:
            raise ReproError(f"{path} is not a repro vector index")
        arrays = {
            key: data[key] for key in data.files if key != _INDEX_META_KEY
        }
    index = make_index(meta["backend"], **meta.get("params", {}))
    index.load_state_arrays(arrays)
    return index, meta
