"""Precomputed candidate pools and schema-level target-type inference.

A serving request needs, per source node, the candidate set "every node of
the target type, minus the source, minus (optionally) its known neighbors".
Building that pool with Python sets per request is what made the original
``Recommender.recommend_batch`` loop slow; :class:`CandidatePools` instead
precomputes one boolean mask per node type (reused, never mutated) and lets
the engine knock out per-source exclusions via the graph's CSR adjacency.

The pools also own *target-type inference*: when a caller omits
``target_type``, the type is resolved from the source's existing neighbors
when it has any, and otherwise from the relationship's schema-level
endpoint-type map (the majority (source-type -> target-type) pairing over
the relation's edges).  A cold-start node therefore resolves to the same
pool as its warm peers instead of raising.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SchemaError
from repro.graph.multiplex import MultiplexHeteroGraph


def relation_endpoint_types(
    graph: MultiplexHeteroGraph, relation: str
) -> Dict[str, str]:
    """Majority (source node type -> target node type) map for ``relation``.

    Both directions of every undirected edge are counted, so the map answers
    "a node of type X querying this relation most often points at type Y".
    Empty when the relationship has no edges.
    """
    graph.schema.relationship_index(relation)
    src, dst = graph.edges(relation)
    names = graph.schema.node_types
    counts = np.zeros((len(names), len(names)), dtype=np.int64)
    if len(src):
        codes = graph.node_type_codes
        a, b = codes[src], codes[dst]
        np.add.at(counts, (a, b), 1)
        np.add.at(counts, (b, a), 1)
    return {
        names[s]: names[int(np.argmax(counts[s]))]
        for s in range(len(names))
        if counts[s].any()
    }


class CandidatePools:
    """Reusable per-node-type candidate masks over a fixed graph."""

    def __init__(self, graph: MultiplexHeteroGraph):
        self.graph = graph
        codes = graph.node_type_codes
        self._type_masks: Dict[str, np.ndarray] = {}
        self._type_pools: Dict[str, np.ndarray] = {}
        self._pool_positions: Dict[str, np.ndarray] = {}
        for code, name in enumerate(graph.schema.node_types):
            mask = codes == code
            mask.flags.writeable = False
            self._type_masks[name] = mask
        self._endpoint_maps: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    def type_mask(self, node_type: str) -> np.ndarray:
        """Read-only boolean mask (num_nodes,) selecting ``node_type``."""
        try:
            return self._type_masks[node_type]
        except KeyError:
            raise SchemaError(f"unknown node type {node_type!r}") from None

    def type_pool(self, node_type: str) -> np.ndarray:
        """Ascending node ids of ``node_type`` (read-only, cached).

        The ascending order is load-bearing: pool *positions* then order the
        same way as node ids, so stable tie-breaks computed on positions
        translate unchanged to ids.
        """
        if node_type not in self._type_pools:
            pool = np.flatnonzero(self.type_mask(node_type))
            pool.flags.writeable = False
            self._type_pools[node_type] = pool
        return self._type_pools[node_type]

    def pool_positions(self, node_type: str) -> np.ndarray:
        """(num_nodes,) map of node id -> position in :meth:`type_pool`.

        Nodes of other types map to -1 (read-only, cached).
        """
        if node_type not in self._pool_positions:
            pool = self.type_pool(node_type)
            positions = np.full(self.graph.num_nodes, -1, dtype=np.int64)
            positions[pool] = np.arange(len(pool))
            positions.flags.writeable = False
            self._pool_positions[node_type] = positions
        return self._pool_positions[node_type]

    def endpoint_map(self, relation: str) -> Dict[str, str]:
        """Cached :func:`relation_endpoint_types` for ``relation``."""
        if relation not in self._endpoint_maps:
            self._endpoint_maps[relation] = relation_endpoint_types(
                self.graph, relation
            )
        return self._endpoint_maps[relation]

    def target_type_for(self, source: int, relation: str) -> Optional[str]:
        """Resolve the candidate node type for ``source`` under ``relation``.

        Neighbor-first (preserving the historical behavior for warm nodes),
        falling back to the schema-level endpoint map for cold nodes.
        ``None`` when unresolvable (the relationship has no edges at all, or
        none touching the source's type) — callers treat that as an empty
        candidate pool, never an exception.
        """
        neighbors = self.graph.neighbors(int(source), relation)
        if len(neighbors):
            return self.graph.node_type(int(neighbors[0]))
        return self.endpoint_map(relation).get(self.graph.node_type(int(source)))

    # ------------------------------------------------------------------
    def valid_matrix(self, sources: np.ndarray, relation: str,
                     target_type: str, exclude_known: bool = True) -> np.ndarray:
        """(len(sources), num_nodes) candidate mask for one target type.

        Row i selects every node of ``target_type`` except ``sources[i]``
        itself and, when ``exclude_known``, its current neighbors under
        ``relation`` (knocked out via the CSR adjacency in one scatter).
        """
        sources = np.asarray(sources, dtype=np.int64)
        valid = np.repeat(self.type_mask(target_type)[None, :], len(sources), axis=0)
        valid[np.arange(len(sources)), sources] = False
        if exclude_known and len(sources):
            indptr, indices = self.graph.csr(relation)
            starts, ends = indptr[sources], indptr[sources + 1]
            counts = ends - starts
            if counts.sum():
                rows = np.repeat(np.arange(len(sources)), counts)
                cols = np.concatenate([
                    indices[s:e] for s, e in zip(starts.tolist(), ends.tolist())
                ])
                valid[rows, cols] = False
        return valid

    def valid_pool_matrix(
        self, sources: np.ndarray, relation: str, target_type: str,
        exclude_known: bool = True,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Pool-width variant of :meth:`valid_matrix`.

        Returns ``(pool, valid)`` where ``pool`` is :meth:`type_pool` and
        ``valid`` is (len(sources), len(pool)) over pool *positions* —
        the serving hot path scores only the target type's rows, so masks
        (and everything downstream) shrink from ``num_nodes`` columns to
        the pool's size.
        """
        sources = np.asarray(sources, dtype=np.int64)
        pool = self.type_pool(target_type)
        positions = self.pool_positions(target_type)
        valid = np.ones((len(sources), len(pool)), dtype=bool)
        source_pos = positions[sources]
        own = np.flatnonzero(source_pos >= 0)
        valid[own, source_pos[own]] = False
        if exclude_known and len(sources):
            indptr, indices = self.graph.csr(relation)
            starts, ends = indptr[sources], indptr[sources + 1]
            counts = ends - starts
            total = int(counts.sum())
            if total:
                # Ragged CSR slice gather, no per-source Python loop:
                # flat[i] walks each source's [start, end) run in turn.
                rows = np.repeat(np.arange(len(sources)), counts)
                run_starts = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                    counts,
                )
                cols = positions[indices[np.arange(total) + run_starts]]
                in_pool = cols >= 0
                valid[rows[in_pool], cols[in_pool]] = False
        return pool, valid

    def pool_exclusions(
        self, sources: np.ndarray, relation: str, target_type: str,
        exclude_known: bool = True,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Scatter-list form of :meth:`valid_pool_matrix`.

        Returns ``(pool, rows, cols)`` where ``(rows[i], cols[i])`` are the
        (source row, pool position) pairs to knock out.  The hot path
        scatters ``-inf`` into its score matrix with these instead of
        materialising a boolean mask, saving full-width passes per block.
        """
        sources = np.asarray(sources, dtype=np.int64)
        pool = self.type_pool(target_type)
        positions = self.pool_positions(target_type)
        source_pos = positions[sources]
        own = np.flatnonzero(source_pos >= 0)
        rows, cols = own, source_pos[own]
        if exclude_known and len(sources):
            indptr, indices = self.graph.csr(relation)
            starts, ends = indptr[sources], indptr[sources + 1]
            counts = ends - starts
            total = int(counts.sum())
            if total:
                nbr_rows = np.repeat(np.arange(len(sources)), counts)
                run_starts = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts)[:-1])),
                    counts,
                )
                nbr_cols = positions[indices[np.arange(total) + run_starts]]
                in_pool = nbr_cols >= 0
                rows = np.concatenate([rows, nbr_rows[in_pool]])
                cols = np.concatenate([cols, nbr_cols[in_pool]])
        return pool, rows, cols
