"""The online request layer: micro-batched endpoints over a live graph.

:class:`~repro.serving.engine.BatchServingEngine` is a *library*: callers
hand it whole batches and a frozen graph.  :class:`RecommendService` is the
*service* wrapped around it — the in-process equivalent of the
router/service split a production recommender backend deploys:

- three endpoints: :meth:`~RecommendService.recommend` (top-K under a
  relationship), :meth:`~RecommendService.similar` (same-typed cosine
  neighbors) and :meth:`~RecommendService.feedback` (a new interaction,
  streamed into the graph through
  :class:`~repro.serving.deltas.DeltaGraphView`);
- **request micro-batching** behind a **bounded admission queue**:
  concurrent single-item requests coalesce into one engine call per
  (endpoint, relation, k, ...) group, flushed when the group reaches
  ``max_batch`` or the group leader's ``flush_interval`` deadline passes.
  When ``max_queue`` requests are already pending, admission fails with
  the typed :class:`~repro.errors.QueueFullError` — backpressure is an
  outcome callers count, not a crash;
- **cold-start ingestion**: a feedback naming a never-seen endpoint
  registers the node first, its type resolved by the schema-level
  endpoint-type inference (:func:`~repro.serving.pools
  .relation_endpoint_types`) unless given explicitly, and the node is
  servable immediately — its embedding rows are padded by
  :class:`ColdStartEmbedder` until the model learns it;
- **per-endpoint latency percentiles**: every request records its
  queue-wait-plus-execution latency into that endpoint's own
  :class:`EndpointStats` window, and batch flushes / compactions /
  topology refreshes run under ``service.*``
  :class:`~repro.perf.StageProfiler` stages, so mixed live traffic shows
  up per stage exactly like training and batch serving do.

Consistency model: one service-wide execution lock serialises engine
reads, feedback application and compaction — a read observes either the
graph before a write batch or after it, never a torn intermediate (the
``tests/serving/test_service_threads.py`` suite drives this from a thread
pool).  Between compactions, reads see merged (CSR + delta) views that
are bit-identical to a from-scratch rebuild; at compaction the engine's
embedding cache is invalidated, cascading to resident ANN indexes via the
cache's version-clock listeners.

Lock discipline (machine-checked; see DESIGN.md "Lock-discipline
contract"): admission/batching state is guarded by ``_cond``, the graph
view by ``_exec_lock`` — the ``guarded-by`` annotations below drive lint
rule R009, and both locks are :mod:`repro.utils.concurrency` checked
primitives feeding the opt-in runtime lock-order sanitizer.  The two
locks are deliberately never nested: ``_drive`` releases ``_cond``
before ``_execute`` takes ``_exec_lock``, and the short ``_cond``
section inside ``_execute`` runs before the execution lock is acquired,
so the acquisition-order graph stays edge-free and deadlock-free by
construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueueFullError, ServiceError
from repro.perf import StageProfiler
from repro.serving.deltas import DeltaGraphView
from repro.serving.engine import BatchServingEngine, _percentiles
from repro.serving.pools import relation_endpoint_types
from repro.utils.concurrency import (
    checked_condition,
    checked_rlock,
    register_shared_region,
)

__all__ = [
    "ColdStartEmbedder",
    "EndpointStats",
    "RecommendService",
    "ServiceConfig",
]

ENDPOINTS = ("recommend", "similar", "feedback")

# Per-endpoint latency sample window (requests). Smaller than the engine's:
# the service reports *user-perceived* latency, where recent behavior under
# the current traffic mix is what matters.
_ENDPOINT_WINDOW = 16384


@dataclass
class ServiceConfig:
    """Tunables of the request layer.

    ``flush_interval=0`` makes every request flush immediately after
    admission — the synchronous mode used by single-threaded drivers
    (oracles, trace replays) where waiting for co-batching wastes time.
    ``compaction_threshold`` is forwarded to the delta view (0 disables
    automatic folds).
    """

    max_batch: int = 32
    flush_interval: float = 0.002
    max_queue: int = 256
    compaction_threshold: int = 512
    default_k: int = 10
    cold_start: str = "zeros"
    latency_window: int = _ENDPOINT_WINDOW

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue < 1:
            raise ServiceError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.flush_interval < 0:
            raise ServiceError(
                f"flush_interval must be >= 0, got {self.flush_interval}"
            )
        if self.cold_start not in ("zeros", "mean"):
            raise ServiceError(
                f"cold_start must be 'zeros' or 'mean', got {self.cold_start!r}"
            )


class ColdStartEmbedder:
    """A ``RelationEmbedder`` view that pads rows for never-trained nodes.

    The underlying model (or :class:`~repro.core.persistence
    .EmbeddingStore`) knows ``base_num_nodes`` rows; streamed-in nodes get
    a deterministic fill — zeros (``"zeros"``, scores every candidate
    identically so top-K falls back to the stable ascending-id order) or
    the table's column mean (``"mean"``, serves the "average taste"
    recommendation until real training data arrives).  Fill vectors are
    cached per relation and recomputed only if the base model changes
    identity, so padding adds one gather to the cache's one-fetch path.
    """

    def __init__(self, model, base_num_nodes: int, mode: str = "zeros"):
        self.model = model
        self.base_num_nodes = int(base_num_nodes)
        self.mode = mode
        self._fills: Dict[str, np.ndarray] = {}

    def _fill(self, relation: str, sample: np.ndarray) -> np.ndarray:
        if relation not in self._fills:
            if self.mode == "mean":
                table = np.asarray(self.model.node_embeddings(
                    np.arange(self.base_num_nodes), relation
                ))
                self._fills[relation] = table.mean(axis=0)
            else:
                self._fills[relation] = np.zeros(
                    sample.shape[-1], dtype=sample.dtype
                )
        return self._fills[relation]

    def node_embeddings(self, nodes: np.ndarray, relation: str) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        warm = nodes < self.base_num_nodes
        if warm.all():
            return np.asarray(self.model.node_embeddings(nodes, relation))
        known = np.asarray(self.model.node_embeddings(
            nodes[warm] if warm.any() else np.arange(1), relation
        ))
        fill = self._fill(relation, known)
        out = np.empty((len(nodes), known.shape[-1]), dtype=known.dtype)
        if warm.any():
            out[warm] = known
        out[~warm] = fill
        return out


@dataclass
class EndpointStats:
    """Per-endpoint counters plus an instance-scoped latency window."""

    requests: int = 0   # admitted requests (rejections not included)
    batches: int = 0    # engine flushes executed for this endpoint
    rejected: int = 0   # admissions refused with QueueFullError
    window: int = _ENDPOINT_WINDOW
    latencies: Optional[Deque[float]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        from collections import deque

        self.window = max(1, int(self.window))
        if self.latencies is None:
            self.latencies = deque(maxlen=self.window)

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "rejected": self.rejected,
            "mean_batch_size": (
                self.requests / self.batches if self.batches else 0.0
            ),
            "latency_ms": _percentiles(self.latencies),
        }


class _Pending:
    """One admitted request waiting for its batch to flush."""

    __slots__ = ("payload", "result", "error", "done")

    def __init__(self, payload):
        self.payload = payload
        self.result = None
        self.error: Optional[BaseException] = None
        self.done = False


class _Batch:
    """One open micro-batch: its items, leader, and flush deadline."""

    __slots__ = ("items", "leader", "deadline")

    def __init__(self, leader: _Pending, deadline: float):
        self.items: List[_Pending] = [leader]
        self.leader = leader
        self.deadline = deadline


class RecommendService:
    """In-process recommend / similar / feedback service with streaming
    ingestion.

    Parameters
    ----------
    model:
        Anything with ``node_embeddings(nodes, relation)`` covering the
        *base* graph's nodes; cold-start rows are padded by
        :class:`ColdStartEmbedder`.
    graph:
        The frozen base graph, or an existing
        :class:`~repro.serving.deltas.DeltaGraphView` to adopt.
    config:
        Request-layer tunables (:class:`ServiceConfig`).
    engine_options:
        Extra keyword arguments for the wrapped
        :class:`~repro.serving.engine.BatchServingEngine` (index backend,
        block size, ...).
    profiler:
        Optional shared :class:`StageProfiler`; service stages are
        recorded as ``service.*``, engine stages as ``serving.*``.
    """

    def __init__(self, model, graph, *, config: Optional[ServiceConfig] = None,
                 engine_options: Optional[Dict[str, object]] = None,
                 profiler: Optional[StageProfiler] = None):
        self.config = config or ServiceConfig()
        if isinstance(graph, DeltaGraphView):
            self.view = graph  # repro-lint: guarded-by=_exec_lock
            self.view.compaction_threshold = self.config.compaction_threshold
        else:
            self.view = DeltaGraphView(
                graph, compaction_threshold=self.config.compaction_threshold
            )
        self.embedder = ColdStartEmbedder(
            model, self.view.base.num_nodes, mode=self.config.cold_start
        )
        self.profiler = profiler if profiler is not None else StageProfiler()
        options = dict(engine_options or {})
        options.setdefault("latency_window", self.config.latency_window)
        self.engine = BatchServingEngine(
            self.embedder, self.view, profiler=self.profiler, **options
        )
        self.endpoint_stats: Dict[str, EndpointStats] = {  # repro-lint: guarded-by=_cond
            name: EndpointStats(window=self.config.latency_window)
            for name in ENDPOINTS
        }
        self.view.add_compaction_listener(self._on_compaction)
        self._cond = checked_condition("service._cond")
        self._batches: Dict[tuple, _Batch] = {}  # repro-lint: guarded-by=_cond
        self._ripe: Dict[tuple, List[List[_Pending]]] = {}  # repro-lint: guarded-by=_cond
        self._pending_total = 0  # repro-lint: guarded-by=_cond
        self._queue_high_water = 0  # repro-lint: guarded-by=_cond
        self._exec_lock = checked_rlock("service._exec_lock")
        # Write-tracker region for the counters above: writes are
        # bracketed so the runtime sanitizer can flag any future path
        # that mutates stats without holding _cond.
        self._stats_region = register_shared_region(
            "service.stats", guard="service._cond",
            reason="admission counters + latency windows; single guard "
                   "is _cond (DESIGN.md lock-discipline contract)",
        )

    # ------------------------------------------------------------------
    # Public endpoints
    # ------------------------------------------------------------------
    def recommend(self, source: int, relation: str, k: Optional[int] = None,
                  target_type: Optional[str] = None,
                  exclude_known: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(ids, scores)`` for one source under ``relation``."""
        k = self._check_read(relation, [source], k)
        key = ("recommend", relation, k, target_type, exclude_known)
        return self._submit(key, int(source))

    def recommend_many(self, sources: Sequence[int], relation: str,
                       k: Optional[int] = None,
                       target_type: Optional[str] = None,
                       exclude_known: bool = True
                       ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch variant: the whole list is admitted as one micro-batch."""
        k = self._check_read(relation, sources, k)
        key = ("recommend", relation, k, target_type, exclude_known)
        return self._submit_many(key, [int(s) for s in sources])

    def similar(self, node: int, relation: str,
                k: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` same-typed ``(ids, cosine_scores)`` for one node."""
        k = self._check_read(relation, [node], k)
        key = ("similar", relation, k)
        return self._submit(key, int(node))

    def similar_many(self, nodes: Sequence[int], relation: str,
                     k: Optional[int] = None
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        k = self._check_read(relation, nodes, k)
        key = ("similar", relation, k)
        return self._submit_many(key, [int(n) for n in nodes])

    def feedback(self, source: int, target: int, relation: str,
                 source_type: Optional[str] = None,
                 target_type: Optional[str] = None) -> Dict[str, object]:
        """Stream one interaction into the live graph.

        Either endpoint may name a **fresh node id** — exactly
        ``num_nodes`` at application time (ids are dense) — which is
        registered first with its type resolved from ``source_type`` /
        ``target_type`` or, when omitted, from the relationship's
        schema-level endpoint-type map.  Returns a dict with ``accepted``
        (``False`` for duplicate edges), ``new_nodes`` and ``compacted``.
        """
        self.view.schema.relationship_index(relation)
        key = ("feedback", relation)
        return self._submit(
            key, (int(source), int(target), source_type, target_type)
        )

    def feedback_many(self, edges: Sequence[Tuple[int, int]], relation: str
                      ) -> List[Dict[str, object]]:
        self.view.schema.relationship_index(relation)
        key = ("feedback", relation)
        return self._submit_many(
            key, [(int(u), int(v), None, None) for u, v in edges]
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_read(self, relation: str, nodes: Sequence[int],
                    k: Optional[int]) -> int:
        """Admission-time validation of a read request.

        Epoch semantics: this runs *outside* any lock, so the bounds
        check is against whatever graph epoch is current at admission.
        That is fine — node ids are dense and ``num_nodes`` only grows,
        so an id valid at admission stays valid forever.  The check is
        still repeated under ``_exec_lock`` in :meth:`_execute` (see
        :meth:`_check_node_ids`) so execution validates against the
        epoch it actually reads, closing the admission-to-execution
        TOCTOU window for any future view whose id space can shrink.
        """
        self.view.schema.relationship_index(relation)
        k = self.config.default_k if k is None else int(k)
        if k <= 0:
            raise ServiceError(f"k must be positive, got {k}")
        self._check_node_ids(nodes)
        return k

    def _check_node_ids(self, nodes: Sequence[int]) -> None:
        """Vectorised dense-id bounds check against the current epoch."""
        ids = np.asarray(nodes, dtype=np.int64)
        num_nodes = self.view.num_nodes
        if ids.size:
            bad = (ids < 0) | (ids >= num_nodes)
            if bad.any():
                raise ServiceError(
                    f"unknown node id {int(ids[bad][0])} (graph has "
                    f"{num_nodes} nodes; stream new nodes in through "
                    "feedback first)"
                )

    # ------------------------------------------------------------------
    # Admission queue + micro-batching
    # ------------------------------------------------------------------
    def _admit(self, key: tuple, payloads: list) -> List[_Pending]:  # repro-lint: holds=_cond
        """Enqueue payloads under the admission bound (caller holds _cond)."""
        endpoint = key[0]
        stats = self.endpoint_stats[endpoint]
        if self._pending_total + len(payloads) > self.config.max_queue:
            with self._stats_region:
                stats.rejected += len(payloads)
            raise QueueFullError(
                f"admission queue full ({self._pending_total} pending, "
                f"bound {self.config.max_queue}); rejected {len(payloads)} "
                f"{endpoint} request(s)"
            )
        requests = [_Pending(payload) for payload in payloads]
        batch = self._batches.get(key)
        for request in requests:
            if batch is None:
                batch = _Batch(
                    request, time.perf_counter() + self.config.flush_interval
                )
                self._batches[key] = batch
            else:
                batch.items.append(request)
            if len(batch.items) >= self.config.max_batch:
                # Full: move it aside so the next request opens a fresh
                # batch; ripe batches flush on the next _drive iteration.
                self._ripe.setdefault(key, []).append(batch.items)
                del self._batches[key]
                batch = None
        with self._stats_region:
            self._pending_total += len(requests)
            self._queue_high_water = max(
                self._queue_high_water, self._pending_total
            )
            stats.requests += len(requests)
        return requests

    def _take_due_batches(self, key: tuple, now: float) -> List[tuple]:  # repro-lint: holds=_cond
        """Pop every batch of ``key`` that is full or past deadline."""
        due = [(key, items) for items in self._ripe.pop(key, [])]
        batch = self._batches.get(key)
        if batch is not None and now >= batch.deadline:
            del self._batches[key]
            due.append((key, batch.items))
        return due

    def _submit(self, key: tuple, payload):
        return self._submit_many(key, [payload])[0]

    def _submit_many(self, key: tuple, payloads: list) -> list:
        start = time.perf_counter()
        with self._cond:
            requests = self._admit(key, payloads)
        self._drive(key, requests)
        stats = self.endpoint_stats[key[0]]
        elapsed = time.perf_counter() - start
        with self._cond:
            with self._stats_region:
                for _ in requests:
                    stats.record_latency(elapsed)
        first_error = next((r.error for r in requests if r.error), None)
        if first_error is not None:
            raise first_error
        return [r.result for r in requests]

    def _drive(self, key: tuple, requests: List[_Pending]) -> None:
        """Block until every request is flushed, leading when it's our turn.

        The requester that opened a batch (the *leader*) waits out the
        flush interval and then executes it; a requester that fills a
        batch to ``max_batch`` flushes it immediately; followers just
        wait.  Execution happens outside the admission lock, serialised
        by the service-wide execution lock.
        """
        own = set(map(id, requests))
        while True:
            to_flush: List[tuple] = []
            with self._cond:
                pending = [r for r in requests if not r.done]
                if not pending:
                    return
                now = time.perf_counter()
                to_flush = self._take_due_batches(key, now)
                if not to_flush:
                    batch = self._batches.get(key)
                    if batch is not None and id(batch.leader) in own:
                        # We lead this batch: sleep until its deadline.
                        timeout = max(0.0, batch.deadline - now)
                        self._cond.wait(timeout)
                    else:
                        # Follower: wake on any flush completion.
                        self._cond.wait(0.05)
                    continue
            for flush_key, items in to_flush:
                self._execute(flush_key, items)
            with self._cond:
                self._pending_total -= sum(len(items) for _, items in to_flush)
                for _, items in to_flush:
                    for item in items:
                        item.done = True
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Batch execution (one engine call per flush)
    # ------------------------------------------------------------------
    def _execute(self, key: tuple, items: List[_Pending]) -> None:
        endpoint = key[0]
        # Counter write under _cond (and before _exec_lock is taken, so
        # the two locks are never nested).  This increment used to run
        # with no lock at all and could be lost under concurrent
        # flushes — the exact bug class R009 exists to catch.
        with self._cond:
            with self._stats_region:
                self.endpoint_stats[endpoint].batches += 1
        try:
            with self._exec_lock:
                with self.profiler.stage(f"service.{endpoint}"):
                    if endpoint == "recommend":
                        _, relation, k, target_type, exclude_known = key
                        sources = [item.payload for item in items]
                        # Execution-epoch revalidation (see _check_read).
                        self._check_node_ids(sources)
                        results = self.engine.topk_batch(
                            sources, relation, k, target_type, exclude_known
                        )
                        for item, result in zip(items, results):
                            item.result = result
                    elif endpoint == "similar":
                        _, relation, k = key
                        nodes = [item.payload for item in items]
                        self._check_node_ids(nodes)
                        results = self.engine.similar_topk(nodes, relation, k)
                        for item, result in zip(items, results):
                            item.result = result
                    else:
                        _, relation = key
                        for item in items:
                            item.result = self._apply_feedback(
                                relation, *item.payload
                            )
                        if self.view.should_compact():
                            with self.profiler.stage("service.compaction"):
                                self.view.compact()
                            for item in items:
                                item.result["compacted"] = True
                                item.result["version"] = self.view.version
        except BaseException as error:  # surfaced on every waiter
            for item in items:
                if item.result is None:
                    item.error = error

    # ------------------------------------------------------------------
    # Feedback application + cold-start registration
    # ------------------------------------------------------------------
    def _resolve_cold_type(self, relation: str, warm_node: Optional[int],
                           declared: Optional[str]) -> str:
        if declared is not None:
            self.view.schema.node_type_index(declared)  # validates
            return declared
        if warm_node is None:
            raise ServiceError(
                f"feedback under {relation!r} introduces two unseen nodes; "
                "pass source_type/target_type explicitly"
            )
        warm_type = self.view.node_type(warm_node)
        inferred = self.engine.pools.endpoint_map(relation).get(warm_type)
        if inferred is None:
            # The pools' cached map can predate this relation's first edges.
            inferred = relation_endpoint_types(self.view, relation).get(warm_type)
        if inferred is None:
            raise ServiceError(
                f"cannot infer the node type of a cold node under "
                f"{relation!r} (no edges touching type {warm_type!r}); "
                "pass source_type/target_type explicitly"
            )
        return inferred

    def _apply_feedback(self, relation: str, source: int, target: int,  # repro-lint: holds=_exec_lock
                        source_type: Optional[str],
                        target_type: Optional[str]) -> Dict[str, object]:
        if source == target:
            raise ServiceError(
                f"feedback cannot connect node {source} to itself"
            )
        new_nodes: List[int] = []
        for node, declared, other in (
            (source, source_type, target), (target, target_type, source)
        ):
            num_nodes = self.view.num_nodes
            if node > num_nodes:
                raise ServiceError(
                    f"feedback node id {node} is not dense: next fresh id "
                    f"is {num_nodes}"
                )
            if node == num_nodes:
                warm = other if other < num_nodes else None
                node_type = self._resolve_cold_type(relation, warm, declared)
                new_nodes.append(self.view.add_node(node_type))
        accepted = self.view.add_edge(source, target, relation)
        if new_nodes:
            # Pools/cache are sized to the node count — re-derive before
            # the next read so the newborn node is poolable immediately.
            with self.profiler.stage("service.refresh"):
                self.engine.refresh_topology()
        return {
            "accepted": accepted,
            "new_nodes": new_nodes,
            # Overwritten by _execute when this write batch tips the view
            # over its compaction threshold.
            "compacted": False,
            "version": self.view.version,
        }

    def _on_compaction(self, view: DeltaGraphView) -> None:
        """Compaction contract: caches and indexes re-sync to the new base."""
        with self.profiler.stage("service.refresh"):
            self.engine.refresh_topology()

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._pending_total

    def stats_report(self) -> Dict[str, object]:
        """Endpoints, queue, ingestion, engine and stage timings in one dict.

        Counter reads take ``_cond`` — the counters' declared guard — so
        a report snapshot can never observe a torn multi-field update
        (e.g. ``requests`` bumped but ``batches`` not yet) from a
        concurrent admission or flush.
        """
        with self._cond:
            endpoints = {
                name: stats.to_dict()
                for name, stats in self.endpoint_stats.items()
            }
            queue = {
                "max_queue": self.config.max_queue,
                "high_water": self._queue_high_water,
                "depth": self._pending_total,
            }
        return {
            "endpoints": endpoints,
            "queue": queue,
            "ingestion": self.view.stats(),
            "engine": self.engine.latency_report(),
        }
