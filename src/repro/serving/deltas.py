"""Streaming graph ingestion: append-only edge deltas over a frozen CSR.

:class:`~repro.graph.multiplex.MultiplexHeteroGraph` is immutable by
design — every sampler and the serving engine rely on its CSR arrays never
moving.  A live recommender, however, receives new interactions (and brand
new users/items) continuously and must serve them *immediately*, not after
the next offline rebuild.  :class:`DeltaGraphView` reconciles the two:

- a frozen **base** graph plus per-relation **append-only delta buffers**
  (:class:`EdgeDeltaBuffer`) of edges accepted since the last compaction,
  and a list of node-type codes for nodes born after the base was built;
- merged **(CSR + delta) views** served through the same accessor surface
  the engine and :class:`~repro.serving.pools.CandidatePools` already use
  (``csr`` / ``neighbors`` / ``degrees`` / ``node_type_codes`` / ...), so
  a view drops into :class:`~repro.serving.engine.BatchServingEngine`
  unchanged;
- **compaction**: past a pending-edge threshold (or on demand) the deltas
  are folded into a freshly constructed base graph and the buffers reset.

Bit-identity contract (enforced by ``repro verify --suite service`` and
the C008 drift check in :mod:`repro.check.state`): the merged CSR returned
between compactions, and the base CSR after a compaction, are **bit
identical** to building a :class:`MultiplexHeteroGraph` from scratch over
the full edge list.  This holds by construction — the merged view calls
the same ``_build_csr`` (stable argsort over ``[base_src, delta_src,
base_dst, delta_dst]``) a from-scratch build would, so neighbor order,
target-type inference and every downstream top-K are indistinguishable
from a cold restart.  Merged CSRs are cached per relation and invalidated
on append, so the rebuild cost is paid once per write *batch* (the first
read after it), not once per edge — the difference the naive
rebuild-per-edge oracle reference measures.

Version clocks: ``version`` bumps on every accepted mutation (edge or
node), ``compactions`` counts folds.  Compaction listeners let the owning
service drive :class:`~repro.serving.engine.RelationEmbeddingCache`
invalidation — which cascades to resident
:class:`~repro.serving.index.VectorIndex` entries via the cache's
listener chain — exactly once per fold.

The view itself is **not** synchronised; the request layer
(:class:`repro.serving.service.RecommendService`) serialises mutation and
read epochs around it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, SchemaError
from repro.graph.multiplex import MultiplexHeteroGraph

__all__ = [
    "EdgeDeltaBuffer",
    "DeltaGraphView",
]

_EMPTY_EDGES = np.empty(0, dtype=np.int64)


class EdgeDeltaBuffer:
    """Append-only buffer of one relation's edges accepted since compaction.

    Stores each accepted undirected edge once, in arrival order (the order
    a from-scratch rebuild would see them in), plus a normalised-pair set
    for O(1) duplicate rejection against *other pending deltas* — base
    duplicates are rejected by the owning view via ``has_edge``.
    """

    def __init__(self, relation: str):
        self.relation = relation
        self._src: List[int] = []
        self._dst: List[int] = []
        self._pairs: set = set()

    def __len__(self) -> int:
        return len(self._src)

    def contains(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self._pairs

    def append(self, u: int, v: int) -> None:
        """Record the edge; the caller has already validated it."""
        self._src.append(u)
        self._dst.append(v)
        self._pairs.add((min(u, v), max(u, v)))

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) in arrival order."""
        if not self._src:
            return _EMPTY_EDGES, _EMPTY_EDGES
        return (
            np.asarray(self._src, dtype=np.int64),
            np.asarray(self._dst, dtype=np.int64),
        )

    def clear(self) -> None:
        self._src.clear()
        self._dst.clear()
        self._pairs.clear()


class DeltaGraphView:
    """A mutable serving view: frozen base graph + pending deltas.

    Parameters
    ----------
    base:
        The frozen training graph (or the previous compaction's output).
    compaction_threshold:
        Pending-edge count (summed over relations) at which
        :meth:`maybe_compact` folds the deltas into a new base.  ``0``
        disables automatic compaction (explicit :meth:`compact` only).
    """

    def __init__(self, base: MultiplexHeteroGraph, *,
                 compaction_threshold: int = 1024):
        self.base = base
        self.compaction_threshold = max(0, int(compaction_threshold))
        self._deltas: Dict[str, EdgeDeltaBuffer] = {
            relation: EdgeDeltaBuffer(relation)
            for relation in base.schema.relationships
        }
        self._new_type_codes: List[int] = []
        # The merged-CSR cache is deliberately unsynchronised: the view
        # owns no lock, and RecommendService serialises every reader and
        # writer behind its _exec_lock (DESIGN.md lock-discipline
        # contract).  The external: guard makes R009 surface every
        # mutation site; the sanctioned ones are carried in the lint
        # baseline with that justification.
        self._merged_csr: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}  # repro-lint: guarded-by=external:RecommendService._exec_lock
        self._type_codes_cache: Optional[np.ndarray] = None
        self.version = 0        # bumps on every accepted mutation
        self.compactions = 0    # completed folds
        self.edges_ingested = 0
        self.nodes_ingested = 0
        self.duplicates_dropped = 0
        self._compaction_listeners: List[Callable[["DeltaGraphView"], None]] = []

    # ------------------------------------------------------------------
    # Schema / node surface (mirrors MultiplexHeteroGraph)
    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.base.schema

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes + len(self._new_type_codes)

    @property
    def num_edges(self) -> int:
        return self.base.num_edges + self.pending_edges

    def num_edges_in(self, relation: str) -> int:
        return self.base.num_edges_in(relation) + len(self._delta(relation))

    @property
    def pending_edges(self) -> int:
        """Edges accepted since the last compaction."""
        return sum(len(buffer) for buffer in self._deltas.values())

    @property
    def pending_nodes(self) -> int:
        """Nodes born since the last compaction."""
        return len(self._new_type_codes)

    @property
    def node_type_codes(self) -> np.ndarray:
        """int array: node id -> node-type index (read-only, merged)."""
        if self._type_codes_cache is None:
            merged = np.concatenate([
                self.base.node_type_codes,
                np.asarray(self._new_type_codes, dtype=np.int64),
            ]) if self._new_type_codes else np.asarray(
                self.base.node_type_codes
            )
            merged.flags.writeable = False
            self._type_codes_cache = merged
        return self._type_codes_cache

    def node_type(self, node: int) -> str:
        node = int(node)
        if node < self.base.num_nodes:
            return self.base.node_type(node)
        return self.schema.node_types[self.node_type_codes[node]]

    def nodes_of_type(self, node_type: str) -> np.ndarray:
        code = self.schema.node_type_index(node_type)
        return np.flatnonzero(self.node_type_codes == code)

    # ------------------------------------------------------------------
    # Adjacency surface (merged base + delta, rebuild-order identical)
    # ------------------------------------------------------------------
    def _delta(self, relation: str) -> EdgeDeltaBuffer:
        try:
            return self._deltas[relation]
        except KeyError:
            raise SchemaError(f"unknown relationship {relation!r}") from None

    def edges(self, relation: str) -> Tuple[np.ndarray, np.ndarray]:
        """(src, dst) as a rebuild would store them: base first, then delta."""
        base_src, base_dst = self.base.edges(relation)
        delta_src, delta_dst = self._delta(relation).arrays()
        if not len(delta_src):
            return base_src, base_dst
        return (
            np.concatenate([base_src, delta_src]),
            np.concatenate([base_dst, delta_dst]),
        )

    def csr(self, relation: str) -> Tuple[np.ndarray, np.ndarray]:
        """Merged (indptr, indices) — bit-identical to a from-scratch build.

        Delegates to the same ``_build_csr`` a fresh
        :class:`MultiplexHeteroGraph` constructor would run over
        :meth:`edges`, so the stable-argsort neighbor order matches a cold
        restart exactly.  Cached until the next accepted mutation; a
        relation with no pending deltas serves the base arrays as-is
        (when no nodes were added — indptr length is ``num_nodes + 1``).
        """
        delta = self._delta(relation)
        if not len(delta) and not self._new_type_codes:
            return self.base.csr(relation)
        if relation not in self._merged_csr:
            src, dst = self.edges(relation)
            self._merged_csr[relation] = MultiplexHeteroGraph._build_csr(
                self.num_nodes, src, dst
            )
        return self._merged_csr[relation]

    def neighbors(self, node: int, relation: str) -> np.ndarray:
        indptr, indices = self.csr(relation)
        return indices[indptr[node]: indptr[node + 1]]

    def degree(self, node: int, relation: Optional[str] = None) -> int:
        if relation is not None:
            indptr, _ = self.csr(relation)
            return int(indptr[node + 1] - indptr[node])
        return sum(self.degree(node, rel) for rel in self.schema.relationships)

    def degrees(self, relation: Optional[str] = None) -> np.ndarray:
        if relation is not None:
            indptr, _ = self.csr(relation)
            return np.diff(indptr)
        total = np.zeros(self.num_nodes, dtype=np.int64)
        for rel in self.schema.relationships:
            total += self.degrees(rel)
        return total

    def has_edge(self, u: int, v: int, relation: str) -> bool:
        u, v = int(u), int(v)
        if u == v:
            return False
        if self._delta(relation).contains(u, v):
            return True
        if u < self.base.num_nodes and v < self.base.num_nodes:
            return self.base.has_edge(u, v, relation)
        return False

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _invalidate_merged(self) -> None:
        self._merged_csr.clear()
        self.version += 1

    def add_node(self, node_type: str) -> int:
        """Register a never-seen node; returns its (dense) id."""
        code = self.schema.node_type_index(node_type)
        self._new_type_codes.append(code)
        self._type_codes_cache = None
        self.nodes_ingested += 1
        self._invalidate_merged()
        return self.num_nodes - 1

    def add_edge(self, u: int, v: int, relation: str) -> bool:
        """Append the undirected edge (u, v); ``False`` for a duplicate.

        Raises :class:`GraphError` for self-loops and out-of-range
        endpoints (ids must already exist — register cold nodes through
        :meth:`add_node` first), mirroring the base constructor's
        validation.  Duplicates — against the base *or* the pending delta
        — are dropped silently (counted in ``duplicates_dropped``), the
        same semantics as :class:`~repro.graph.builder.GraphBuilder`.
        """
        u, v = int(u), int(v)
        delta = self._delta(relation)
        if u == v:
            raise GraphError(
                f"self-loops are not allowed (relationship {relation!r})"
            )
        if min(u, v) < 0 or max(u, v) >= self.num_nodes:
            raise GraphError(
                f"edge endpoint out of range for relationship {relation!r}: "
                f"({u}, {v}) with {self.num_nodes} nodes"
            )
        if self.has_edge(u, v, relation):
            self.duplicates_dropped += 1
            return False
        delta.append(u, v)
        self.edges_ingested += 1
        self._invalidate_merged()
        return True

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def add_compaction_listener(
        self, listener: Callable[["DeltaGraphView"], None]
    ) -> None:
        """Register ``listener(view)``, called after every completed fold."""
        self._compaction_listeners.append(listener)

    def should_compact(self) -> bool:
        return (
            self.compaction_threshold > 0
            and self.pending_edges >= self.compaction_threshold
        )

    def maybe_compact(self) -> bool:
        """Fold when past the threshold; ``True`` when a fold happened."""
        if not self.should_compact():
            return False
        self.compact()
        return True

    def compact(self) -> MultiplexHeteroGraph:
        """Fold pending deltas into a freshly built base graph.

        The new base is constructed through the ordinary
        :class:`MultiplexHeteroGraph` constructor over the merged node
        codes and edge lists — the same arrays :meth:`edges` serves — so
        its CSR, edge sets and typed node pools are exactly what a cold
        restart would build.  Buffers reset, ``compactions`` bumps, and
        compaction listeners fire (the service uses this to invalidate
        embedding caches and ANN indexes).
        """
        merged_edges = {
            relation: self.edges(relation)
            for relation in self.schema.relationships
        }
        self.base = MultiplexHeteroGraph(
            self.schema, self.node_type_codes, merged_edges
        )
        for buffer in self._deltas.values():
            buffer.clear()
        self._new_type_codes.clear()
        self._type_codes_cache = None
        self._merged_csr.clear()
        self.compactions += 1
        self.version += 1
        for listener in self._compaction_listeners:
            listener(self)
        return self.base

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Ingestion counters for reports and dashboards."""
        return {
            "version": self.version,
            "compactions": self.compactions,
            "edges_ingested": self.edges_ingested,
            "nodes_ingested": self.nodes_ingested,
            "duplicates_dropped": self.duplicates_dropped,
            "pending_edges": self.pending_edges,
            "pending_nodes": self.pending_nodes,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
        }

    def __repr__(self) -> str:
        return (
            f"DeltaGraphView(base={self.base!r}, pending_edges="
            f"{self.pending_edges}, pending_nodes={self.pending_nodes}, "
            f"compactions={self.compactions})"
        )
