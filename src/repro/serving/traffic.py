"""Seeded traffic traces: generate, replay, and fingerprint mixed load.

A *trace* is a flat list of :class:`TraceOp` — recommend / similar reads
interleaved with feedback writes, including writes that introduce
never-seen (cold-start) nodes.  Traces are **self-contained**: every op
names concrete node ids, with fresh ids assigned densely at generation
time by simulating the node counter, so the same trace can be replayed
against the live :class:`~repro.serving.service.RecommendService` *and*
against a naive rebuild-per-edge reference (the ``service`` oracle suite)
and the two must agree exactly.

Replays fingerprint every read result into a SHA-256 digest (ids and
scores, byte-exact).  Two replays of the same seeded trace must produce
the same digest — the seeded-determinism property the serving test suite
and `repro verify --suite service` assert.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QueueFullError
from repro.serving.pools import relation_endpoint_types
from repro.utils.rng import SeedLike, as_rng

__all__ = [
    "TraceOp",
    "generate_trace",
    "replay_trace",
    "ResultDigest",
]


@dataclass(frozen=True)
class TraceOp:
    """One request in a simulated traffic trace.

    ``op`` is ``"recommend"``, ``"similar"`` or ``"feedback"``.  For reads
    ``nodes`` holds the query sources; for feedback it is the ``(u, v)``
    edge, where either endpoint may be a fresh (cold-start) id equal to
    the node count at application time.
    """

    op: str
    relation: str
    nodes: Tuple[int, ...]
    k: int = 10


class ResultDigest:
    """Order-sensitive SHA-256 fingerprint of replayed read results."""

    def __init__(self):
        self._hash = hashlib.sha256()

    def update(self, ids: np.ndarray, scores: np.ndarray) -> None:
        self._hash.update(np.asarray(ids, dtype=np.int64).tobytes())
        self._hash.update(np.asarray(scores, dtype=np.float64).tobytes())

    def update_text(self, text: str) -> None:
        self._hash.update(text.encode("utf-8"))

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _relation_types(graph) -> Dict[str, Tuple[str, str]]:
    """Per relation: one (source_type, target_type) pair for edge synthesis."""
    out: Dict[str, Tuple[str, str]] = {}
    for relation in graph.schema.relationships:
        endpoint_map = relation_endpoint_types(graph, relation)
        if endpoint_map:
            src_type = sorted(endpoint_map)[0]
            out[relation] = (src_type, endpoint_map[src_type])
    return out


def generate_trace(graph, num_ops: int, seed: SeedLike = 0, *,
                   read_fraction: float = 0.7,
                   similar_fraction: float = 0.2,
                   new_node_rate: float = 0.05,
                   k: int = 10) -> List[TraceOp]:
    """Synthesise a mixed read/write trace over ``graph``'s id space.

    ``read_fraction`` of ops are reads, split between recommend and
    ``similar_fraction`` similar queries; the rest are feedback writes, of
    which ``new_node_rate`` target a brand-new node id.  The generator
    tracks the running node count per type so fresh ids are exactly the
    dense ids the service will assign, and recent cold nodes are eligible
    read sources — cold-start reads are part of the mix by construction.
    """
    rng = as_rng(seed)
    endpoint_types = _relation_types(graph)
    relations = sorted(endpoint_types)
    if not relations:
        raise ValueError("graph has no relation with edges to synthesise from")

    # Live per-type id lists, extended as the simulated service grows.
    nodes_by_type: Dict[str, List[int]] = {
        node_type: [int(n) for n in graph.nodes_of_type(node_type)]
        for node_type in graph.schema.node_types
    }
    num_nodes = graph.num_nodes
    trace: List[TraceOp] = []
    for _ in range(int(num_ops)):
        relation = relations[int(rng.integers(len(relations)))]
        src_type, dst_type = endpoint_types[relation]
        roll = float(rng.random())
        if roll < read_fraction:
            pool_type = src_type if rng.random() < 0.5 else dst_type
            pool = nodes_by_type[pool_type]
            source = pool[int(rng.integers(len(pool)))]
            if rng.random() < similar_fraction:
                trace.append(TraceOp("similar", relation, (source,), k))
            else:
                trace.append(TraceOp("recommend", relation, (source,), k))
        else:
            src_pool = nodes_by_type[src_type]
            u = src_pool[int(rng.integers(len(src_pool)))]
            if rng.random() < new_node_rate:
                v = num_nodes  # fresh dense id, type inferred from u
                nodes_by_type[dst_type].append(v)
                num_nodes += 1
            else:
                dst_pool = nodes_by_type[dst_type]
                v = dst_pool[int(rng.integers(len(dst_pool)))]
                if v == u:  # same-type self-pairing guard
                    v = dst_pool[(dst_pool.index(v) + 1) % len(dst_pool)]
                    if v == u:
                        continue
            trace.append(TraceOp("feedback", relation, (u, v), k))
    return trace


def replay_trace(service, trace: Sequence[TraceOp],
                 digest: Optional[ResultDigest] = None) -> Dict[str, object]:
    """Run ``trace`` against a service; returns counters plus the digest.

    Queue-full rejections are counted, digested (so determinism checks
    cover the rejection pattern too) and skipped — exactly what a load
    shedder does.  All other errors propagate: a malformed trace is a bug,
    not traffic.
    """
    digest = digest or ResultDigest()
    counts = {"recommend": 0, "similar": 0, "feedback": 0, "rejected": 0,
              "accepted_edges": 0, "new_nodes": 0, "compactions": 0}
    for op in trace:
        try:
            if op.op == "recommend":
                ids, scores = service.recommend(op.nodes[0], op.relation, op.k)
                digest.update(ids, scores)
                counts["recommend"] += 1
            elif op.op == "similar":
                ids, scores = service.similar(op.nodes[0], op.relation, op.k)
                digest.update(ids, scores)
                counts["similar"] += 1
            else:
                result = service.feedback(op.nodes[0], op.nodes[1], op.relation)
                digest.update_text(
                    f"feedback:{op.relation}:{op.nodes[0]}:{op.nodes[1]}:"
                    f"{result['accepted']}:{len(result['new_nodes'])}"
                )
                counts["feedback"] += 1
                counts["accepted_edges"] += int(result["accepted"])
                counts["new_nodes"] += len(result["new_nodes"])
                counts["compactions"] += int(result["compacted"])
        except QueueFullError:
            digest.update_text(f"rejected:{op.op}")
            counts["rejected"] += 1
    counts["digest"] = digest.hexdigest()
    return counts
