"""Vectorised batch serving: the Eq. 13 scoring hot path at request scale.

The training side of this repository was vectorised by the batched frontier
walk engine (``repro.sampling.frontier``); this package does the same for
the *serving* side.  :class:`BatchServingEngine` answers "top-K candidates
for these sources under this relationship" by

- precomputing per-node-type candidate pools as reusable boolean masks and
  per-relation CSR exclusion lists (:class:`CandidatePools`),
- fetching each relationship's full embedding table **once** per batch
  through an LRU cache (:class:`RelationEmbeddingCache`) instead of
  re-gathering per source,
- routing retrieval through a swappable :class:`VectorIndex` backend —
  ``exact`` (one matmul against the pool plus a stable top-K extraction,
  bit-identical list order to the scalar reference paths kept on
  :class:`repro.core.recommender.Recommender`), or the sub-linear ``ivf``
  / ``hnsw`` approximate backends (:class:`IVFIndex`, :class:`HNSWIndex`),
  which prune the candidate *set* but still score surfaced candidates
  with exact dot products (recall-gated by ``repro verify --suite
  index``).

Request-level latency/throughput is recorded through
:class:`repro.perf.StageProfiler` stages (``serving.embeddings``,
``serving.pool``, ``serving.score``, ``serving.topk``,
``serving.index_build``, ``serving.index_search``) plus the engine's
:class:`ServingStats` counters and per-request latency percentiles.

On top of the engine sits the *online* layer: :class:`DeltaGraphView`
(streaming graph ingestion — append-only edge deltas over the frozen CSR,
merged views bit-identical to a from-scratch rebuild, threshold-driven
compaction with version-clock cache/index invalidation) and
:class:`RecommendService` (micro-batched ``recommend`` / ``similar`` /
``feedback`` endpoints behind a bounded admission queue, with
per-endpoint latency percentiles and cold-start node handling).  Seeded
mixed-traffic traces for tests, oracles and benchmarks live in
:mod:`repro.serving.traffic`.
"""

from repro.serving.deltas import DeltaGraphView, EdgeDeltaBuffer
from repro.serving.engine import (
    BatchServingEngine,
    RelationEmbeddingCache,
    ServingStats,
)
from repro.serving.service import (
    ColdStartEmbedder,
    EndpointStats,
    RecommendService,
    ServiceConfig,
)
from repro.serving.traffic import TraceOp, generate_trace, replay_trace
from repro.serving.index import (
    ExactIndex,
    HNSWIndex,
    INDEX_BACKENDS,
    IVFIndex,
    VectorIndex,
    load_index,
    make_index,
    save_index,
)
from repro.serving.pools import CandidatePools

__all__ = [
    "BatchServingEngine",
    "CandidatePools",
    "ColdStartEmbedder",
    "DeltaGraphView",
    "EdgeDeltaBuffer",
    "EndpointStats",
    "ExactIndex",
    "HNSWIndex",
    "INDEX_BACKENDS",
    "IVFIndex",
    "RecommendService",
    "RelationEmbeddingCache",
    "ServiceConfig",
    "ServingStats",
    "TraceOp",
    "VectorIndex",
    "generate_trace",
    "load_index",
    "make_index",
    "replay_trace",
    "save_index",
]
