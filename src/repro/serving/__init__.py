"""Vectorised batch serving: the Eq. 13 scoring hot path at request scale.

The training side of this repository was vectorised by the batched frontier
walk engine (``repro.sampling.frontier``); this package does the same for
the *serving* side.  :class:`BatchServingEngine` answers "top-K candidates
for these sources under this relationship" by

- precomputing per-node-type candidate pools as reusable boolean masks and
  per-relation CSR exclusion lists (:class:`CandidatePools`),
- fetching each relationship's full embedding table **once** per batch
  through an LRU cache (:class:`RelationEmbeddingCache`) instead of
  re-gathering per source,
- scoring a whole batch as a single matrix multiply against the table, and
- extracting top-K with ``np.argpartition`` plus a stable tie-break instead
  of a full argsort — bit-identical list order to the scalar reference
  paths kept on :class:`repro.core.recommender.Recommender`.

Request-level latency/throughput is recorded through
:class:`repro.perf.StageProfiler` stages (``serving.embeddings``,
``serving.pool``, ``serving.score``, ``serving.topk``) plus the engine's
:class:`ServingStats` counters.
"""

from repro.serving.engine import (
    BatchServingEngine,
    RelationEmbeddingCache,
    ServingStats,
)
from repro.serving.pools import CandidatePools

__all__ = [
    "BatchServingEngine",
    "CandidatePools",
    "RelationEmbeddingCache",
    "ServingStats",
]
