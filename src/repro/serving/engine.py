"""The batch top-K serving engine.

Serving one request under Eq. 13 is a dot product of the source's
relationship-specific embedding against every candidate's; serving a batch
is therefore one matrix multiply against the relation's embedding table.
The engine organises the whole hot path around that observation:

- the table is fetched **once** per relation through an LRU cache
  (``serving.embeddings`` stage) instead of twice per source;
- candidate pools come from :class:`~repro.serving.pools.CandidatePools`
  ascending-id type pools plus a CSR exclusion scatter (``serving.pool``),
  not per-source Python sets;
- a source block is scored as a single ``sources @ table[pool].T`` matmul
  over the target type's rows only (``serving.score``);
- top-K is extracted with ``np.argpartition`` plus an explicit stable
  tie-break (``serving.topk``) rather than a full argsort, reproducing
  ``np.argsort(-scores, kind="stable")[:k]`` bit-identically — descending
  score, ascending node id among exact ties, lowest ids win boundary ties.

The scalar pre-engine implementations survive as ``_reference_*`` methods
on :class:`repro.core.recommender.Recommender` and are compared against the
engine by the ``serving`` differential oracles in
:mod:`repro.verify.oracles`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EvaluationError
from repro.perf import StageProfiler
from repro.serving.pools import CandidatePools

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)


@dataclass
class ServingStats:
    """Request-level throughput counters (latency lives in the profiler)."""

    requests: int = 0           # engine entry points served
    sources: int = 0            # source nodes served across all requests
    candidates_scored: int = 0  # candidate pool rows ranked

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "sources": self.sources,
            "candidates_scored": self.candidates_scored,
        }


class RelationEmbeddingCache:
    """LRU cache of full per-relation embedding tables.

    One ``model.node_embeddings(arange(num_nodes), relation)`` call per
    cached relation — the fix for the ``recommend_batch`` refetch bug.  Row
    norms (for cosine similarity) are cached alongside each table.
    """

    def __init__(self, model, num_nodes: int, capacity: int = 4):
        self.model = model
        self.num_nodes = num_nodes
        self.capacity = max(1, int(capacity))
        self._tables: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._norms: Dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def table(self, relation: str) -> np.ndarray:
        """The (num_nodes, d) embedding table of ``relation``."""
        if relation in self._tables:
            self._tables.move_to_end(relation)
            self.hits += 1
            return self._tables[relation]
        self.misses += 1
        table = np.asarray(
            self.model.node_embeddings(np.arange(self.num_nodes), relation)
        )
        # Shape-check before caching: a model that produces a malformed
        # table (wrong rank, wrong row count, non-float dtype) fails here
        # with a rendered expected-vs-found spec, not mid-request.
        from repro.check.state import verify_table

        verify_table(table, self.num_nodes, relation)
        self._tables[relation] = table
        while len(self._tables) > self.capacity:
            evicted, _ = self._tables.popitem(last=False)
            self._norms.pop(evicted, None)
        return table

    def norms(self, relation: str) -> np.ndarray:
        """Per-row L2 norms of the relation's table (cached)."""
        if relation not in self._norms:
            self._norms[relation] = np.linalg.norm(self.table(relation), axis=1)
        return self._norms[relation]

    @property
    def cached_relations(self) -> List[str]:
        return list(self._tables)


def _stable_topk(scores: np.ndarray, valid: np.ndarray,
                 k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` valid indices, ordered exactly like the scalar reference.

    Reproduces ``pool[np.argsort(-scores[pool], kind="stable")[:k]]`` for
    ``pool = np.flatnonzero(valid)`` without sorting the whole pool:
    ``argpartition`` isolates the top block, boundary ties are resolved
    toward the lowest node ids (what a stable sort does), and only the
    k candidates are ordered.
    """
    num_valid = int(np.count_nonzero(valid))
    if num_valid == 0:
        return _EMPTY_IDS, _EMPTY_SCORES
    take = min(k, num_valid)
    if take == num_valid:
        chosen = np.flatnonzero(valid)
    else:
        masked = np.where(valid, scores, -np.inf)
        cutoff = len(masked) - take
        kth_value = masked[np.argpartition(masked, cutoff)[cutoff:]].min()
        above = np.flatnonzero(masked > kth_value)
        ties = np.flatnonzero(valid & (scores == kth_value))
        chosen = np.concatenate([above, ties[: take - len(above)]])
    # Descending score; ascending node id among exact ties (stable order).
    order = np.lexsort((chosen, -scores[chosen]))
    top = chosen[order[:take]]
    return top, scores[top]


def _stable_topk_block(scores: np.ndarray, valid: Optional[np.ndarray],
                       k: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Row-wise :func:`_stable_topk` of a (block, width) score matrix.

    ``valid=None`` means the caller already scattered ``-inf`` over the
    excluded columns of ``scores`` (the hot path does this in place on the
    matmul output, skipping a boolean matrix entirely).

    The common case is handled in one vectorised pass: when exactly ``k``
    entries of a row sit at-or-above its k-th largest value, the top-K
    *set* is unique, so a row-wise ``partition`` for the cutoff plus one
    ``>=`` mask selects it; ``np.nonzero`` yields columns in ascending
    order, which a final stable argsort by descending score turns into
    exactly the reference order.  Rows where the cutoff value is tied
    across the boundary (or pools smaller than ``k``) fall back to the
    scalar helper, which resolves boundary ties toward the lowest ids.
    """
    block, width = scores.shape
    out: List[Tuple[np.ndarray, np.ndarray]] = [None] * block
    easy = np.empty(0, dtype=np.int64)
    if k < width:
        masked = scores if valid is None else np.where(valid, scores, -np.inf)
        cut = width - k
        kth = np.partition(masked, cut, axis=1)[:, cut:cut + 1]
        at_or_above = masked >= kth
        counts = np.count_nonzero(at_or_above, axis=1)
        easy = np.flatnonzero((counts == k) & (kth[:, 0] > -np.inf))
    if len(easy):
        cols = np.nonzero(at_or_above[easy])[1].reshape(len(easy), k)
        chosen = np.take_along_axis(masked[easy], cols, axis=1)
        order = np.argsort(-chosen, axis=1, kind="stable")
        top = np.take_along_axis(cols, order, axis=1)
        top_scores = np.take_along_axis(chosen, order, axis=1)
        for j, row in enumerate(easy.tolist()):
            out[row] = (top[j], top_scores[j])
    for row in range(block):
        if out[row] is None:
            if valid is None:
                out[row] = _stable_topk(scores[row], scores[row] > -np.inf, k)
            else:
                out[row] = _stable_topk(scores[row], valid[row], k)
    return out


class BatchServingEngine:
    """Batched top-K recommendation over a model (or an embedding store).

    Parameters
    ----------
    model:
        Anything satisfying the ``RelationEmbedder`` protocol.
    graph:
        The training graph defining candidate pools and known edges.
    cache_capacity:
        Number of relation embedding tables kept resident (LRU).
    block_size:
        Sources scored per matmul block — bounds the (block, num_nodes)
        score matrix.
    profiler:
        Optional shared :class:`StageProfiler`; a private one is created
        when omitted.
    """

    def __init__(self, model, graph, *, cache_capacity: int = 4,
                 block_size: int = 256,
                 profiler: Optional[StageProfiler] = None):
        self.model = model
        self.graph = graph
        self.pools = CandidatePools(graph)
        self.cache = RelationEmbeddingCache(
            model, graph.num_nodes, capacity=cache_capacity
        )
        self.block_size = max(1, int(block_size))
        self.profiler = profiler if profiler is not None else StageProfiler()
        self.stats = ServingStats()

    # ------------------------------------------------------------------
    # Core batched top-K
    # ------------------------------------------------------------------
    def topk_batch(self, sources: Sequence[int], relation: str, k: int,
                   target_type: Optional[str] = None,
                   exclude_known: bool = True
                   ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-source ``(ids, scores)`` top-K arrays, in input order.

        ``target_type`` is resolved per source when omitted (see
        :meth:`CandidatePools.target_type_for`); unresolvable (fully cold)
        sources yield empty arrays instead of raising.
        """
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        sources = np.asarray(sources, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(sources)
        results: List[Tuple[np.ndarray, np.ndarray]] = (
            [(_EMPTY_IDS, _EMPTY_SCORES)] * len(sources)
        )
        for ttype, positions in self._group_by_target(
            sources, relation, target_type
        ).items():
            if ttype is None:
                continue  # cold and unresolvable: empty result, never a crash
            group = sources[positions]
            for start in range(0, len(group), self.block_size):
                block = slice(start, start + self.block_size)
                for offset, item in enumerate(self._topk_block(
                    group[block], relation, k, ttype, exclude_known
                )):
                    results[positions[start + offset]] = item
        return results

    def _group_by_target(self, sources: np.ndarray, relation: str,
                         target_type: Optional[str]
                         ) -> Dict[Optional[str], np.ndarray]:
        if target_type is not None:
            return {target_type: np.arange(len(sources))}
        # Warm sources resolve in one gather: the type of their first CSR
        # neighbor (same answer as CandidatePools.target_type_for).
        indptr, indices = self.graph.csr(relation)
        starts, ends = indptr[sources], indptr[sources + 1]
        warm = starts < ends
        codes = np.full(len(sources), -1, dtype=np.int64)
        if warm.any():
            codes[warm] = self.graph.node_type_codes[indices[starts[warm]]]
        type_names = self.graph.schema.node_types
        groups: Dict[Optional[str], List[int]] = {
            type_names[code]: np.flatnonzero(codes == code).tolist()
            for code in np.unique(codes[warm]).tolist()
        }
        for position in np.flatnonzero(~warm).tolist():
            ttype = self.pools.target_type_for(int(sources[position]), relation)
            groups.setdefault(ttype, []).append(position)
        return {
            ttype: np.asarray(sorted(positions), dtype=np.int64)
            for ttype, positions in groups.items()
        }

    def _topk_block(self, block: np.ndarray, relation: str, k: int,
                    target_type: str, exclude_known: bool
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        with self.profiler.stage("serving.pool"):
            pool, rows, cols = self.pools.pool_exclusions(
                block, relation, target_type, exclude_known
            )
        if len(pool) == 0:
            return [(_EMPTY_IDS, _EMPTY_SCORES)] * len(block)
        with self.profiler.stage("serving.embeddings"):
            table = self.cache.table(relation)
        with self.profiler.stage("serving.score"):
            if len(block) == 1:
                # dgemv then gather keeps scalar requests bit-identical to
                # the reference (per-row dot products are unaffected by
                # which rows are materialised).
                scores = (table @ table[block[0]])[pool][None, :]
            else:
                # One matmul for the block, over pool rows only.
                scores = table[block] @ table[pool].T
            # The matrix is engine-owned: scatter -inf over exclusions in
            # place instead of materialising a boolean candidate mask.
            scores[rows, cols] = -np.inf
        self.stats.candidates_scored += int(np.count_nonzero(scores > -np.inf))
        with self.profiler.stage("serving.topk"):
            return [
                (pool[ids], top_scores)
                for ids, top_scores in _stable_topk_block(scores, None, k)
            ]

    # ------------------------------------------------------------------
    # Recommendation API (mirrors the Recommender facade)
    # ------------------------------------------------------------------
    def recommend_batch(self, sources: Sequence[int], relation: str,
                        k: int = 10, target_type: Optional[str] = None,
                        exclude_known: bool = True):
        """Top-``k`` :class:`Recommendation` lists for several sources."""
        from repro.core.recommender import Recommendation

        # .tolist() already yields Python scalars; positional construction
        # keeps this loop (k objects per source) off the hot-path profile.
        return [
            [
                Recommendation(node, score)
                for node, score in zip(ids.tolist(), scores.tolist())
            ]
            for ids, scores in self.topk_batch(
                sources, relation, k, target_type, exclude_known
            )
        ]

    def recommend(self, source: int, relation: str, k: int = 10,
                  target_type: Optional[str] = None,
                  exclude_known: bool = True):
        """Top-``k`` recommendations for one source."""
        return self.recommend_batch(
            [int(source)], relation, k, target_type, exclude_known
        )[0]

    # ------------------------------------------------------------------
    # Similarity
    # ------------------------------------------------------------------
    def similar_topk(self, nodes: Sequence[int], relation: str, k: int
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-node ``(ids, cosine_scores)`` over same-typed candidates."""
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        nodes = np.asarray(nodes, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(nodes)
        with self.profiler.stage("serving.embeddings"):
            table = self.cache.table(relation)
            norms = self.cache.norms(relation)
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for node in nodes.tolist():
            node_type = self.graph.node_type(node)
            with self.profiler.stage("serving.pool"):
                pool = self.pools.type_pool(node_type)
                valid = np.ones(len(pool), dtype=bool)
                valid[self.pools.pool_positions(node_type)[node]] = False
            with self.profiler.stage("serving.score"):
                # The probe's norm is taken over its 1-D row (not the cached
                # axis=1 reduction): np.linalg.norm accumulates the two
                # differently, and the reference uses the vector form.
                scores = (table @ table[node])[pool] / np.maximum(
                    norms[pool] * np.linalg.norm(table[node]), 1e-12
                )
            self.stats.candidates_scored += int(valid.sum())
            with self.profiler.stage("serving.topk"):
                ids, top_scores = _stable_topk(scores, valid, k)
                results.append((pool[ids], top_scores))
        return results

    def similar_batch(self, nodes: Sequence[int], relation: str, k: int = 10):
        """Top-``k`` :class:`Recommendation` lists of similar nodes."""
        from repro.core.recommender import Recommendation

        return [
            [
                Recommendation(node, score)
                for node, score in zip(ids.tolist(), scores.tolist())
            ]
            for ids, scores in self.similar_topk(nodes, relation, k)
        ]

    def similar_nodes(self, node: int, relation: str, k: int = 10):
        """Top-``k`` same-typed nodes by embedding cosine similarity."""
        return self.similar_batch([int(node)], relation, k)[0]

    # ------------------------------------------------------------------
    # Full ranking (evaluation workload)
    # ------------------------------------------------------------------
    def rank_all(self, sources: Sequence[int], relation: str,
                 target_type: Optional[str] = None,
                 exclude_known: bool = True) -> List[np.ndarray]:
        """Fully ranked candidate pools, one id array per source.

        The ranking evaluator needs every source's complete ordering (MRR
        looks past the top-K), so this path keeps the full stable argsort
        but still shares the one-fetch table and mask-based pools.  Scores
        are computed per source as table-level matrix-vector products,
        which are bit-identical to the scalar reference's gathered dot
        products.
        """
        sources = np.asarray(sources, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(sources)
        results: List[np.ndarray] = [_EMPTY_IDS] * len(sources)
        for ttype, positions in self._group_by_target(
            sources, relation, target_type
        ).items():
            if ttype is None:
                continue
            group = sources[positions]
            with self.profiler.stage("serving.embeddings"):
                table = self.cache.table(relation)
            with self.profiler.stage("serving.pool"):
                pool, valid = self.pools.valid_pool_matrix(
                    group, relation, ttype, exclude_known
                )
            if len(pool) == 0:
                continue
            with self.profiler.stage("serving.score"):
                scores = np.empty((len(group), len(pool)))
                for j, source in enumerate(group.tolist()):
                    # dgemv per source: bit-identical to the scalar
                    # reference's gathered dot products.
                    scores[j] = (table @ table[source])[pool]
            counts = np.count_nonzero(valid, axis=1)
            self.stats.candidates_scored += int(counts.sum())
            with self.profiler.stage("serving.topk"):
                keys = np.where(valid, -scores, np.inf)
                orders = np.argsort(keys, axis=1, kind="stable")
                for j, count in enumerate(counts.tolist()):
                    results[positions[j]] = pool[orders[j, :count]]
        return results

    # ------------------------------------------------------------------
    def latency_report(self) -> Dict[str, object]:
        """Counters plus per-stage wall time for dashboards/logs."""
        return {**self.stats.to_dict(), "stages": self.profiler.report()}
