"""The batch top-K serving engine.

Serving one request under Eq. 13 is a dot product of the source's
relationship-specific embedding against every candidate's; serving a batch
is therefore one matrix multiply against the relation's embedding table.
The engine organises the whole hot path around that observation:

- the table is fetched **once** per relation through an LRU cache
  (``serving.embeddings`` stage) instead of twice per source;
- candidate pools come from :class:`~repro.serving.pools.CandidatePools`
  ascending-id type pools plus a CSR exclusion scatter (``serving.pool``),
  not per-source Python sets;
- retrieval routes through a swappable :class:`~repro.serving.index`
  backend: ``exact`` keeps the original blocked
  ``sources @ table[pool].T`` matmul (``serving.score``) with stable top-K
  extraction (``serving.topk``), bit-identical to the scalar reference;
  ``ivf`` and ``hnsw`` prune the candidate set sub-linearly
  (``serving.index_build`` / ``serving.index_search`` stages) while still
  scoring surfaced candidates with exact dot products.

Approximate backends fall back to the exact path — counted in
``ServingStats.exact_fallbacks`` — when a pool is smaller than
``min_index_size``, when a cached index went stale under
``on_stale="exact"``, and always for :meth:`BatchServingEngine.rank_all`
(a full ordering cannot be pruned).

The scalar pre-engine implementations survive as ``_reference_*`` methods
on :class:`repro.core.recommender.Recommender` and are compared against the
engine by the ``serving`` differential oracles in
:mod:`repro.verify.oracles`; approximate backends are recall-gated by the
``index`` oracle suite.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import EvaluationError
from repro.perf import StageProfiler, Timer
from repro.serving.index import (
    VectorIndex,
    _stable_topk,
    _stable_topk_block,
    _stable_topk_ids,
    make_index,
    save_index,
    load_index,
)
from repro.serving.pools import CandidatePools

__all__ = [
    "BatchServingEngine",
    "RelationEmbeddingCache",
    "ServingStats",
]

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_SCORES = np.empty(0, dtype=np.float64)

# Default per-request latency sample window for percentile estimation; old
# samples roll off so a long-lived engine reports recent behavior, not its
# cold start forever.  The window *size* is configuration, but the sample
# buffer itself is strictly per-:class:`ServingStats` instance — two engines
# (or two services) must never share a latency window, or one's traffic
# pollutes the other's percentiles.
_LATENCY_WINDOW = 65536


def _percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 (milliseconds) of a latency sample window."""
    if not samples:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    arr = np.asarray(samples, dtype=np.float64) * 1000.0
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


@dataclass
class ServingStats:
    """Request-level throughput counters and latency percentiles.

    Each instance owns its latency window outright: the ``window`` size is
    an instance field (not a shared module-level buffer), so engines and
    services running side by side in one process keep fully independent
    percentile estimates.
    """

    requests: int = 0           # engine entry points served
    sources: int = 0            # source nodes served across all requests
    candidates_scored: int = 0  # candidate pool rows ranked
    index_builds: int = 0       # ANN index (re)builds, including rebuilds
    exact_fallbacks: int = 0    # sources served exactly despite an ANN backend
    window: int = _LATENCY_WINDOW
    latencies: Optional[Deque[float]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.window = max(1, int(self.window))
        if self.latencies is None:
            self.latencies = deque(maxlen=self.window)

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "sources": self.sources,
            "candidates_scored": self.candidates_scored,
            "index_builds": self.index_builds,
            "exact_fallbacks": self.exact_fallbacks,
            "latency_ms": _percentiles(self.latencies),
        }


class RelationEmbeddingCache:
    """LRU cache of full per-relation embedding tables.

    One ``model.node_embeddings(arange(num_nodes), relation)`` call per
    cached relation — the fix for the ``recommend_batch`` refetch bug.  Row
    norms (for cosine similarity) are cached alongside each table.

    Each fetch-on-miss bumps the relation's **version**; anything derived
    from a table (the engine's ANN indexes) records the version it was
    built against and treats a mismatch as staleness.  Explicit
    :meth:`invalidate` calls and LRU evictions notify registered listeners
    so derived state is dropped eagerly, not discovered stale later.
    """

    def __init__(self, model, num_nodes: int, capacity: int = 4):
        self.model = model
        self.num_nodes = num_nodes
        self.capacity = max(1, int(capacity))
        self._tables: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._norms: Dict[str, np.ndarray] = {}
        self._versions: Dict[str, int] = {}
        self._version_clock = 0
        self._listeners: List[Callable[[str], None]] = []
        self.hits = 0
        self.misses = 0

    def table(self, relation: str) -> np.ndarray:
        """The (num_nodes, d) embedding table of ``relation``."""
        if relation in self._tables:
            self._tables.move_to_end(relation)
            self.hits += 1
            return self._tables[relation]
        self.misses += 1
        table = np.asarray(
            self.model.node_embeddings(np.arange(self.num_nodes), relation)
        )
        # Shape-check before caching: a model that produces a malformed
        # table (wrong rank, wrong row count, non-float dtype) fails here
        # with a rendered expected-vs-found spec, not mid-request.
        from repro.check.state import verify_table

        verify_table(table, self.num_nodes, relation)
        self._tables[relation] = table
        self._version_clock += 1
        self._versions[relation] = self._version_clock
        while len(self._tables) > self.capacity:
            evicted, _ = self._tables.popitem(last=False)
            self._norms.pop(evicted, None)
            self._notify(evicted)
        return table

    def norms(self, relation: str) -> np.ndarray:
        """Per-row L2 norms of the relation's table (cached)."""
        if relation not in self._norms:
            self._norms[relation] = np.linalg.norm(self.table(relation), axis=1)
        return self._norms[relation]

    def version(self, relation: str) -> int:
        """Monotonic fetch counter for ``relation`` (0 = never fetched).

        The version identifies *which* table snapshot is resident: a
        re-fetch after invalidation or eviction yields a new version even
        if the model's parameters did not change.
        """
        return self._versions.get(relation, 0)

    def invalidate(self, relation: Optional[str] = None) -> None:
        """Drop cached table(s) so the next access re-fetches from the model.

        With ``relation=None`` everything is dropped.  Listeners are
        notified per dropped relation (the engine uses this to retire
        derived ANN indexes).
        """
        targets = [relation] if relation is not None else list(self._tables)
        for name in targets:
            self._tables.pop(name, None)
            self._norms.pop(name, None)
            self._notify(name)

    def add_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(relation)`` for invalidations and evictions."""
        self._listeners.append(listener)

    def _notify(self, relation: str) -> None:
        for listener in self._listeners:
            listener(relation)

    @property
    def cached_relations(self) -> List[str]:
        return list(self._tables)


class BatchServingEngine:
    """Batched top-K recommendation over a model (or an embedding store).

    Parameters
    ----------
    model:
        Anything satisfying the ``RelationEmbedder`` protocol.
    graph:
        The training graph defining candidate pools and known edges.
    cache_capacity:
        Number of relation embedding tables kept resident (LRU).
    block_size:
        Sources scored per matmul block — bounds the (block, num_nodes)
        score matrix.
    profiler:
        Optional shared :class:`StageProfiler`; a private one is created
        when omitted.
    index:
        Retrieval backend: ``"exact"`` (default; bit-identical brute
        force), ``"ivf"`` or ``"hnsw"`` (sub-linear, recall-gated by the
        ``index`` oracle suite).
    index_params:
        Backend construction parameters (``nprobe``, ``ef_search``,
        ``seed``, ...); keys a backend doesn't take are ignored, so one
        flat dict can configure any backend.
    min_index_size:
        Pools smaller than this are always served exactly — index
        overhead only pays off at scale, and tiny pools are where
        cold-start nodes live.
    on_stale:
        What to do when a cached index no longer matches the live table:
        ``"rebuild"`` (default) rebuilds it, ``"exact"`` serves the
        request exactly and leaves rebuilding to the next explicit build.
    """

    def __init__(self, model, graph, *, cache_capacity: int = 4,
                 block_size: int = 256,
                 profiler: Optional[StageProfiler] = None,
                 index: str = "exact",
                 index_params: Optional[Dict[str, object]] = None,
                 min_index_size: int = 32,
                 on_stale: str = "rebuild",
                 latency_window: int = _LATENCY_WINDOW):
        if on_stale not in ("rebuild", "exact"):
            raise EvaluationError(
                f"on_stale must be 'rebuild' or 'exact', got {on_stale!r}"
            )
        self.model = model
        self.graph = graph
        self.pools = CandidatePools(graph)
        self.cache = RelationEmbeddingCache(
            model, graph.num_nodes, capacity=cache_capacity
        )
        self.block_size = max(1, int(block_size))
        self.profiler = profiler if profiler is not None else StageProfiler()
        self.stats = ServingStats(window=latency_window)
        self.index_backend = index
        self.index_params = dict(index_params or {})
        self.min_index_size = max(0, int(min_index_size))
        self.on_stale = on_stale
        # Fail fast on unknown backends (make_index validates the name).
        make_index(index, **self.index_params)
        # (relation, target_type, metric) -> (index, table_version, pool_len)
        self._indexes: Dict[
            Tuple[str, str, str], Tuple[VectorIndex, int, int]
        ] = {}
        self.cache.add_invalidation_listener(self._drop_indexes_for)

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def _drop_indexes_for(self, relation: str) -> None:
        for key in [key for key in self._indexes if key[0] == relation]:
            del self._indexes[key]

    def refresh_topology(self) -> None:
        """Re-derive pool/cache state after the graph's node set changed.

        A streaming :class:`~repro.serving.deltas.DeltaGraphView` grows —
        cold-start nodes arrive, compaction swaps the base.  Candidate
        pools precompute per-type masks sized to ``num_nodes`` and the
        embedding cache validates tables against it, so both must be
        rebuilt when the topology moves.  Dropping the cached tables
        notifies listeners, which retires every resident ANN index (the
        version-clock invalidation the delta layer's compaction contract
        requires).
        """
        self.pools = CandidatePools(self.graph)
        self.cache.num_nodes = self.graph.num_nodes
        self.cache.invalidate()
        # Indexes for never-cached relations are keyed on stale pools too.
        self._indexes.clear()

    def _build_index(self, relation: str, target_type: str, metric: str,
                     table: np.ndarray, pool: np.ndarray) -> VectorIndex:
        with self.profiler.stage("serving.index_build"):
            vectors = table[pool]
            if metric == "cosine":
                norms = self.cache.norms(relation)
                vectors = vectors / np.maximum(norms[pool], 1e-12)[:, None]
            index = make_index(self.index_backend, **self.index_params)
            index.build(vectors)
        self.stats.index_builds += 1
        self._indexes[(relation, target_type, metric)] = (
            index, self.cache.version(relation), len(pool)
        )
        return index

    def _index_for(self, relation: str, target_type: str, metric: str,
                   table: np.ndarray, pool: np.ndarray
                   ) -> Optional[VectorIndex]:
        """The live index for a (relation, pool) pair, or ``None`` for exact.

        ``None`` sends the caller down the original brute-force path —
        always for the ``exact`` backend, for pools under
        ``min_index_size``, and for stale entries under
        ``on_stale="exact"``.  Callers must have fetched ``table`` from
        the cache *before* calling (the fetch is what assigns the version
        this index is validated against).
        """
        if self.index_backend == "exact":
            return None
        if len(pool) < self.min_index_size:
            return None
        key = (relation, target_type, metric)
        entry = self._indexes.get(key)
        if entry is not None:
            index, version, pool_len = entry
            if version == self.cache.version(relation) and pool_len == len(pool):
                return index
            # Stale: the table was re-fetched (or the pool changed) since
            # this index was built.
            del self._indexes[key]
            if self.on_stale == "exact":
                return None
        return self._build_index(relation, target_type, metric, table, pool)

    # ------------------------------------------------------------------
    # Core batched top-K
    # ------------------------------------------------------------------
    def topk_batch(self, sources: Sequence[int], relation: str, k: int,
                   target_type: Optional[str] = None,
                   exclude_known: bool = True
                   ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-source ``(ids, scores)`` top-K arrays, in input order.

        ``target_type`` is resolved per source when omitted (see
        :meth:`CandidatePools.target_type_for`); unresolvable (fully cold)
        sources yield empty arrays instead of raising.
        """
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        sources = np.asarray(sources, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(sources)
        with Timer() as timer:
            results: List[Tuple[np.ndarray, np.ndarray]] = (
                [(_EMPTY_IDS, _EMPTY_SCORES)] * len(sources)
            )
            for ttype, positions in self._group_by_target(
                sources, relation, target_type
            ).items():
                if ttype is None:
                    continue  # cold and unresolvable: empty result, no crash
                group = sources[positions]
                for start in range(0, len(group), self.block_size):
                    block = slice(start, start + self.block_size)
                    for offset, item in enumerate(self._topk_block(
                        group[block], relation, k, ttype, exclude_known
                    )):
                        results[positions[start + offset]] = item
        self.stats.record_latency(timer.elapsed)
        return results

    def _group_by_target(self, sources: np.ndarray, relation: str,
                         target_type: Optional[str]
                         ) -> Dict[Optional[str], np.ndarray]:
        if target_type is not None:
            return {target_type: np.arange(len(sources))}
        # Warm sources resolve in one gather: the type of their first CSR
        # neighbor (same answer as CandidatePools.target_type_for).
        indptr, indices = self.graph.csr(relation)
        starts, ends = indptr[sources], indptr[sources + 1]
        warm = starts < ends
        codes = np.full(len(sources), -1, dtype=np.int64)
        if warm.any():
            codes[warm] = self.graph.node_type_codes[indices[starts[warm]]]
        type_names = self.graph.schema.node_types
        groups: Dict[Optional[str], List[int]] = {
            type_names[code]: np.flatnonzero(codes == code).tolist()
            for code in np.unique(codes[warm]).tolist()
        }
        for position in np.flatnonzero(~warm).tolist():
            ttype = self.pools.target_type_for(int(sources[position]), relation)
            groups.setdefault(ttype, []).append(position)
        return {
            ttype: np.asarray(sorted(positions), dtype=np.int64)
            for ttype, positions in groups.items()
        }

    @staticmethod
    def _exclusion_lists(rows: np.ndarray, cols: np.ndarray,
                         block_len: int) -> List[Optional[np.ndarray]]:
        """Regroup scatter pairs into one exclusion array per block row."""
        if len(rows) == 0:
            return [None] * block_len
        order = np.argsort(rows, kind="stable")
        sorted_rows, sorted_cols = rows[order], cols[order]
        bounds = np.searchsorted(sorted_rows, np.arange(block_len + 1))
        return [
            sorted_cols[bounds[j]:bounds[j + 1]]
            if bounds[j + 1] > bounds[j] else None
            for j in range(block_len)
        ]

    def _topk_block(self, block: np.ndarray, relation: str, k: int,
                    target_type: str, exclude_known: bool
                    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        with self.profiler.stage("serving.pool"):
            pool, rows, cols = self.pools.pool_exclusions(
                block, relation, target_type, exclude_known
            )
        if len(pool) == 0:
            return [(_EMPTY_IDS, _EMPTY_SCORES)] * len(block)
        with self.profiler.stage("serving.embeddings"):
            table = self.cache.table(relation)
        index = self._index_for(relation, target_type, "ip", table, pool)
        if index is not None:
            with self.profiler.stage("serving.index_search"):
                found = index.search(
                    table[block], k,
                    exclude=self._exclusion_lists(rows, cols, len(block)),
                )
            self.stats.candidates_scored += index.last_candidates
            return [(pool[positions], scores) for positions, scores in found]
        if self.index_backend != "exact":
            self.stats.exact_fallbacks += len(block)
        with self.profiler.stage("serving.score"):
            if len(block) == 1:
                # dgemv then gather keeps scalar requests bit-identical to
                # the reference (per-row dot products are unaffected by
                # which rows are materialised).
                scores = (table @ table[block[0]])[pool][None, :]
            else:
                # One matmul for the block, over pool rows only.
                scores = table[block] @ table[pool].T
            # The matrix is engine-owned: scatter -inf over exclusions in
            # place instead of materialising a boolean candidate mask.
            scores[rows, cols] = -np.inf
        self.stats.candidates_scored += int(np.count_nonzero(scores > -np.inf))
        with self.profiler.stage("serving.topk"):
            return [
                (pool[ids], top_scores)
                for ids, top_scores in _stable_topk_block(scores, None, k)
            ]

    # ------------------------------------------------------------------
    # Recommendation API (mirrors the Recommender facade)
    # ------------------------------------------------------------------
    def recommend_batch(self, sources: Sequence[int], relation: str,
                        k: int = 10, target_type: Optional[str] = None,
                        exclude_known: bool = True):
        """Top-``k`` :class:`Recommendation` lists for several sources."""
        from repro.core.recommender import Recommendation

        # .tolist() already yields Python scalars; positional construction
        # keeps this loop (k objects per source) off the hot-path profile.
        return [
            [
                Recommendation(node, score)
                for node, score in zip(ids.tolist(), scores.tolist())
            ]
            for ids, scores in self.topk_batch(
                sources, relation, k, target_type, exclude_known
            )
        ]

    def recommend(self, source: int, relation: str, k: int = 10,
                  target_type: Optional[str] = None,
                  exclude_known: bool = True):
        """Top-``k`` recommendations for one source."""
        return self.recommend_batch(
            [int(source)], relation, k, target_type, exclude_known
        )[0]

    # ------------------------------------------------------------------
    # Similarity
    # ------------------------------------------------------------------
    def similar_topk(self, nodes: Sequence[int], relation: str, k: int
                     ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-node ``(ids, cosine_scores)`` over same-typed candidates.

        With an approximate backend, candidates are retrieved from a
        cosine index (the pool's vectors normalised at build time) and
        their reported scores are then **recomputed with the reference
        cosine formula**, so only the candidate set is approximate.
        """
        if k <= 0:
            raise EvaluationError(f"k must be positive, got {k}")
        nodes = np.asarray(nodes, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(nodes)
        with Timer() as timer:
            with self.profiler.stage("serving.embeddings"):
                table = self.cache.table(relation)
                norms = self.cache.norms(relation)
            results: List[Tuple[np.ndarray, np.ndarray]] = []
            for node in nodes.tolist():
                node_type = self.graph.node_type(node)
                with self.profiler.stage("serving.pool"):
                    pool = self.pools.type_pool(node_type)
                    own = self.pools.pool_positions(node_type)[node]
                index = self._index_for(
                    relation, node_type, "cosine", table, pool
                )
                if index is not None:
                    results.append(self._similar_via_index(
                        index, table, norms, pool, node, own, k
                    ))
                    continue
                if self.index_backend != "exact":
                    self.stats.exact_fallbacks += 1
                with self.profiler.stage("serving.pool"):
                    valid = np.ones(len(pool), dtype=bool)
                    valid[own] = False
                with self.profiler.stage("serving.score"):
                    # The probe's norm is taken over its 1-D row (not the
                    # cached axis=1 reduction): np.linalg.norm accumulates
                    # the two differently, and the reference uses the
                    # vector form.
                    scores = (table @ table[node])[pool] / np.maximum(
                        norms[pool] * np.linalg.norm(table[node]), 1e-12
                    )
                self.stats.candidates_scored += int(valid.sum())
                with self.profiler.stage("serving.topk"):
                    ids, top_scores = _stable_topk(scores, valid, k)
                    results.append((pool[ids], top_scores))
        self.stats.record_latency(timer.elapsed)
        return results

    def _similar_via_index(self, index: VectorIndex, table: np.ndarray,
                           norms: np.ndarray, pool: np.ndarray, node: int,
                           own: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        probe_norm = np.linalg.norm(table[node])
        query = table[node] / max(probe_norm, 1e-12)
        exclude = [np.asarray([own], dtype=np.int64)] if own >= 0 else None
        with self.profiler.stage("serving.index_search"):
            positions, _ = index.search(query, k, exclude=exclude)[0]
        self.stats.candidates_scored += index.last_candidates
        if len(positions) == 0:
            return _EMPTY_IDS, _EMPTY_SCORES
        with self.profiler.stage("serving.score"):
            # Reference cosine formula over the surfaced candidates only;
            # the normalised index scores decided *which* candidates, not
            # what the caller sees.
            candidates = pool[positions]
            scores = (table[candidates] @ table[node]) / np.maximum(
                norms[candidates] * probe_norm, 1e-12
            )
        with self.profiler.stage("serving.topk"):
            ids, top_scores = _stable_topk_ids(scores, positions, k)
        return pool[ids], top_scores

    def similar_batch(self, nodes: Sequence[int], relation: str, k: int = 10):
        """Top-``k`` :class:`Recommendation` lists of similar nodes."""
        from repro.core.recommender import Recommendation

        return [
            [
                Recommendation(node, score)
                for node, score in zip(ids.tolist(), scores.tolist())
            ]
            for ids, scores in self.similar_topk(nodes, relation, k)
        ]

    def similar_nodes(self, node: int, relation: str, k: int = 10):
        """Top-``k`` same-typed nodes by embedding cosine similarity."""
        return self.similar_batch([int(node)], relation, k)[0]

    # ------------------------------------------------------------------
    # Full ranking (evaluation workload)
    # ------------------------------------------------------------------
    def rank_all(self, sources: Sequence[int], relation: str,
                 target_type: Optional[str] = None,
                 exclude_known: bool = True) -> List[np.ndarray]:
        """Fully ranked candidate pools, one id array per source.

        The ranking evaluator needs every source's complete ordering (MRR
        looks past the top-K), so this path is **always exact** — an ANN
        index prunes candidates, which is incompatible with producing a
        total order — and keeps the full stable argsort over the one-fetch
        table and mask-based pools.  Scores are computed per source as
        table-level matrix-vector products, which are bit-identical to the
        scalar reference's gathered dot products.
        """
        sources = np.asarray(sources, dtype=np.int64)
        self.stats.requests += 1
        self.stats.sources += len(sources)
        if self.index_backend != "exact":
            self.stats.exact_fallbacks += len(sources)
        results: List[np.ndarray] = [_EMPTY_IDS] * len(sources)
        with Timer() as timer:
            for ttype, positions in self._group_by_target(
                sources, relation, target_type
            ).items():
                if ttype is None:
                    continue
                group = sources[positions]
                with self.profiler.stage("serving.embeddings"):
                    table = self.cache.table(relation)
                with self.profiler.stage("serving.pool"):
                    pool, valid = self.pools.valid_pool_matrix(
                        group, relation, ttype, exclude_known
                    )
                if len(pool) == 0:
                    continue
                with self.profiler.stage("serving.score"):
                    scores = np.empty((len(group), len(pool)))
                    for j, source in enumerate(group.tolist()):
                        # dgemv per source: bit-identical to the scalar
                        # reference's gathered dot products.
                        scores[j] = (table @ table[source])[pool]
                counts = np.count_nonzero(valid, axis=1)
                self.stats.candidates_scored += int(counts.sum())
                with self.profiler.stage("serving.topk"):
                    keys = np.where(valid, -scores, np.inf)
                    orders = np.argsort(keys, axis=1, kind="stable")
                    for j, count in enumerate(counts.tolist()):
                        results[positions[j]] = pool[orders[j, :count]]
        self.stats.record_latency(timer.elapsed)
        return results

    # ------------------------------------------------------------------
    # Index persistence
    # ------------------------------------------------------------------
    def export_index(self, path: Union[str, Path], relation: str,
                     target_type: str, metric: str = "ip") -> Path:
        """Persist the (relation, target_type) index next to a checkpoint.

        Builds the index first if it isn't resident (also for the
        ``exact`` backend, where the brute-force oracle is what gets
        persisted).  The written file carries enough metadata for
        :meth:`import_index` — and ``repro check-model`` — to validate it
        against a live engine before use.
        """
        with self.profiler.stage("serving.embeddings"):
            table = self.cache.table(relation)
        pool = self.pools.type_pool(target_type)
        key = (relation, target_type, metric)
        entry = self._indexes.get(key)
        if (entry is not None
                and entry[1] == self.cache.version(relation)
                and entry[2] == len(pool)):
            index = entry[0]
        elif self.index_backend == "exact":
            with self.profiler.stage("serving.index_build"):
                vectors = table[pool]
                if metric == "cosine":
                    norms = self.cache.norms(relation)
                    vectors = vectors / np.maximum(
                        norms[pool], 1e-12
                    )[:, None]
                index = make_index("exact", **self.index_params)
                index.build(vectors)
            self.stats.index_builds += 1
        else:
            index = self._build_index(relation, target_type, metric,
                                      table, pool)
        return save_index(index, path, extra_meta={
            "relation": relation,
            "target_type": target_type,
            "metric": metric,
            "pool_size": int(len(pool)),
            "table_dim": int(table.shape[1]),
        })

    def import_index(self, path: Union[str, Path]) -> VectorIndex:
        """Load a persisted index and attach it to the live engine.

        The file's metadata is validated against the current table and
        pool (``repro.check.state.verify_index``, C007): a stale or
        shape-mismatched index raises instead of silently serving wrong
        candidates.  The loaded index is pinned to the relation's current
        cache version.
        """
        index, meta = load_index(path)
        relation = meta.get("relation")
        target_type = meta.get("target_type")
        metric = meta.get("metric", "ip")
        with self.profiler.stage("serving.embeddings"):
            table = self.cache.table(relation)
        pool = self.pools.type_pool(target_type)
        from repro.check.state import verify_index

        verify_index(meta, index, table, pool, source=str(path))
        self._indexes[(relation, target_type, metric)] = (
            index, self.cache.version(relation), len(pool)
        )
        return index

    # ------------------------------------------------------------------
    def index_report(self) -> Dict[str, object]:
        """Backend configuration plus every resident index entry."""
        return {
            "backend": self.index_backend,
            "params": dict(self.index_params),
            "min_index_size": self.min_index_size,
            "on_stale": self.on_stale,
            "entries": [
                {
                    "relation": relation,
                    "target_type": target_type,
                    "metric": metric,
                    "size": index.size,
                    "table_version": version,
                }
                for (relation, target_type, metric), (index, version, _)
                in self._indexes.items()
            ],
        }

    def latency_report(self) -> Dict[str, object]:
        """Counters plus per-stage wall time for dashboards/logs."""
        return {
            **self.stats.to_dict(),
            "index": self.index_report(),
            "stages": self.profiler.report(),
        }
