"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing unrelated
``ValueError``/``KeyError`` instances raised by their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A graph schema is malformed or an entity refers to an unknown type."""


class GraphError(ReproError):
    """A graph operation received inconsistent or out-of-range data."""


class MetapathError(ReproError):
    """A metapath scheme is invalid for the schema it is used with."""


class SamplingError(ReproError):
    """A sampler cannot make progress (e.g. a node with no neighbors)."""


class ShapeError(ReproError):
    """A tensor operation received operands with incompatible shapes."""


class AutogradError(ReproError):
    """Backward propagation was requested in an invalid state."""


class SanitizerError(ReproError):
    """The autograd sanitizer detected a corrupted computation graph.

    Raised at ``backward()`` time when a tensor saved by a forward pass was
    mutated before its gradient was computed (see
    :mod:`repro.nn.sanitizer`).
    """


class AnomalyError(SanitizerError):
    """``detect_anomaly()`` observed a NaN/Inf value during autograd."""


class LockOrderError(ReproError):
    """The lock-discipline sanitizer detected a lock-order hazard.

    Raised by :mod:`repro.utils.concurrency` while the sanitizer is
    enabled, either when acquiring a lock would complete a cycle in the
    process-wide lock-acquisition-order graph (two threads taking the
    same pair of locks in opposite orders — a latent deadlock) or when a
    non-reentrant checked lock is re-acquired by the thread already
    holding it (a guaranteed self-deadlock).
    """


class TrainingError(ReproError):
    """Model training failed or was configured inconsistently."""


class EvaluationError(ReproError):
    """An evaluation routine received empty or malformed predictions."""


class ServiceError(ReproError):
    """The online serving service received an invalid request.

    Raised by :class:`repro.serving.service.RecommendService` for
    malformed endpoint arguments (unknown relations, unresolvable
    cold-start node types, non-positive ``k``).
    """


class QueueFullError(ServiceError):
    """The service's bounded admission queue rejected a request.

    Backpressure is a *typed* outcome, not a crash: load generators and
    callers catch this specifically, count it, and retry or shed load.
    """


class DatasetError(ReproError):
    """Dataset generation or splitting was configured inconsistently."""


class CheckError(ReproError):
    """The static model checker (:mod:`repro.check`) found a fatal defect.

    Raised when a check cannot run (unknown model, no usable batch size)
    and when a checkpoint or serving table fails spec validation against
    the model's parameters (finding code C007).
    """
