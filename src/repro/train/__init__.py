"""Scaled-out training executors.

``repro.core.trainer`` owns the single-process, autograd-based training
loop (and its staged sample→batch→update decomposition).  This package
holds the executors that ship those stages across workers:

- :mod:`repro.train.parallel` — sharded multi-worker skip-gram training
  over shared-memory embedding tables (hogwild or parameter averaging).
"""

from repro.train.parallel import (
    ParallelSkipGramTrainer,
    ParallelTrainerConfig,
    shard_nodes,
)

__all__ = [
    "ParallelSkipGramTrainer",
    "ParallelTrainerConfig",
    "shard_nodes",
]
